"""Fabric topology: named switch nodes wired by links.

A :class:`Topology` holds :class:`FabricNode` instances — each a full
P4runpro switch (in-process :class:`~repro.dataplane.runpro.P4runproDataPlane`
by default, or a :class:`~repro.engine.ShardedEngine` when the node is
built with ``workers > 0``) — and :class:`Link` objects with configurable
latency, bandwidth, and loss probability.  The canonical shape is the
leaf-spine fabric (:meth:`Topology.leaf_spine`): every leaf has one
uplink to every spine, host ports live on the leaves, and each leaf owns
one /24 of host addresses (``10.0.<leaf+1>.0/24`` by default) so the
fabric's routing layer can map a destination IP to its egress leaf.

Topologies round-trip through a JSON spec file (:meth:`Topology.from_spec`
/ :meth:`Topology.to_spec`) consumed by ``p4runpro fabric`` and
``p4runpro serve --fabric``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..compiler.target import TargetSpec
from ..controlplane.controller import Controller
from ..dataplane.runpro import P4runproDataPlane

#: first uplink port number on a leaf (host ports sit below it)
UPLINK_PORT_BASE = 48

LEAF = "leaf"
SPINE = "spine"


class TopologyError(ValueError):
    """Malformed topology or spec file."""


@dataclass
class LinkStats:
    """Per-link delivery/drop accounting, reset by ``reset()``."""

    carried: int = 0
    dropped_down: int = 0
    dropped_loss: int = 0
    dropped_bandwidth: int = 0

    def reset(self) -> None:
        self.carried = 0
        self.dropped_down = 0
        self.dropped_loss = 0
        self.dropped_bandwidth = 0

    def as_dict(self) -> dict:
        return {
            "carried": self.carried,
            "dropped_down": self.dropped_down,
            "dropped_loss": self.dropped_loss,
            "dropped_bandwidth": self.dropped_bandwidth,
        }


class Link:
    """A bidirectional link between two node ports.

    ``latency_s`` adds to a packet's arrival timestamp per traversal;
    ``bandwidth_gbps`` bounds the bytes a run window may carry (enforced
    only when the run declares a duration); ``loss`` is an independent
    per-packet drop probability drawn from a link-local seeded RNG so
    runs stay deterministic.
    """

    def __init__(
        self,
        a: str,
        a_port: int,
        b: str,
        b_port: int,
        *,
        latency_s: float = 2e-6,
        bandwidth_gbps: float = 100.0,
        loss: float = 0.0,
        seed: int = 0,
    ):
        self.a, self.a_port = a, a_port
        self.b, self.b_port = b, b_port
        self.latency_s = latency_s
        self.bandwidth_gbps = bandwidth_gbps
        self.loss = loss
        self.up = True
        self.stats = LinkStats()
        self._rng = random.Random((seed << 16) ^ hash((a, b)) & 0xFFFF)
        self._window_bytes: float | None = None

    @property
    def name(self) -> str:
        return f"{self.a}:{self.a_port}<->{self.b}:{self.b_port}"

    def ends(self) -> tuple[str, str]:
        return (self.a, self.b)

    def ingress_port_at(self, node: str) -> int:
        """The port a packet arrives on when it reaches ``node``."""
        if node == self.a:
            return self.a_port
        if node == self.b:
            return self.b_port
        raise TopologyError(f"{node!r} is not an endpoint of {self.name}")

    def begin_window(self, duration_s: float | None) -> None:
        """Open a transmission window with a byte budget (None = unbounded)."""
        if duration_s is None or self.bandwidth_gbps is None:
            self._window_bytes = None
        else:
            self._window_bytes = self.bandwidth_gbps * 1e9 / 8.0 * duration_s

    def transmit(self, size_bytes: int) -> str:
        """Attempt one traversal; returns ``"ok"`` or a drop cause
        (``"link_down"`` / ``"link_loss"`` / ``"link_bandwidth"``)."""
        if not self.up:
            self.stats.dropped_down += 1
            return "link_down"
        if self.loss and self._rng.random() < self.loss:
            self.stats.dropped_loss += 1
            return "link_loss"
        if self._window_bytes is not None:
            if self._window_bytes < size_bytes:
                self.stats.dropped_bandwidth += 1
                return "link_bandwidth"
            self._window_bytes -= size_bytes
        self.stats.carried += 1
        return "ok"


class FabricNode:
    """One switch of the fabric: a name, a role, and a full P4runpro stack.

    ``workers > 0`` backs the node with a sharded multi-process engine
    (its coordinator controller is the node's control plane); otherwise
    the node runs an in-process data plane.  ``busy_s`` accumulates the
    CPU seconds this node spent processing packets — the fabric's
    aggregate-capacity projection divides total packets by the busiest
    node's time, mirroring the engine benchmark's core-independent
    makespan metric.
    """

    def __init__(
        self,
        name: str,
        role: str = LEAF,
        *,
        spec: TargetSpec | None = None,
        parse_machine=None,
        workers: int = 0,
        flow_cache: bool = True,
        codegen: bool = True,
    ):
        self.name = name
        self.role = role
        self.up = True
        self.workers = workers
        self.busy_s = 0.0
        self.packets = 0
        if workers:
            from ..engine import ShardedEngine

            self.engine = ShardedEngine(
                workers,
                spec=spec,
                parse_machine=parse_machine,
                flow_cache=flow_cache,
                codegen=codegen,
            )
            self.controller = self.engine.controller
            self.dataplane = self.engine.dataplane
        else:
            self.engine = None
            self.dataplane = P4runproDataPlane(
                spec, parse_machine, flow_cache=flow_cache, codegen=codegen
            )
            self.controller = Controller(self.dataplane, spec=spec)

    def process_batch(self, packets: list) -> list:
        """Run a batch through this node's pipeline, in arrival order."""
        self.packets += len(packets)
        if self.engine is not None:
            wall0 = time.perf_counter()
            results = self.engine.inject(packets, mode="full")
            stats = self.engine.last_inject_stats
            busy = max(
                list(stats.get("worker_cpu_s", {}).values())
                + [stats.get("coordinator_cpu_s", 0.0)],
                default=0.0,
            )
            self.busy_s += busy or (time.perf_counter() - wall0)
            return results
        cpu0 = time.process_time()
        results = self.dataplane.process_many(packets)
        self.busy_s += time.process_time() - cpu0
        return results

    def stats(self) -> dict:
        info = dict(self.dataplane.stats()) if self.engine is None else dict(
            self.engine.stats()["totals"]
        )
        info.update(
            {
                "role": self.role,
                "up": self.up,
                "workers": self.workers,
                "fabric_packets": self.packets,
                "busy_s": round(self.busy_s, 6),
            }
        )
        return info

    def close(self) -> None:
        if self.engine is not None:
            self.engine.close()


@dataclass
class Topology:
    """Named nodes plus the links wiring them."""

    nodes: dict[str, FabricNode] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    #: leaf name -> (subnet base, prefix mask) for host addresses
    leaf_subnets: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: host-facing ports per leaf
    host_ports: int = 4
    #: builder parameters kept for spec round-tripping
    spec_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._adj: dict[tuple[str, str], Link] = {}
        for link in self.links:
            self._register(link)

    def _register(self, link: Link) -> None:
        self._adj[(link.a, link.b)] = link
        self._adj[(link.b, link.a)] = link

    def add_node(self, node: FabricNode) -> FabricNode:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_link(self, link: Link) -> Link:
        for end in link.ends():
            if end not in self.nodes:
                raise TopologyError(f"link endpoint {end!r} is not a node")
        if (link.a, link.b) in self._adj:
            raise TopologyError(f"duplicate link {link.a}<->{link.b}")
        self.links.append(link)
        self._register(link)
        return link

    def link_between(self, a: str, b: str) -> Link:
        link = self._adj.get((a, b))
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    @property
    def leaves(self) -> list[str]:
        return [n for n, node in self.nodes.items() if node.role == LEAF]

    @property
    def spines(self) -> list[str]:
        return [n for n, node in self.nodes.items() if node.role == SPINE]

    def leaf_of_ip(self, ip: int) -> str | None:
        """The leaf owning a destination IP, or None when unroutable."""
        for leaf, (base, mask) in self.leaf_subnets.items():
            if ip & mask == base:
                return leaf
        return None

    def host_ip(self, leaf: str, host: int) -> int:
        """The ``host``-th host address on a leaf's subnet (1-based)."""
        base, mask = self.leaf_subnets[leaf]
        span = (~mask) & 0xFFFFFFFF
        if not 1 <= host <= span:
            raise TopologyError(f"host {host} outside subnet span {span}")
        return base | host

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()

    def __enter__(self) -> "Topology":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- builders -------------------------------------------------------------
    @classmethod
    def leaf_spine(
        cls,
        num_leaves: int,
        num_spines: int,
        *,
        spec: TargetSpec | None = None,
        parse_machine=None,
        workers: int = 0,
        flow_cache: bool = True,
        codegen: bool = True,
        host_ports: int = 4,
        latency_s: float = 2e-6,
        bandwidth_gbps: float = 100.0,
        loss: float = 0.0,
        subnet_base: int = 0x0A000000,
        seed: int = 0,
    ) -> "Topology":
        """Build a leaf-spine fabric: every leaf uplinks to every spine.

        Leaf ``i`` is named ``leaf<i>``, owns host ports
        ``0..host_ports-1`` and the ``subnet_base | (i+1)<<8`` /24; its
        uplink to spine ``s`` uses leaf port ``UPLINK_PORT_BASE + s`` and
        spine port ``i``.  ``num_spines`` may be 0 for a single-switch
        "fabric" (the equivalence-guard configuration).
        """
        if num_leaves < 1:
            raise TopologyError("need at least one leaf")
        if num_spines < 0:
            raise TopologyError("spine count cannot be negative")
        topo = cls(
            host_ports=host_ports,
            spec_params={
                "kind": "leaf-spine",
                "leaves": num_leaves,
                "spines": num_spines,
                "workers": workers,
                "host_ports": host_ports,
                "link": {
                    "latency_us": latency_s * 1e6,
                    "bandwidth_gbps": bandwidth_gbps,
                    "loss": loss,
                },
            },
        )
        for i in range(num_leaves):
            topo.add_node(
                FabricNode(
                    f"leaf{i}",
                    LEAF,
                    spec=spec,
                    parse_machine=parse_machine,
                    workers=workers,
                    flow_cache=flow_cache,
                    codegen=codegen,
                )
            )
            topo.leaf_subnets[f"leaf{i}"] = (
                subnet_base | ((i + 1) << 8),
                0xFFFFFF00,
            )
        for s in range(num_spines):
            topo.add_node(
                FabricNode(
                    f"spine{s}",
                    SPINE,
                    spec=spec,
                    parse_machine=parse_machine,
                    workers=workers,
                    flow_cache=flow_cache,
                    codegen=codegen,
                )
            )
        for i in range(num_leaves):
            for s in range(num_spines):
                topo.add_link(
                    Link(
                        f"leaf{i}",
                        UPLINK_PORT_BASE + s,
                        f"spine{s}",
                        i,
                        latency_s=latency_s,
                        bandwidth_gbps=bandwidth_gbps,
                        loss=loss,
                        seed=seed,
                    )
                )
        return topo

    # -- spec files -----------------------------------------------------------
    def to_spec(self) -> dict:
        """The JSON-serializable builder spec for this topology."""
        if self.spec_params.get("kind") != "leaf-spine":
            raise TopologyError("only leaf-spine topologies serialize to a spec")
        return dict(self.spec_params)

    @classmethod
    def from_spec(cls, spec: dict | str | Path, **overrides) -> "Topology":
        """Build a topology from a spec dict or a JSON spec file path."""
        if isinstance(spec, (str, Path)):
            try:
                spec = json.loads(Path(spec).read_text())
            except (OSError, ValueError) as exc:
                raise TopologyError(f"cannot read topology spec: {exc}") from exc
        if not isinstance(spec, dict):
            raise TopologyError("topology spec must be a JSON object")
        kind = spec.get("kind", "leaf-spine")
        if kind != "leaf-spine":
            raise TopologyError(f"unknown topology kind {kind!r}")
        link = spec.get("link", {})
        kwargs = {
            "workers": spec.get("workers", 0),
            "host_ports": spec.get("host_ports", 4),
            "latency_s": link.get("latency_us", 2.0) * 1e-6,
            "bandwidth_gbps": link.get("bandwidth_gbps", 100.0),
            "loss": link.get("loss", 0.0),
        }
        kwargs.update(overrides)
        return cls.leaf_spine(
            int(spec.get("leaves", 2)), int(spec.get("spines", 2)), **kwargs
        )
