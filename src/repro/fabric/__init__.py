"""repro.fabric — multi-switch leaf-spine fabrics (ROADMAP open item 4).

Layer 5 of the stack: a :class:`Topology` of full P4runpro switch nodes
wired by lossy/latency/bandwidth-modelled :class:`Link` objects, a
:class:`Fabric` packet engine with RSS-style ECMP across spines and
failure scenarios, and a :class:`FabricController` federating every
node's control plane under one all-or-nothing northbound.
"""

from .controller import FabricController, FabricProgram
from .fabric import (
    DROP_CAUSES,
    Fabric,
    FabricReport,
    FlowAccount,
    PacketOutcome,
    Scenario,
)
from .topology import (
    LEAF,
    SPINE,
    UPLINK_PORT_BASE,
    FabricNode,
    Link,
    LinkStats,
    Topology,
    TopologyError,
)

__all__ = [
    "DROP_CAUSES",
    "Fabric",
    "FabricController",
    "FabricNode",
    "FabricProgram",
    "FabricReport",
    "FlowAccount",
    "LEAF",
    "Link",
    "LinkStats",
    "PacketOutcome",
    "SPINE",
    "Scenario",
    "Topology",
    "TopologyError",
    "UPLINK_PORT_BASE",
]
