"""Doubly-linked free lists for per-RPB memory partitions (paper §4.3).

The resource manager "uses bidirectional linked lists to maintain free
memory partitions, supporting only continuous memory allocation".  This is
that structure: first-fit allocation of contiguous runs, coalescing on
free, plus the lock/reset protocol used while a terminated program's
memory is being zeroed (Fig. 6 step 4: locked memory is unavailable for
reallocation until the reset completes).
"""

from __future__ import annotations

from dataclasses import dataclass


class OutOfMemoryError(RuntimeError):
    """No contiguous free run large enough for the request."""


class FreeListCorruptionError(RuntimeError):
    """Freeing a range that is not currently allocated."""


def _plan_against(runs: list[int], size: int, max_fragments: int) -> list[int] | None:
    """Greedy fragment plan against (and deducting from) ``runs``:
    repeatedly place the largest power-of-two chunk of the remaining demand
    into the largest free run that fits it.  The resulting fragment sizes
    are non-increasing, so cumulative virtual offsets stay aligned to each
    fragment's size (the prefix-match requirement of direct mapping)."""
    runs.sort(reverse=True)
    remaining = size
    plan: list[int] = []
    while remaining and len(plan) < max_fragments:
        if not runs or runs[0] <= 0:
            return None
        largest = runs[0]
        chunk = 1 << (remaining.bit_length() - 1)  # pow2 floor of remaining
        chunk = min(chunk, 1 << (largest.bit_length() - 1))
        if chunk == 0:
            return None
        plan.append(chunk)
        remaining -= chunk
        runs[0] -= chunk
        runs.sort(reverse=True)
        while runs and runs[-1] == 0:
            runs.pop()
    return plan if remaining == 0 else None


@dataclass
class _Node:
    start: int
    size: int
    prev: "_Node | None" = None
    next: "_Node | None" = None

    @property
    def end(self) -> int:
        return self.start + self.size


class FreeList:
    """First-fit contiguous allocator over ``[0, capacity)``."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._head: _Node | None = _Node(0, capacity)
        self._allocated: dict[int, int] = {}  # base -> size
        self._locked: dict[int, int] = {}  # base -> size (held during reset)
        #: cached (start, size) runs — the allocator's feasibility prechecks
        #: call free_runs() millions of times between mutations
        self._runs_cache: list[tuple[int, int]] | None = None

    # -- queries ---------------------------------------------------------------
    def free_total(self) -> int:
        total = 0
        node = self._head
        while node is not None:
            total += node.size
            node = node.next
        return total

    def allocated_total(self) -> int:
        return sum(self._allocated.values()) + sum(self._locked.values())

    def utilization(self) -> float:
        return self.allocated_total() / self.capacity

    def largest_free_run(self) -> int:
        largest = 0
        node = self._head
        while node is not None:
            largest = max(largest, node.size)
            node = node.next
        return largest

    def free_runs(self) -> list[tuple[int, int]]:
        """(start, size) of every free partition, in address order."""
        if self._runs_cache is None:
            runs = []
            node = self._head
            while node is not None:
                runs.append((node.start, node.size))
                node = node.next
            self._runs_cache = runs
        return list(self._runs_cache)

    def can_allocate(self, sizes: list[int]) -> bool:
        """Whether a first-fit pass could place all ``sizes`` at once."""
        runs = [size for _, size in self.free_runs()]
        # Largest-first improves the simulation's accuracy for multi-block
        # requests without changing single-block answers.
        for want in sorted(sizes, reverse=True):
            for i, have in enumerate(runs):
                if have >= want:
                    runs[i] = have - want
                    break
            else:
                return False
        return True

    # -- allocation --------------------------------------------------------------
    def allocate(self, size: int) -> int:
        """First-fit allocate; returns the base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        node = self._head
        while node is not None:
            if node.size >= size:
                base = node.start
                node.start += size
                node.size -= size
                if node.size == 0:
                    self._unlink(node)
                self._allocated[base] = size
                self._runs_cache = None
                return base
            node = node.next
        raise OutOfMemoryError(f"no contiguous run of {size} buckets available")

    def free(self, base: int) -> None:
        """Return an allocated block to the free list, coalescing."""
        size = self._allocated.pop(base, None)
        if size is None:
            raise FreeListCorruptionError(f"base {base} is not allocated")
        self._insert_free(base, size)

    # -- fragmented allocation (SwitchVM-style direct mapping, paper §7) ----
    def can_allocate_fragments(self, size: int, max_fragments: int = 8) -> bool:
        """Whether ``size`` buckets can be served by at most
        ``max_fragments`` power-of-two fragments carved from free runs."""
        return self._plan_fragments(size, max_fragments) is not None

    def can_allocate_all_fragmented(
        self, sizes: list[int], max_fragments: int = 8
    ) -> bool:
        """Joint feasibility: can every request be fragment-served at once?

        Simulates sequential planning, largest request first, deducting
        each plan from a copy of the free runs.
        """
        runs = [s for _b, s in self.free_runs()]
        for size in sorted(sizes, reverse=True):
            plan = _plan_against(runs, size, max_fragments)
            if plan is None:
                return False
        return True

    def allocate_fragments(self, size: int, max_fragments: int = 8) -> list[tuple[int, int]]:
        """Allocate ``size`` buckets as power-of-two fragments.

        Returns ``[(base, fragment_size), ...]`` in virtual-address order
        (the caller maps virtual offset 0 to the first fragment).  Falls
        back to a single contiguous block when one fits.
        """
        plan = self._plan_fragments(size, max_fragments)
        if plan is None:
            raise OutOfMemoryError(
                f"cannot serve {size} buckets with {max_fragments} fragments"
            )
        fragments = []
        for fragment_size in plan:
            base = self.allocate(fragment_size)
            fragments.append((base, fragment_size))
        return fragments

    def _plan_fragments(self, size: int, max_fragments: int) -> list[int] | None:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        runs = [s for _b, s in self.free_runs()]
        return _plan_against(runs, size, max_fragments)

    # -- lock / reset protocol ------------------------------------------------
    def lock(self, base: int) -> None:
        """Move an allocated block to the locked state (pending reset)."""
        size = self._allocated.pop(base, None)
        if size is None:
            raise FreeListCorruptionError(f"base {base} is not allocated")
        self._locked[base] = size

    def unlock_and_free(self, base: int) -> None:
        """Release a locked block after its reset completed."""
        size = self._locked.pop(base, None)
        if size is None:
            raise FreeListCorruptionError(f"base {base} is not locked")
        self._insert_free(base, size)

    def locked_ranges(self) -> list[tuple[int, int]]:
        return sorted(self._locked.items())

    # -- internals -----------------------------------------------------------
    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev

    def _insert_free(self, base: int, size: int) -> None:
        self._runs_cache = None
        # Find the first free node starting after `base`.
        node = self._head
        prev: _Node | None = None
        while node is not None and node.start < base:
            prev = node
            node = node.next
        new = _Node(base, size, prev=prev, next=node)
        if prev is not None:
            prev.next = new
        else:
            self._head = new
        if node is not None:
            node.prev = new
        # Coalesce with neighbours.
        if new.next is not None and new.end == new.next.start:
            new.size += new.next.size
            self._unlink(new.next)
        if new.prev is not None and new.prev.end == new.start:
            new.prev.size += new.size
            self._unlink(new)
