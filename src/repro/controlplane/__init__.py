"""P4runpro control plane: resource manager, update engine, controller."""

from .controller import Controller, DeployedProgram, DeployStats
from .freelist import FreeList, FreeListCorruptionError, OutOfMemoryError
from .incremental import CaseHandle, IncrementalUpdateError, IncrementalUpdater
from .manager import (
    INIT_TABLE_CAPACITY,
    RECIRC_TABLE_CAPACITY,
    MemoryAllocation,
    ProgramNotFoundError,
    ProgramRecord,
    ProgramState,
    ResourceManager,
)
from .timing import ConventionalP4Timing, SimClock, UpdateTimingModel
from .update import (
    DataPlaneBinding,
    FaultInjectingBinding,
    FaultPlan,
    NullBinding,
    SouthboundError,
    UpdateEngine,
    UpdateReport,
)

__all__ = [
    "ConventionalP4Timing",
    "Controller",
    "CaseHandle",
    "DataPlaneBinding",
    "DeployStats",
    "DeployedProgram",
    "FaultInjectingBinding",
    "FaultPlan",
    "FreeList",
    "FreeListCorruptionError",
    "INIT_TABLE_CAPACITY",
    "IncrementalUpdateError",
    "IncrementalUpdater",
    "MemoryAllocation",
    "NullBinding",
    "OutOfMemoryError",
    "ProgramNotFoundError",
    "ProgramRecord",
    "ProgramState",
    "RECIRC_TABLE_CAPACITY",
    "ResourceManager",
    "SimClock",
    "SouthboundError",
    "UpdateEngine",
    "UpdateReport",
    "UpdateTimingModel",
]
