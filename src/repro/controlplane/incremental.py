"""Incremental updates of running programs (paper §7, "Incremental
Update" — future work implemented here).

The motivating example: adding a key-value pair to a running cache means
embedding additional case blocks in its BRANCH.  Rather than revoking and
redeploying the whole program (the paper's workaround), this module grows
and shrinks a *running* program's case blocks in place:

* :meth:`IncrementalUpdater.add_case` clones a template case of a chosen
  BRANCH under a fresh branch ID, with new match conditions and
  per-LOADI immediate overrides (e.g. the new key's memory address), and
  installs the entries consistently — body first, the BRANCH case entry
  last, so no packet ever sees a half-added case;
* :meth:`IncrementalUpdater.remove_case` deletes the BRANCH case entry
  first (atomically disabling the case) and then the body entries.

Resource accounting goes through the same manager reservations as full
deployments, so capacity-and-failure behaviour stays consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.entries import EntryConfig, KeySpec, _data, _flag_keys
from ..compiler.ir import CaseInfo, Op
from ..dataplane import constants as dp
from ..lang.errors import P4runproError
from .manager import ProgramRecord, ResourceManager
from .update import UpdateEngine


class IncrementalUpdateError(P4runproError):
    """The requested case edit cannot be applied."""


@dataclass
class CaseHandle:
    """A dynamically added case block of a running program."""

    program_id: int
    branch_id: int
    #: the BRANCH case entry (installed last, deleted first)
    case_entry: tuple[str, int] | None = None
    #: body entries in install order
    body_entries: list[tuple[str, int]] = field(default_factory=list)
    tables_reserved: dict[str, int] = field(default_factory=dict)


def _branches_preorder(record: ProgramRecord) -> list[Op]:
    return [op for op in record.compiled.ir.walk_ops() if op.is_branch]


def _template_case(record: ProgramRecord, branch: Op, index: int) -> CaseInfo:
    cases = branch.cases or []
    if not 0 <= index < len(cases):
        raise IncrementalUpdateError(
            f"program {record.name!r}: BRANCH has no case #{index}"
        )
    template = cases[index]
    for op in template.path.ops:
        if op.is_branch:
            raise IncrementalUpdateError(
                "cannot clone a case containing a nested BRANCH incrementally"
            )
    return template


class IncrementalUpdater:
    """Applies case-block edits to running programs."""

    def __init__(self, manager: ResourceManager, updater: UpdateEngine):
        self.manager = manager
        self.updater = updater
        #: program_id -> next free branch ID for dynamic cases
        self._next_branch: dict[int, int] = {}
        #: live dynamic cases per program
        self._cases: dict[int, list[CaseHandle]] = {}

    # -- add ---------------------------------------------------------------------
    def add_case(
        self,
        record: ProgramRecord,
        conditions: list[tuple[str, int, int]],
        *,
        branch_index: int = 0,
        template_case: int = 0,
        loadi_values: list[int] | None = None,
    ) -> CaseHandle:
        """Add a case block cloned from ``template_case`` of the
        ``branch_index``-th BRANCH (pre-order), matching ``conditions``
        (register, value, mask) and overriding the template body's LOADI
        immediates with ``loadi_values`` in order."""
        branches = _branches_preorder(record)
        if branch_index >= len(branches):
            raise IncrementalUpdateError(
                f"program {record.name!r} has no BRANCH #{branch_index}"
            )
        branch = branches[branch_index]
        template = _template_case(record, branch, template_case)
        if not conditions:
            raise IncrementalUpdateError("a case needs at least one condition")

        branch_id = self._fresh_branch_id(record)
        spec = self.manager.spec
        allocation = record.compiled.allocation
        entries: list[EntryConfig] = []
        loadi_values = list(loadi_values or [])
        loadi_cursor = 0
        bases = {
            mid: (alloc.phys_rpb, alloc.virtual_layout())
            for mid, alloc in record.memory.items()
        }
        for op in template.path.ops:
            if op.name == "NOP":
                continue
            logic = allocation.x[op.depth - 1]
            table = dp.rpb_table(spec.physical_rpb(logic))
            recirc_id = spec.iteration(logic)
            action, data = self._action_for(
                op, bases, record, loadi_values, loadi_cursor
            )
            if op.name == "LOADI" and loadi_cursor < len(loadi_values):
                loadi_cursor += 1
            entries.append(
                EntryConfig(
                    table,
                    tuple(_flag_keys(record.program_id, branch_id, recirc_id)),
                    action,
                    data,
                )
            )
        # The BRANCH case entry itself: keyed on the registers, installed
        # last so the new case activates atomically.
        branch_logic = allocation.x[branch.depth - 1]
        branch_table = dp.rpb_table(spec.physical_rpb(branch_logic))
        branch_recirc = spec.iteration(branch_logic)
        keys = _flag_keys(record.program_id, branch.branch_id, branch_recirc)
        for register, value, mask in conditions:
            if register not in dp.REGISTER_FIELDS:
                raise IncrementalUpdateError(f"unknown register {register!r}")
            keys.append(KeySpec(dp.REGISTER_FIELDS[register], value, mask))
        case_entry = EntryConfig(
            branch_table,
            tuple(keys),
            dp.ACTION_SET_BRANCH,
            _data(branch_id=branch_id),
            priority=len(branch.cases or []) + len(self._cases.get(record.program_id, [])),
        )

        handle = CaseHandle(record.program_id, branch_id)
        self._reserve(handle, entries + [case_entry])
        try:
            for entry in entries:
                table_handle = self.updater.binding.insert_entry(entry)
                handle.body_entries.append((entry.table, table_handle))
            table_handle = self.updater.binding.insert_entry(case_entry)
            handle.case_entry = (case_entry.table, table_handle)
        except Exception:
            self._rollback(handle)
            raise
        self.updater.clock.advance_ms(
            self.updater.timing.install_delay_ms(len(entries) + 1)
        )
        self._cases.setdefault(record.program_id, []).append(handle)
        return handle

    # -- remove -------------------------------------------------------------------
    def remove_case(self, record: ProgramRecord, handle: CaseHandle) -> None:
        """Remove a dynamically added case: its BRANCH entry first."""
        live = self._cases.get(record.program_id, [])
        if handle not in live:
            raise IncrementalUpdateError("case handle is not live")
        if handle.case_entry is not None:
            self.updater.binding.delete_entry(*handle.case_entry)
        for table, table_handle in handle.body_entries:
            self.updater.binding.delete_entry(table, table_handle)
        self.updater.clock.advance_ms(
            self.updater.timing.delete_delay_ms(len(handle.body_entries) + 1)
        )
        self._release(handle)
        live.remove(handle)

    def live_cases(self, program_id: int) -> list[CaseHandle]:
        return list(self._cases.get(program_id, []))

    def drop_program(self, program_id: int) -> None:
        """Forget dynamic-case bookkeeping when a program is revoked.

        Their entries are already covered by the program's removal (the
        manager releases reservations per installed handle), so only the
        reservations this module made must be returned.
        """
        for handle in self._cases.pop(program_id, []):
            self._release(handle)

    # -- internals ------------------------------------------------------------------
    def _fresh_branch_id(self, record: ProgramRecord) -> int:
        start = self._next_branch.get(
            record.program_id, record.compiled.ir.num_branches
        )
        self._next_branch[record.program_id] = start + 1
        return start

    def _action_for(self, op, bases, record, loadi_values, loadi_cursor):
        if op.name == "LOADI":
            reg_arg, imm_arg = op.args
            value = (
                loadi_values[loadi_cursor]
                if loadi_cursor < len(loadi_values)
                else int(imm_arg.value)
            )
            return "LOADI", _data(reg=str(reg_arg.value), value=value)
        if op.name == "OFFSET":
            mid = op.memory_id()
            if mid is None or mid not in bases:
                raise IncrementalUpdateError(f"template references unknown memory {mid!r}")
            _phys, layout = bases[mid]
            if len(layout) > 1:
                raise IncrementalUpdateError(
                    f"memory {mid!r} is direct-mapped across {len(layout)} "
                    "fragments; incremental case cloning supports contiguous "
                    "blocks only"
                )
            _voff, pbase, _fsize = layout[0]
            return "OFFSET", _data(base=pbase, mid=mid)
        # Everything else reuses the static entry generator's encoding.
        from ..compiler.entries import EntryGenerator

        generator = EntryGenerator(self.manager.spec)
        return generator._action_for(op, record.compiled.memory_decls())

    def _reserve(self, handle: CaseHandle, entries: list[EntryConfig]) -> None:
        per_table: dict[str, int] = {}
        for entry in entries:
            per_table[entry.table] = per_table.get(entry.table, 0) + 1
        for table, count in per_table.items():
            free = (
                self.manager._entry_capacity[table]
                - self.manager._entries_reserved[table]
            )
            if count > free:
                raise IncrementalUpdateError(
                    f"table {table} cannot hold {count} more entries"
                )
        for table, count in per_table.items():
            self.manager._entries_reserved[table] += count
            self.manager._touch_table(table)
        handle.tables_reserved = per_table

    def _release(self, handle: CaseHandle) -> None:
        for table, count in handle.tables_reserved.items():
            self.manager._entries_reserved[table] -= count
            self.manager._touch_table(table)
        handle.tables_reserved = {}

    def _rollback(self, handle: CaseHandle) -> None:
        for table, table_handle in handle.body_entries:
            self.updater.binding.delete_entry(table, table_handle)
        handle.body_entries.clear()
        self._release(handle)
