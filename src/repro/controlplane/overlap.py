"""Traffic-filter overlap detection.

P4runpro executes exactly one program per packet (no parallel execution —
paper §7), and the initialization block resolves overlapping filters by
first-match.  Which program owns contested traffic is therefore an
operator responsibility; this module gives the operator the tool the
paper implies they need: a sound overlap check between ternary filter
sets, surfaced as deployment warnings.

Two filter sets overlap iff some packet satisfies both.  Each filter is a
conjunction of ternary conditions, so the sets are disjoint only when
some field is constrained by both sides with *conflicting* required bits
(bits covered by both masks that demand different values).  Fields
constrained by only one side never separate the sets, and parsing-path
requirements only add headers (they cannot conflict).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import Filter
from ..rmt import fields as field_registry


def _canonical(filters: list[Filter]) -> list[tuple[str, int, int]]:
    """Pre-resolve field aliases: (canonical name, value, mask) triples."""
    return [
        (field_registry.canonical_name(f.field), f.value, f.mask) for f in filters
    ]


def _canon_overlap(first, second) -> bool:
    for name_a, val_a, mask_a in first:
        for name_b, val_b, mask_b in second:
            if name_a != name_b:
                continue
            common = mask_a & mask_b
            if (val_a & common) != (val_b & common):
                return False  # provably disjoint on this field
    return True


def filters_overlap(first: list[Filter], second: list[Filter]) -> bool:
    """Whether some packet can match both filter conjunctions."""
    return _canon_overlap(_canonical(first), _canonical(second))


@dataclass(frozen=True)
class OverlapWarning:
    """A deployment-time warning: an earlier program shadows traffic."""

    earlier_program_id: int
    earlier_name: str
    new_name: str

    def __str__(self) -> str:
        return (
            f"filter overlap: traffic matching {self.new_name!r} may be owned "
            f"by earlier program #{self.earlier_program_id} "
            f"({self.earlier_name!r}) — the initialization block resolves "
            "overlaps by first match"
        )


def detect_overlaps(records, new_name: str, new_filters: list[Filter]):
    """Warnings for every running program whose filters overlap the new
    program's (``records`` = the resource manager's program records).

    Each record's canonicalized filter set is memoized on the record —
    filters are immutable after parsing, and with many resident programs
    this check runs once per deploy against every one of them."""
    new_canon = _canonical(new_filters)
    warnings = []
    for record in records:
        canon = getattr(record, "_canon_filters", None)
        if canon is None:
            canon = _canonical(record.compiled.program.filters)
            record._canon_filters = canon
        if _canon_overlap(canon, new_canon):
            warnings.append(
                OverlapWarning(record.program_id, record.name, new_name)
            )
    return warnings
