"""Traffic-filter overlap detection.

P4runpro executes exactly one program per packet (no parallel execution —
paper §7), and the initialization block resolves overlapping filters by
first-match.  Which program owns contested traffic is therefore an
operator responsibility; this module gives the operator the tool the
paper implies they need: a sound overlap check between ternary filter
sets, surfaced as deployment warnings.

Two filter sets overlap iff some packet satisfies both.  Each filter is a
conjunction of ternary conditions, so the sets are disjoint only when
some field is constrained by both sides with *conflicting* required bits
(bits covered by both masks that demand different values).  Fields
constrained by only one side never separate the sets, and parsing-path
requirements only add headers (they cannot conflict).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import Filter
from ..rmt import fields as field_registry


def filters_overlap(first: list[Filter], second: list[Filter]) -> bool:
    """Whether some packet can match both filter conjunctions."""
    for a in first:
        for b in second:
            if field_registry.canonical_name(a.field) != field_registry.canonical_name(
                b.field
            ):
                continue
            common = a.mask & b.mask
            if (a.value & common) != (b.value & common):
                return False  # provably disjoint on this field
    return True


@dataclass(frozen=True)
class OverlapWarning:
    """A deployment-time warning: an earlier program shadows traffic."""

    earlier_program_id: int
    earlier_name: str
    new_name: str

    def __str__(self) -> str:
        return (
            f"filter overlap: traffic matching {self.new_name!r} may be owned "
            f"by earlier program #{self.earlier_program_id} "
            f"({self.earlier_name!r}) — the initialization block resolves "
            "overlaps by first match"
        )


def detect_overlaps(records, new_name: str, new_filters: list[Filter]):
    """Warnings for every running program whose filters overlap the new
    program's (``records`` = the resource manager's program records)."""
    warnings = []
    for record in records:
        if filters_overlap(record.compiled.program.filters, new_filters):
            warnings.append(
                OverlapWarning(record.program_id, record.name, new_name)
            )
    return warnings
