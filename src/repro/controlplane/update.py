"""Consistent update engine (paper §4.3, Fig. 6).

Entries are pushed to the data plane one at a time — the RMT architecture
guarantees per-entry atomicity — but in an order that keeps every
intermediate state invisible to traffic:

* **Add**: all program components (RPB + recirculation entries) first;
  the initialization-block entry last.  Until the init entry lands, no
  packet carries the program's ID, so no half-installed program executes.
* **Delete**: the init entry first — instantly disabling the program ID —
  then the remaining entries, then the lock-reset-unlock memory protocol.

The engine talks to any object implementing :class:`DataPlaneBinding`;
the simulator binding lives in :mod:`repro.dataplane.runpro`, and tests
use in-memory fakes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..compiler.entries import EntryConfig
from .manager import ProgramRecord
from .timing import SimClock, UpdateTimingModel


class DataPlaneBinding(Protocol):
    """The southbound interface (bfrt_grpc stand-in).

    Bindings may additionally implement ``insert_entries(entries) ->
    list[int]`` — a *group-atomic* batched insert (all entries land or
    none do; on failure the binding rolls back its own partial group
    before raising).  The update engine feature-detects it and falls back
    to per-entry ``insert_entry`` calls otherwise.
    """

    def insert_entry(self, entry: EntryConfig) -> int:
        """Install one entry atomically; returns a handle."""
        ...

    def delete_entry(self, table: str, handle: int) -> None:
        """Remove one entry atomically."""
        ...

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        """Zero a bucket range (terminated-program reclaim)."""
        ...


class SouthboundError(ConnectionError):
    """A transient southbound RPC failure (bfrt_grpc UNAVAILABLE stand-in)."""


@dataclass
class FaultPlan:
    """Deterministic southbound fault schedule: fail every k-th operation.

    ``every_k == 0`` disables injection.  ``ops`` selects which southbound
    calls count toward (and can trip) the schedule; by default only entry
    updates, matching the paper's update-delay-critical path.  The counter
    spans operations of all selected kinds, so ``every_k=3`` over
    ``{"insert", "delete"}`` fails the 3rd, 6th, ... update regardless of
    kind.  ``max_faults`` bounds total injections (``None`` = unbounded),
    letting tests model a link that heals after n transient errors.
    """

    every_k: int = 0
    ops: frozenset[str] = frozenset({"insert", "delete"})
    max_faults: int | None = None
    exception: type[Exception] = SouthboundError
    calls: int = 0
    faults: int = 0

    def check(self, op: str) -> None:
        """Count one southbound call; raise if the schedule says so."""
        if self.every_k <= 0 or op not in self.ops:
            return
        self.calls += 1
        if self.calls % self.every_k != 0:
            return
        if self.max_faults is not None and self.faults >= self.max_faults:
            return
        self.faults += 1
        raise self.exception(
            f"injected southbound fault on {op} (call {self.calls})"
        )


class NullBinding:
    """A no-op binding for control-plane-only experiments (no simulator)."""

    def __init__(self, fault_plan: FaultPlan | None = None) -> None:
        self._next = 1
        self.fault_plan = fault_plan

    def _check(self, op: str) -> None:
        if self.fault_plan is not None:
            self.fault_plan.check(op)

    def insert_entry(self, entry: EntryConfig) -> int:
        self._check("insert")
        handle = self._next
        self._next += 1
        return handle

    def insert_entries(self, entries: list[EntryConfig]) -> list[int]:
        # Group-atomic trivially (inserts hold no state to roll back);
        # routed through insert_entry so the fault plan counts every
        # entry and subclass overrides observe the same call sequence as
        # the per-entry path.
        return [self.insert_entry(entry) for entry in entries]

    def delete_entry(self, table: str, handle: int) -> None:
        self._check("delete")

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        self._check("reset")


class FaultInjectingBinding:
    """Wraps any binding with a :class:`FaultPlan` (fails before the call
    reaches the inner binding, so a fault never half-applies an update).
    Everything the plan does not cover is transparently delegated."""

    def __init__(self, inner: DataPlaneBinding, plan: FaultPlan):
        self.inner = inner
        self.fault_plan = plan

    def insert_entry(self, entry: EntryConfig) -> int:
        self.fault_plan.check("insert")
        return self.inner.insert_entry(entry)

    def insert_entries(self, entries: list[EntryConfig]) -> list[int]:
        """Group-atomic batched insert under the fault schedule.

        Defined explicitly (not left to ``__getattr__``) so grouped
        installs cannot silently bypass the plan via the inner binding.
        Each entry counts as one "insert"; a fault mid-group rolls back
        the group's partial inserts through the *inner* binding — the
        schedule must not be able to wedge its own rollback.
        """
        handles: list[int] = []
        for entry in entries:
            try:
                self.fault_plan.check("insert")
                handle = self.inner.insert_entry(entry)
            except Exception:
                for done, h in reversed(list(zip(entries, handles))):
                    self.inner.delete_entry(done.table, h)
                raise
            handles.append(handle)
        return handles

    def delete_entry(self, table: str, handle: int) -> None:
        self.fault_plan.check("delete")
        self.inner.delete_entry(table, handle)

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        self.fault_plan.check("reset")
        self.inner.reset_memory(phys_rpb, base, size)

    def __getattr__(self, name):
        return getattr(self.inner, name)


@dataclass
class UpdateReport:
    """What one install/remove cost."""

    program: str
    entries: int
    update_delay_ms: float


class UpdateEngine:
    """Applies entry batches in consistent order with modelled delays."""

    def __init__(
        self,
        binding: DataPlaneBinding,
        clock: SimClock | None = None,
        timing: UpdateTimingModel | None = None,
    ):
        self.binding = binding
        self.clock = clock or SimClock()
        self.timing = timing or UpdateTimingModel()

    #: entries per grouped southbound update (RBFRT-style batched writes)
    GROUP_SIZE = 256

    def install(self, record: ProgramRecord) -> UpdateReport:
        """Install a program's batch; init entry last (Fig. 6 add order).

        If any southbound insert fails, every entry installed so far is
        rolled back before the error propagates — the Fig. 6 ordering
        guarantees no packet observed the half-installed program (the init
        entry is always last), so rollback restores the exact pre-install
        state.
        """
        steps = self.install_steps(record)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def install_steps(self, record: ProgramRecord):
        """Grouped install as a generator: yields the cumulative entry
        count after each southbound group lands, and returns the
        :class:`UpdateReport` on completion.

        Groups preserve the Fig. 6 add order — body and recirculation
        entries stream first in :data:`GROUP_SIZE` chunks, and the init
        entries (which activate the program) always form the *final*
        group — so every intermediate state between yields is invisible
        to traffic, and an async caller can interleave other control
        work (e.g. another tenant's solve) between groups.
        """
        batch = record.batch
        components = [*batch.body_entries, *batch.recirc_entries]
        if len(components) + len(batch.init_entries) <= self.GROUP_SIZE:
            # Small program: one grouped southbound write.  Order within
            # the group still follows Fig. 6 (init entries last), so no
            # intermediate state is visible to traffic.
            combined = components + list(batch.init_entries)
            groups = [combined] if combined else []
        else:
            groups = [
                components[i : i + self.GROUP_SIZE]
                for i in range(0, len(components), self.GROUP_SIZE)
            ]
            if batch.init_entries:
                groups.append(list(batch.init_entries))
        total = 0
        for group in groups:
            self._insert_group(record, group)
            total += len(group)
            yield total
        delay_ms = self.timing.install_delay_ms(total)
        self.clock.advance_ms(delay_ms)
        return UpdateReport(record.name, total, delay_ms)

    def _insert_group(self, record: ProgramRecord, group: list[EntryConfig]) -> None:
        """Install one group; on failure, roll back *everything* installed
        for this record (earlier groups included) and re-raise."""
        # Feature-detect on the binding's CLASS: a wrapper that overrides
        # only insert_entry but delegates unknown attributes (__getattr__)
        # must not have its per-entry behavior silently bypassed by the
        # inner binding's batched implementation.
        insert_many = None
        if getattr(type(self.binding), "insert_entries", None) is not None:
            insert_many = self.binding.insert_entries
        if callable(insert_many):
            try:
                handles = insert_many(group)
            except Exception:
                # Group-atomic contract: the binding already undid this
                # group's partial inserts; undo the earlier groups here.
                self._rollback_installed(record)
                raise
            record.installed_handles.extend(
                (entry.table, handle) for entry, handle in zip(group, handles)
            )
            return
        for entry in group:
            try:
                handle = self.binding.insert_entry(entry)
            except Exception:
                self._rollback_installed(record)
                raise
            record.installed_handles.append((entry.table, handle))

    def _rollback_installed(self, record: ProgramRecord) -> None:
        for table, installed in reversed(record.installed_handles):
            self.binding.delete_entry(table, installed)
        record.installed_handles.clear()

    def remove(self, record: ProgramRecord) -> UpdateReport:
        """Remove a program: init first, then components, then memory reset."""
        handles = {(table, handle) for table, handle in record.installed_handles}
        ordered: list[tuple[str, int]] = []
        # Delete in the batch's delete order: init entries were installed
        # last, so they sit at the tail of installed_handles.
        delete_sequence = record.batch.delete_order()
        remaining = list(record.installed_handles)
        for entry in delete_sequence:
            for i, (table, handle) in enumerate(remaining):
                if table == entry.table:
                    ordered.append((table, handle))
                    remaining.pop(i)
                    break
        ordered.extend(remaining)
        assert len(ordered) == len(handles)
        for table, handle in ordered:
            self.binding.delete_entry(table, handle)
        delay_ms = self.timing.delete_delay_ms(len(ordered))
        # Reset (zero) the program's memory while it is locked.
        for alloc in record.memory.values():
            for phys_base, fragment_size in alloc.fragments:
                self.binding.reset_memory(alloc.phys_rpb, phys_base, fragment_size)
            delay_ms += self.timing.memory_reset_ms(alloc.size)
        self.clock.advance_ms(delay_ms)
        return UpdateReport(record.name, len(ordered), delay_ms)
