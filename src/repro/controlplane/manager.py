"""The P4runpro resource manager (paper §3.1, §4.3).

Maintains dynamic resource usage: per-RPB memory free lists, per-table
entry reservations, and the registry of running programs.  It is the
compiler's :class:`~repro.compiler.target.ResourceView` — allocation
feasibility is always judged against the manager's current state — and the
authority the controller consults when deploying, revoking, or monitoring
programs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..compiler.compiler import CompiledProgram
from ..compiler.entries import EntryBatch
from ..compiler.target import TargetSpec
from ..dataplane import constants as dp
from .freelist import FreeList, OutOfMemoryError


class ProgramState(Enum):
    INSTALLING = "installing"
    RUNNING = "running"
    REMOVING = "removing"
    REMOVED = "removed"


@dataclass
class MemoryAllocation:
    mid: str
    phys_rpb: int
    base: int
    size: int
    #: physical fragments serving the block, in virtual-address order:
    #: [(physical base, fragment size)]; one entry == contiguous
    fragments: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.fragments:
            self.fragments = [(self.base, self.size)]

    def virtual_layout(self) -> list[tuple[int, int, int]]:
        """[(virtual offset, physical base, fragment size)]."""
        layout = []
        offset = 0
        for phys_base, fragment_size in self.fragments:
            layout.append((offset, phys_base, fragment_size))
            offset += fragment_size
        return layout

    def translate(self, vaddr: int) -> int:
        """Virtual address -> physical bucket address."""
        for offset, phys_base, fragment_size in self.virtual_layout():
            if offset <= vaddr < offset + fragment_size:
                return phys_base + (vaddr - offset)
        raise ValueError(f"virtual address {vaddr} outside {self.mid}")


@dataclass
class ProgramRecord:
    """A deployed program's lifecycle record."""

    name: str
    program_id: int
    compiled: CompiledProgram
    batch: EntryBatch
    memory: dict[str, MemoryAllocation]
    state: ProgramState = ProgramState.INSTALLING
    #: (table, handle) pairs of installed entries, in install order
    installed_handles: list[tuple[str, int]] = field(default_factory=list)


class ProgramNotFoundError(KeyError):
    """Unknown program ID/handle."""


#: Capacities of the fixed (non-RPB) tables.
INIT_TABLE_CAPACITY = 8192
RECIRC_TABLE_CAPACITY = 4096


class ResourceManager:
    """Tracks free resources and running programs."""

    def __init__(self, spec: TargetSpec | None = None):
        self.spec = spec or TargetSpec()
        self._freelists: dict[int, FreeList] = {
            phys: FreeList(self.spec.rpb_memory_size)
            for phys in range(1, self.spec.num_rpbs + 1)
        }
        self._entry_capacity: dict[str, int] = {
            dp.rpb_table(phys): self.spec.rpb_table_size
            for phys in range(1, self.spec.num_rpbs + 1)
        }
        self._entry_capacity[dp.INIT_TABLE] = INIT_TABLE_CAPACITY
        self._entry_capacity[dp.RECIRC_TABLE] = RECIRC_TABLE_CAPACITY
        self._entries_reserved: dict[str, int] = dict.fromkeys(self._entry_capacity, 0)
        self._programs: dict[int, ProgramRecord] = {}
        self._id_counter = itertools.count(1)
        #: bumped on every change to resource availability (admission,
        #: aborts, removals); caches derived from this view — notably the
        #: allocation solver's static-feasibility sets — key on it
        self.generation = 0
        #: per-physical-RPB version counters (index 0 unused); bumped only
        #: when *that* RPB's availability changes, so solver caches can
        #: refresh incrementally instead of discarding everything on every
        #: ``generation`` bump
        self._phys_version: list[int] = [0] * (self.spec.num_rpbs + 1)
        self._table_phys: dict[str, int] = {
            dp.rpb_table(phys): phys for phys in range(1, self.spec.num_rpbs + 1)
        }
        #: phys -> (version when computed, digest) — availability_digest's
        #: incremental per-RPB cache
        self._avail_digests: dict[int, tuple[int, int]] = {}

    # -- ResourceView protocol -----------------------------------------------------
    def free_entries(self, phys_rpb: int) -> int:
        table = dp.rpb_table(phys_rpb)
        return self._entry_capacity[table] - self._entries_reserved[table]

    def can_allocate_memory(self, phys_rpb: int, sizes: list[int]) -> bool:
        return self._freelists[phys_rpb].can_allocate(sizes)

    def can_allocate_memory_direct(self, phys_rpb: int, sizes: list[int]) -> bool:
        """Fragmented feasibility (direct mapping, paper §7)."""
        return self._freelists[phys_rpb].can_allocate_all_fragmented(sizes)

    def phys_versions(self) -> tuple[int, ...]:
        """Per-physical-RPB availability version counters (index 0 unused).

        Equality of two snapshots at one index means that RPB's free
        entries and free memory runs are unchanged between them — the
        contract the solver's incremental feasibility refresh relies on.
        """
        return tuple(self._phys_version)

    def availability_digest(self) -> int:
        """Digest of current resource availability, for memoization.

        Two equal digests guarantee that every RPB's free-memory runs
        (including lock state — locked regions are absent from the runs)
        and reserved entry counts, plus the fixed init/recirculation
        tables' reservations, are identical.  Any pure function of
        availability — notably the allocation solver's decision for a
        given demand shape — must therefore return the same answer, which
        is what lets the deploy cache replay a prior rebind result without
        re-walking its trace.  Per-RPB digests are cached against
        ``_phys_version``, so a deploy/revoke only re-hashes the RPBs it
        touched.  Process-local (built on ``hash`` of int tuples); never
        persist it.
        """
        parts = []
        cache = self._avail_digests
        versions = self._phys_version
        for phys in range(1, self.spec.num_rpbs + 1):
            version = versions[phys]
            cached = cache.get(phys)
            if cached is None or cached[0] != version:
                table = dp.rpb_table(phys)
                digest = hash(
                    (
                        tuple(self._freelists[phys].free_runs()),
                        self._entries_reserved[table],
                    )
                )
                cached = (version, digest)
                cache[phys] = cached
            parts.append(cached[1])
        parts.append(self._entries_reserved[dp.INIT_TABLE])
        parts.append(self._entries_reserved[dp.RECIRC_TABLE])
        return hash(tuple(parts))

    def touch_phys(self, phys_rpb: int) -> None:
        """Record that a physical RPB's availability changed.

        Exposed (rather than private) because elastic in-place updates
        (:mod:`..controlplane.incremental`) adjust entry reservations
        directly and must invalidate the solver's per-RPB feasibility.
        """
        self._phys_version[phys_rpb] += 1

    def _touch_table(self, table: str) -> None:
        phys = self._table_phys.get(table)
        if phys is not None:
            self._phys_version[phys] += 1

    # -- program lifecycle -----------------------------------------------------------
    def admit(self, compiled: CompiledProgram) -> ProgramRecord:
        """Reserve resources for a compiled program and mint its record.

        Allocates memory bases via the free lists, emits the entry batch,
        and reserves the table entries.  Rolls everything back and raises
        if any step fails (the allocation vector should have guaranteed
        feasibility, so a failure here indicates a race or model bug).
        """
        program_id = next(self._id_counter)
        memory: dict[str, MemoryAllocation] = {}
        try:
            for mid, (phys, size) in sorted(compiled.memory_requests().items()):
                if getattr(compiled, "direct_memory", False):
                    fragments = self._freelists[phys].allocate_fragments(size)
                else:
                    fragments = [(self._freelists[phys].allocate(size), size)]
                memory[mid] = MemoryAllocation(
                    mid, phys, fragments[0][0], size, fragments=fragments
                )
        except OutOfMemoryError:
            for alloc in memory.values():
                for phys_base, _fsize in alloc.fragments:
                    self._freelists[alloc.phys_rpb].free(phys_base)
            raise
        bases = {
            mid: (alloc.phys_rpb, alloc.virtual_layout())
            for mid, alloc in memory.items()
        }
        batch = compiled.emit_entries(self.spec, program_id, bases)
        # Reserve entries per table; verify capacity.
        per_table = batch.table_counts()
        for table, count in per_table.items():
            if self._entries_reserved[table] + count > self._entry_capacity[table]:
                for alloc in memory.values():
                    self._freelists[alloc.phys_rpb].free(alloc.base)
                raise OutOfMemoryError(
                    f"table {table} cannot hold {count} more entries"
                )
        for table, count in per_table.items():
            self._entries_reserved[table] += count
            self._touch_table(table)
        for alloc in memory.values():
            self.touch_phys(alloc.phys_rpb)
        record = ProgramRecord(compiled.name, program_id, compiled, batch, memory)
        self._programs[program_id] = record
        self.generation += 1
        return record

    def mark_running(self, record: ProgramRecord) -> None:
        record.state = ProgramState.RUNNING

    def abort_admission(self, record: ProgramRecord) -> None:
        """Undo :meth:`admit` after a failed install (no entries remain
        on the data plane): release entry reservations and memory."""
        for table, count in record.batch.table_counts().items():
            self._entries_reserved[table] -= count
            self._touch_table(table)
        for alloc in record.memory.values():
            for phys_base, _fsize in alloc.fragments:
                self._freelists[alloc.phys_rpb].free(phys_base)
            self.touch_phys(alloc.phys_rpb)
        record.state = ProgramState.REMOVED
        del self._programs[record.program_id]
        self.generation += 1

    def begin_removal(self, program_id: int) -> ProgramRecord:
        record = self.get(program_id)
        record.state = ProgramState.REMOVING
        # Lock the program's memory: unavailable for reallocation until the
        # reset completes (Fig. 6 step 4).
        for alloc in record.memory.values():
            for phys_base, _fsize in alloc.fragments:
                self._freelists[alloc.phys_rpb].lock(phys_base)
        self.generation += 1
        return record

    def finish_removal(self, record: ProgramRecord) -> None:
        for table, _handle in record.installed_handles:
            self._entries_reserved[table] -= 1
            self._touch_table(table)
        record.installed_handles.clear()
        for alloc in record.memory.values():
            for phys_base, _fsize in alloc.fragments:
                self._freelists[alloc.phys_rpb].unlock_and_free(phys_base)
            self.touch_phys(alloc.phys_rpb)
        record.state = ProgramState.REMOVED
        del self._programs[record.program_id]
        self.generation += 1

    def seed_program_id(self, next_id: int) -> None:
        """Pin the next admitted program's id (audit-log replay).

        A live run may burn ids on deployments that later failed; replay
        only re-applies the successful ones, so it aligns the counter to
        each record's id before re-deploying to reproduce the original
        registry byte-for-byte.
        """
        if next_id in self._programs:
            raise ValueError(f"program id {next_id} is already in use")
        self._id_counter = itertools.count(next_id)

    def get(self, program_id: int) -> ProgramRecord:
        record = self._programs.get(program_id)
        if record is None:
            raise ProgramNotFoundError(f"no program with id {program_id}")
        return record

    def programs(self) -> list[ProgramRecord]:
        return list(self._programs.values())

    # -- monitoring -------------------------------------------------------------
    def memory_utilization(self, phys_rpb: int | None = None) -> float:
        """Fraction of memory buckets allocated (one RPB or chip-wide)."""
        if phys_rpb is not None:
            return self._freelists[phys_rpb].utilization()
        total = sum(fl.allocated_total() for fl in self._freelists.values())
        capacity = self.spec.rpb_memory_size * self.spec.num_rpbs
        return total / capacity

    def entry_utilization(self, phys_rpb: int | None = None) -> float:
        """Fraction of RPB table entries reserved (one RPB or all RPBs)."""
        if phys_rpb is not None:
            table = dp.rpb_table(phys_rpb)
            return self._entries_reserved[table] / self._entry_capacity[table]
        rpb_tables = [dp.rpb_table(p) for p in range(1, self.spec.num_rpbs + 1)]
        used = sum(self._entries_reserved[t] for t in rpb_tables)
        capacity = sum(self._entry_capacity[t] for t in rpb_tables)
        return used / capacity

    def state_fingerprint(self) -> str:
        """Canonical JSON digest of the manager's entire dynamic state.

        Covers every free list (free runs, allocated and locked blocks),
        every table's reserved-entry count, and the program registry
        (ids, names, states, memory layouts, per-table installed-entry
        counts).  Two managers that fingerprint equal are byte-identical
        as far as admission decisions are concerned — the basis for the
        rollback tests and for audit-log replay verification.  Raw entry
        handles are deliberately excluded: they depend on how many
        southbound attempts a binding has seen, not on what is installed.
        """
        import json

        programs = {}
        for program_id, record in sorted(self._programs.items()):
            per_table: dict[str, int] = {}
            for table, _handle in record.installed_handles:
                per_table[table] = per_table.get(table, 0) + 1
            programs[str(program_id)] = {
                "name": record.name,
                "state": record.state.value,
                "memory": {
                    mid: [alloc.phys_rpb, alloc.fragments]
                    for mid, alloc in sorted(record.memory.items())
                },
                "installed": dict(sorted(per_table.items())),
            }
        state = {
            "freelists": {
                str(phys): {
                    "free": fl.free_runs(),
                    "allocated": sorted(fl._allocated.items()),
                    "locked": fl.locked_ranges(),
                }
                for phys, fl in sorted(self._freelists.items())
            },
            "entries_reserved": dict(sorted(self._entries_reserved.items())),
            "programs": programs,
        }
        return json.dumps(state, sort_keys=True)

    def utilization_snapshot(self) -> dict[str, list[float]]:
        """Per-RPB memory and entry utilization (Fig. 18/19 heatmaps)."""
        rpbs = range(1, self.spec.num_rpbs + 1)
        return {
            "memory": [self.memory_utilization(p) for p in rpbs],
            "entries": [self.entry_utilization(p) for p in rpbs],
        }
