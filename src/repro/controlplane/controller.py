"""The P4runpro control-plane controller: the operator-facing API.

This is the facade the paper's runtime CLI wraps (§5): deploy a P4runpro
source, revoke a running program, read/write a program's virtual memory
through address translation, and monitor resource usage.  It wires
together the compiler, the resource manager, and the consistent-update
engine.

Typical use::

    from repro.controlplane import Controller
    ctl = Controller.with_simulator()           # builds a simulated switch
    handle = ctl.deploy(CACHE_SOURCE)
    ctl.write_memory(handle, "mem1", 512, 0xabcd)
    ...
    ctl.revoke(handle)
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclasses_field

from ..compiler.alloc_cache import DeployCache
from ..compiler.compiler import (
    CompileOptions,
    CompiledProgram,
    allocate_program,
    compile_program,
    parse_and_check,
)
from ..compiler.target import TargetSpec
from ..lang.errors import P4runproError
from .manager import ProgramRecord, ResourceManager
from .timing import SimClock, UpdateTimingModel
from .update import DataPlaneBinding, NullBinding, UpdateEngine


@dataclass
class DeployStats:
    """Timing breakdown of one deployment (paper §6.2.1)."""

    program: str
    program_id: int
    parse_ms: float
    allocation_ms: float
    update_ms: float
    entries: int
    logic_rpbs: list[int]
    #: running programs whose filters overlap this one's (first-match
    #: ownership applies; see repro.controlplane.overlap)
    overlap_warnings: list = dataclasses_field(default_factory=list)
    #: the allocation came from the deploy cache (trace rebind) rather
    #: than a fresh branch-and-bound solve
    cache_hit: bool = False

    @property
    def total_ms(self) -> float:
        return self.parse_ms + self.allocation_ms + self.update_ms


@dataclass
class DeployedProgram:
    """Operator handle to a running program."""

    program_id: int
    name: str
    stats: DeployStats


@dataclass
class PreparedDeploy:
    """The solve half of a deployment: compiled, admitted, not installed.

    Produced by :meth:`Controller.prepare_deploy`; resources (memory
    bases, table-entry reservations, the program id) are already reserved,
    so another tenant's solve can proceed concurrently while this one's
    entries stream to the data plane via :meth:`Controller.install_steps`.
    """

    compiled: CompiledProgram
    record: "ProgramRecord"
    overlap_warnings: list
    #: set when install_steps completes
    result: DeployedProgram | None = None

    @property
    def program_id(self) -> int:
        return self.record.program_id


class Controller:
    """P4runpro control plane: compiler + resource manager + updater."""

    def __init__(
        self,
        binding: DataPlaneBinding | None = None,
        *,
        spec: TargetSpec | None = None,
        clock: SimClock | None = None,
        timing: UpdateTimingModel | None = None,
    ):
        self.spec = spec or TargetSpec()
        self.manager = ResourceManager(self.spec)
        self.clock = clock or SimClock()
        self.updater = UpdateEngine(binding or NullBinding(), self.clock, timing)
        #: the deploy fast path (front-end + allocation-shape caches);
        #: set ``deploy_cache.enabled = False`` to force reference-path
        #: behavior (every deploy re-parses and re-solves from scratch)
        self.deploy_cache = DeployCache()
        from .incremental import IncrementalUpdater

        self.incremental = IncrementalUpdater(self.manager, self.updater)

    @classmethod
    def with_simulator(
        cls,
        *,
        spec: TargetSpec | None = None,
        clock: SimClock | None = None,
        timing: UpdateTimingModel | None = None,
        parse_machine=None,
    ) -> tuple["Controller", "object"]:
        """Build a controller bound to a freshly provisioned simulator.

        Returns ``(controller, dataplane)`` — the data plane exposes the
        simulated switch for traffic injection.  ``parse_machine``
        customizes the compile-time parser (paper §5: "the parser and the
        initialization block can be customized").
        """
        from ..dataplane.runpro import P4runproDataPlane

        dataplane = P4runproDataPlane(spec or TargetSpec(), parse_machine)
        controller = cls(dataplane, spec=spec, clock=clock, timing=timing)
        return controller, dataplane

    @classmethod
    def with_chain(
        cls,
        num_switches: int = 2,
        *,
        clock: SimClock | None = None,
        timing: UpdateTimingModel | None = None,
    ) -> tuple["Controller", "object"]:
        """Build a controller driving a chain of recirculation-free
        P4runpro switches (paper §4.1.3's alternative to recirculation)."""
        from ..compiler.target import ChainSpec
        from ..dataplane.chain import SwitchChain

        spec = ChainSpec(num_switches=num_switches)
        chain = SwitchChain(spec)
        controller = cls(chain, spec=spec, clock=clock, timing=timing)
        return controller, chain

    # -- deployment -----------------------------------------------------------
    def compile(
        self, source: str, *, program_name: str | None = None, options: CompileOptions | None = None
    ) -> CompiledProgram:
        """Compile against current resource state without deploying.

        Routes through the deploy cache: a previously seen (source,
        options) pair skips the parser and translator, and a previously
        solved allocation *shape* skips the branch-and-bound solve when
        its trace replays cleanly against current occupancy (the
        resulting allocation is identical to a fresh solve either way).
        """
        import time

        options = options or CompileOptions()
        from ..compiler.objectives import f1

        objective = options.objective or f1()
        cache = self.deploy_cache if self.deploy_cache.enabled else None
        front_key = (
            source,
            program_name,
            options.elastic_cases,
            options.elastic_branch,
        )
        t0 = time.perf_counter()
        front = cache.lookup_frontend(front_key) if cache is not None else None
        if front is None:
            unit = parse_and_check(source)
            parse_time = time.perf_counter() - t0
            program = self._select(unit, program_name)
            t1 = time.perf_counter()
            from ..compiler.allocation import build_problem
            from ..compiler.translate import translate

            translation = translate(
                program,
                elastic_branch=options.elastic_branch,
                elastic_cases=options.elastic_cases,
            )
            problem = build_problem(unit, translation)
            translate_time = time.perf_counter() - t1
            if cache is not None:
                cache.store_frontend(
                    front_key, (unit, program, translation, problem)
                )
        else:
            unit, program, translation, problem = front
            parse_time = time.perf_counter() - t0
            translate_time = 0.0
        t2 = time.perf_counter()
        allocation = allocate_program(
            problem,
            objective,
            spec=self.spec,
            view=self.manager,
            max_nodes=options.max_solver_nodes,
            direct_memory=options.direct_memory,
            deploy_cache=cache,
        )
        allocate_time = time.perf_counter() - t2
        return CompiledProgram(
            unit=unit,
            program=program,
            translation=translation,
            problem=problem,
            allocation=allocation,
            parse_time_s=parse_time,
            translate_time_s=translate_time,
            allocate_time_s=allocate_time,
            direct_memory=options.direct_memory,
        )

    def prepare_deploy(
        self,
        source: str | CompiledProgram,
        *,
        program_name: str | None = None,
        options: CompileOptions | None = None,
    ) -> PreparedDeploy:
        """The solve half of :meth:`deploy`: compile (if needed), check
        overlaps, and admit — reserving memory and entries — without
        touching the data plane.  Follow with :meth:`install_steps` (or
        :meth:`deploy`, which does both)."""
        if isinstance(source, CompiledProgram):
            compiled = source
        else:
            compiled = self.compile(source, program_name=program_name, options=options)
        from .overlap import detect_overlaps

        warnings = detect_overlaps(
            self.manager.programs(), compiled.name, compiled.program.filters
        )
        record = self.manager.admit(compiled)
        return PreparedDeploy(compiled, record, warnings)

    def install_steps(self, prepared: PreparedDeploy):
        """The install half of :meth:`deploy`, as a generator.

        Yields after each grouped southbound update so an async caller
        (the service) can overlap another tenant's solve with this
        tenant's entry writes.  On any failure the admission is aborted —
        the manager state is byte-identical to before
        :meth:`prepare_deploy` — before the error propagates.  When the
        generator is exhausted, ``prepared.result`` holds the
        :class:`DeployedProgram` handle.
        """
        record, compiled = prepared.record, prepared.compiled
        steps = self.updater.install_steps(record)
        try:
            while True:
                try:
                    step = next(steps)
                except StopIteration as stop:
                    report = stop.value
                    break
                yield step
        except Exception:
            # The update engine already rolled back every installed entry;
            # release the admission's reservations and memory too.
            self.manager.abort_admission(record)
            raise
        self.manager.mark_running(record)
        stats = DeployStats(
            program=compiled.name,
            program_id=record.program_id,
            parse_ms=compiled.parse_time_s * 1e3,
            allocation_ms=(compiled.translate_time_s + compiled.allocate_time_s) * 1e3,
            update_ms=report.update_delay_ms,
            entries=report.entries,
            logic_rpbs=list(compiled.allocation.x),
            overlap_warnings=prepared.overlap_warnings,
            cache_hit=compiled.allocation.rebound,
        )
        prepared.result = DeployedProgram(record.program_id, compiled.name, stats)

    def deploy(
        self,
        source: str | CompiledProgram,
        *,
        program_name: str | None = None,
        options: CompileOptions | None = None,
    ) -> DeployedProgram:
        """Compile (if needed), allocate, and consistently install a program.

        Raises :class:`~repro.lang.errors.AllocationError` when the data
        plane cannot host the program; nothing is modified in that case.
        """
        prepared = self.prepare_deploy(
            source, program_name=program_name, options=options
        )
        for _ in self.install_steps(prepared):
            pass
        assert prepared.result is not None
        return prepared.result

    def revoke(self, handle: DeployedProgram | int) -> float:
        """Consistently remove a program; returns the update delay in ms."""
        program_id = handle.program_id if isinstance(handle, DeployedProgram) else handle
        record = self.manager.begin_removal(program_id)
        # Dynamically added cases are deleted with the program: remove
        # their entries first (their case entries key off the program ID
        # that is about to be disabled anyway), then the static batch.
        for case in self.incremental.live_cases(program_id):
            if case.case_entry is not None:
                self.updater.binding.delete_entry(*case.case_entry)
            for table, table_handle in case.body_entries:
                self.updater.binding.delete_entry(table, table_handle)
        self.incremental.drop_program(program_id)
        report = self.updater.remove(record)
        self.manager.finish_removal(record)
        # Drop the revoked shape's static-feasibility line from the shared
        # solver cache: a churning service otherwise pins one line per
        # shape it ever hosted, and the line would be version-stale anyway.
        from ..compiler.solver import evict_problem_shape

        evict_problem_shape(self.manager, record.compiled.problem)
        return report.update_delay_ms

    # -- incremental updates (paper §7 future work) ---------------------------
    def add_case(
        self,
        handle: DeployedProgram | int,
        conditions: list[tuple[str, int, int]],
        *,
        branch_index: int = 0,
        template_case: int = 0,
        loadi_values: list[int] | None = None,
    ):
        """Grow a running program's BRANCH with a new case block (e.g. a
        new cache key) without redeploying it.  Returns a case handle for
        later :meth:`remove_case`."""
        program_id = handle.program_id if isinstance(handle, DeployedProgram) else handle
        record = self.manager.get(program_id)
        return self.incremental.add_case(
            record,
            conditions,
            branch_index=branch_index,
            template_case=template_case,
            loadi_values=loadi_values,
        )

    def remove_case(self, handle: DeployedProgram | int, case_handle) -> None:
        """Remove a dynamically added case block from a running program."""
        program_id = handle.program_id if isinstance(handle, DeployedProgram) else handle
        record = self.manager.get(program_id)
        self.incremental.remove_case(record, case_handle)

    # -- memory access (raw APIs with address translation) ---------------------
    def read_memory(self, handle: DeployedProgram | int, mid: str, vaddr: int) -> int:
        record, alloc = self._memory(handle, mid)
        binding = self.updater.binding
        if not hasattr(binding, "read_bucket"):
            raise P4runproError("binding does not support memory reads")
        self.clock.advance_ms(self.updater.timing.register_access_ms)
        self._check_vaddr(alloc, vaddr)
        return binding.read_bucket(alloc.phys_rpb, alloc.translate(vaddr))

    def write_memory(
        self, handle: DeployedProgram | int, mid: str, vaddr: int, value: int
    ) -> None:
        record, alloc = self._memory(handle, mid)
        binding = self.updater.binding
        if not hasattr(binding, "write_bucket"):
            raise P4runproError("binding does not support memory writes")
        self.clock.advance_ms(self.updater.timing.register_access_ms)
        self._check_vaddr(alloc, vaddr)
        binding.write_bucket(alloc.phys_rpb, alloc.translate(vaddr), value)

    def configure_multicast_group(self, group: int, ports: list[int]) -> None:
        """Program a traffic-manager multicast group (MULTICAST extension)."""
        binding = self.updater.binding
        if not hasattr(binding, "configure_multicast_group"):
            raise P4runproError("binding does not support multicast groups")
        binding.configure_multicast_group(group, ports)

    # -- monitoring ------------------------------------------------------------
    def program_stats(self, handle: DeployedProgram | int) -> dict[str, int]:
        """Per-program runtime statistics via the entries' direct counters.

        Returns ``matched_packets`` (hits on the init/filter entry — each
        owned packet matches it exactly once), ``total_entry_hits`` (sum
        over every installed entry, i.e. atomic operations executed), and
        ``entries`` (installed entry count).
        """
        program_id = handle.program_id if isinstance(handle, DeployedProgram) else handle
        record = self.manager.get(program_id)
        binding = self.updater.binding
        if not hasattr(binding, "read_entry_counter"):
            raise P4runproError("binding does not expose entry counters")
        from ..dataplane import constants as dp_constants

        matched = 0
        total = 0
        for table, entry_handle in record.installed_handles:
            hits = binding.read_entry_counter(table, entry_handle)
            total += hits
            if table == dp_constants.INIT_TABLE:
                matched += hits
        return {
            "matched_packets": matched,
            "total_entry_hits": total,
            "entries": len(record.installed_handles),
        }

    def snapshot_memory(
        self, handle: DeployedProgram | int, mid: str
    ) -> list[int]:
        """Dump a program's whole virtual memory block (monitoring API)."""
        program_id = handle.program_id if isinstance(handle, DeployedProgram) else handle
        record = self.manager.get(program_id)
        alloc = record.memory.get(mid)
        if alloc is None:
            raise P4runproError(f"program {record.name!r} has no memory {mid!r}")
        binding = self.updater.binding
        if not hasattr(binding, "read_bucket"):
            raise P4runproError("binding does not support memory reads")
        return [
            binding.read_bucket(alloc.phys_rpb, alloc.translate(offset))
            for offset in range(alloc.size)
        ]

    def running_programs(self) -> list[ProgramRecord]:
        return self.manager.programs()

    def list_programs(self) -> list[dict]:
        """Structured registry listing: one dict per deployed program.

        The monitoring counterpart to :meth:`program_stats` that needs no
        prior handle — id, name, lifecycle state, installed-entry count,
        logic-RPB vector, and per-memory sizes.  Serializable as-is (the
        northbound ``list`` RPC and the CLI ``ps`` command return it
        verbatim).
        """
        listing = []
        for record in self.manager.programs():
            listing.append(
                {
                    "program_id": record.program_id,
                    "name": record.name,
                    "state": record.state.value,
                    "entries": len(record.installed_handles) or len(record.batch),
                    "logic_rpbs": list(record.compiled.allocation.x),
                    "memory": {
                        mid: {"phys_rpb": alloc.phys_rpb, "size": alloc.size}
                        for mid, alloc in sorted(record.memory.items())
                    },
                }
            )
        return listing

    def utilization(self) -> dict[str, float]:
        return {
            "memory": self.manager.memory_utilization(),
            "entries": self.manager.entry_utilization(),
        }

    # -- internals ----------------------------------------------------------------
    def _select(self, unit, program_name: str | None):
        if program_name is None:
            if len(unit.programs) != 1:
                raise P4runproError(
                    "source declares multiple programs; pass program_name"
                )
            return unit.programs[0]
        for program in unit.programs:
            if program.name == program_name:
                return program
        raise P4runproError(f"source has no program named {program_name!r}")

    def _memory(self, handle: DeployedProgram | int, mid: str):
        program_id = handle.program_id if isinstance(handle, DeployedProgram) else handle
        record = self.manager.get(program_id)
        alloc = record.memory.get(mid)
        if alloc is None:
            raise P4runproError(f"program {record.name!r} has no memory {mid!r}")
        return record, alloc

    @staticmethod
    def _check_vaddr(alloc, vaddr: int) -> int:
        if not 0 <= vaddr < alloc.size:
            raise P4runproError(
                f"virtual address {vaddr} out of range for {alloc.mid} (size {alloc.size})"
            )
        return vaddr
