"""Simulated-time models for control-plane operations.

No switch driver exists here, so wall-clock measurements only make sense
for *computation* (parsing, allocation — which we really measure).  Delays
dominated by the hardware interface (bfrt_grpc entry updates, memory
resets, switch reprovisioning) follow the calibrated models below and are
accumulated on a :class:`SimClock`.

Calibration: per-entry update cost is set so the 15 programs of Table 1
land in the paper's few-to-hundreds-of-milliseconds range, preserving the
positive correlation between update delay and program complexity.
"""

from __future__ import annotations

from dataclasses import dataclass


class SimClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_ms(self, ms: float) -> float:
        return self.advance(ms / 1000.0)


@dataclass(frozen=True)
class UpdateTimingModel:
    """Per-operation costs of the bfrt_grpc-style update interface."""

    entry_insert_ms: float = 0.62
    entry_delete_ms: float = 0.40
    batch_overhead_ms: float = 0.9
    #: zeroing a terminated program's buckets, per 1024 buckets
    memory_reset_ms_per_kbucket: float = 0.35
    #: control-plane raw API read/write of one bucket
    register_access_ms: float = 0.05

    def install_delay_ms(self, num_entries: int) -> float:
        return self.batch_overhead_ms + num_entries * self.entry_insert_ms

    def delete_delay_ms(self, num_entries: int) -> float:
        return self.batch_overhead_ms + num_entries * self.entry_delete_ms

    def memory_reset_ms(self, buckets: int) -> float:
        return (buckets / 1024.0) * self.memory_reset_ms_per_kbucket


@dataclass(frozen=True)
class ConventionalP4Timing:
    """The conventional workflow's costs (paper §6.2.1): compiling a P4
    program takes minutes; reprovisioning pauses the switch for seconds and
    disrupts all traffic and programs."""

    compile_s_base: float = 95.0
    compile_s_per_loc: float = 0.9
    reprovision_s: float = 4.5
    port_enable_s: float = 2.0

    def deploy_delay_s(self, p4_loc: int) -> float:
        return self.compile_s_base + self.compile_s_per_loc * p4_loc + self.reprovision_s

    @property
    def traffic_blackout_s(self) -> float:
        """How long traffic stops while the data plane is reprovisioned."""
        return self.reprovision_s + self.port_enable_s
