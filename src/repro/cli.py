"""The P4runpro runtime CLI (paper §5: "we implement a runtime CLI to
interact with the P4runpro data plane").

Commands operate on one controller session (simulated switch by default):

    deploy <file> [--program NAME] [--objective f1|f2|f3|hierarchical]
                  [--elastic N [--branch K]]
    revoke <program-id>
    list
    ps                                     # structured process listing
    show <program-id>                      # pretty-printed source + layout
    trace <pcap-file> [index]             # per-op execution trace (Fig. 3)
    mem read <program-id> <mid> <vaddr>
    mem write <program-id> <mid> <vaddr> <value>
    addcase <program-id> --cond reg,value,mask [--cond ...]
            [--template K] [--loadi V ...]
    util                                   # resource utilization
    profile                                # Table-2 style static report

Run interactively (``python -m repro.cli``) or scripted
(``python -m repro.cli -c "deploy prog.rp" -c list``).

Two daemon-mode subcommands wrap the northbound control service
(:mod:`repro.service`) instead of an in-process controller:

    p4runpro serve  [--host H] [--port P] [--chain HOPS] [--max-programs N]
                    [--fabric SPEC [--routing auto|controlled]]
    p4runpro client <method> [key=value ...] [--tenant T] [--deadline-ms D]

Fabric subcommands build and exercise multi-switch leaf-spine
topologies (:mod:`repro.fabric`); SPEC is either ``NxM`` (N leaves, M
spines) or a JSON topology spec file:

    p4runpro fabric spec [--leaves N] [--spines M] [--out FILE]
    p4runpro fabric show <SPEC>
    p4runpro fabric run  <SPEC> [--packets N] [--locality F] [--deploy FILE]
                         [--routing auto|controlled] [--link-down A:B@K]
                         [--node-down NAME@K] [--reroute K]
"""

from __future__ import annotations

import argparse
import shlex
import sys
from pathlib import Path

from .compiler.compiler import CompileOptions
from .compiler.objectives import make_objective
from .controlplane.controller import Controller, DeployedProgram
from .lang.errors import P4runproError
from .lang.printer import format_program


class CLIError(Exception):
    """User-facing command error."""


class RuntimeCLI:
    """A stateful command interpreter over one controller session."""

    def __init__(self, controller: Controller | None = None, dataplane=None, *, out=None):
        if controller is None:
            controller, dataplane = Controller.with_simulator()
        self.controller = controller
        self.dataplane = dataplane
        self.out = out or sys.stdout
        self._handles: dict[int, DeployedProgram] = {}
        self._cases: dict[int, list] = {}

    # -- plumbing ----------------------------------------------------------------
    def _print(self, *parts) -> None:
        print(*parts, file=self.out)

    def execute(self, line: str) -> bool:
        """Run one command line; returns False when the session should end."""
        try:
            tokens = shlex.split(line, comments=True)
        except ValueError as exc:
            self._print(f"error: {exc}")
            return True
        if not tokens:
            return True
        command, *args = tokens
        handler = getattr(self, f"cmd_{command.replace('-', '_')}", None)
        if handler is None:
            self._print(f"error: unknown command {command!r} (try 'help')")
            return True
        try:
            return handler(args) is not False
        except (CLIError, P4runproError, FileNotFoundError, KeyError, ValueError) as exc:
            self._print(f"error: {exc}")
            return True

    def repl(self, stream=None) -> None:
        stream = stream or sys.stdin
        for line in stream:
            if not self.execute(line):
                break

    # -- commands -------------------------------------------------------------------
    def cmd_help(self, args) -> None:
        self._print(__doc__)

    def cmd_quit(self, args) -> bool:
        return False

    cmd_exit = cmd_quit

    def cmd_deploy(self, args) -> None:
        parser = argparse.ArgumentParser(prog="deploy", add_help=False)
        parser.add_argument("file")
        parser.add_argument("--program")
        parser.add_argument("--objective", default="f1")
        parser.add_argument("--elastic", type=int)
        parser.add_argument("--branch", type=int, default=0)
        ns = parser.parse_args(args)
        source = Path(ns.file).read_text()
        from .lang.diagnostics import check_source

        diagnostics = check_source(source)
        if diagnostics:
            for diagnostic in diagnostics:
                self._print(diagnostic)
            return
        options = CompileOptions(
            objective=make_objective(ns.objective),
            elastic_cases=ns.elastic,
            elastic_branch=ns.branch,
        )
        handle = self.controller.deploy(
            source, program_name=ns.program, options=options
        )
        self._handles[handle.program_id] = handle
        stats = handle.stats
        self._print(
            f"deployed '{handle.name}' as #{handle.program_id}: "
            f"alloc {stats.allocation_ms:.2f} ms, update {stats.update_ms:.2f} ms, "
            f"{stats.entries} entries, RPBs {stats.logic_rpbs}"
        )
        for warning in stats.overlap_warnings:
            self._print(f"warning: {warning}")

    def cmd_revoke(self, args) -> None:
        program_id = self._program_id(args)
        delay = self.controller.revoke(program_id)
        self._handles.pop(program_id, None)
        self._cases.pop(program_id, None)
        self._print(f"revoked #{program_id} in {delay:.2f} ms")

    def cmd_ps(self, args) -> None:
        """Structured process listing via Controller.list_programs()."""
        listing = self.controller.list_programs()
        if not listing:
            self._print("no programs running")
            return
        self._print(
            f"{'ID':<5s} {'NAME':<14s} {'STATE':<11s} {'ENTRIES':>7s}  "
            f"{'LOGIC RPBS':<22s} MEMORY"
        )
        for info in listing:
            rpbs = ",".join(str(r) for r in info["logic_rpbs"])
            memories = " ".join(
                f"{mid}:{m['size']}@rpb{m['phys_rpb']}"
                for mid, m in info["memory"].items()
            )
            self._print(
                f"#{info['program_id']:<4d} {info['name']:<14s} {info['state']:<11s} "
                f"{info['entries']:>7d}  {rpbs:<22s} {memories or '-'}"
            )

    def cmd_list(self, args) -> None:
        records = self.controller.running_programs()
        if not records:
            self._print("no programs running")
            return
        for record in records:
            entries = len(record.batch)
            memories = ", ".join(
                f"{mid}@rpb{alloc.phys_rpb}+{alloc.base}"
                for mid, alloc in sorted(record.memory.items())
            )
            self._print(
                f"#{record.program_id:<4d} {record.name:12s} {record.state.value:10s} "
                f"{entries:4d} entries  {memories or '-'}"
            )

    def cmd_show(self, args) -> None:
        record = self.controller.manager.get(self._program_id(args))
        self._print(format_program(record.compiled.program))
        allocation = record.compiled.allocation
        self._print(f"// logic RPBs: {allocation.x}")
        self._print(f"// objective {allocation.objective_name} = "
                    f"{allocation.objective_value:.3f}, "
                    f"recirculations: {allocation.max_iteration}")

    def cmd_mem(self, args) -> None:
        if len(args) < 4:
            raise CLIError("usage: mem read|write <id> <mid> <vaddr> [value]")
        op, pid, mid, vaddr = args[0], int(args[1]), args[2], int(args[3], 0)
        if op == "read":
            value = self.controller.read_memory(pid, mid, vaddr)
            self._print(f"{mid}[{vaddr}] = {value} ({value:#x})")
        elif op == "write":
            if len(args) < 5:
                raise CLIError("mem write needs a value")
            self.controller.write_memory(pid, mid, vaddr, int(args[4], 0))
            self._print("ok")
        else:
            raise CLIError(f"unknown mem op {op!r}")

    def cmd_addcase(self, args) -> None:
        parser = argparse.ArgumentParser(prog="addcase", add_help=False)
        parser.add_argument("program_id", type=int)
        parser.add_argument("--cond", action="append", required=True)
        parser.add_argument("--branch", type=int, default=0)
        parser.add_argument("--template", type=int, default=0)
        parser.add_argument("--loadi", action="append", type=lambda v: int(v, 0))
        ns = parser.parse_args(args)
        conditions = []
        for cond in ns.cond:
            register, value, mask = cond.split(",")
            conditions.append((register, int(value, 0), int(mask, 0)))
        case = self.controller.add_case(
            ns.program_id,
            conditions,
            branch_index=ns.branch,
            template_case=ns.template,
            loadi_values=ns.loadi,
        )
        self._cases.setdefault(ns.program_id, []).append(case)
        self._print(f"added case (branch id {case.branch_id}) to #{ns.program_id}")

    def cmd_trace(self, args) -> None:
        if not args:
            raise CLIError("usage: trace <pcap-file> [packet-index]")
        if self.dataplane is None or not hasattr(self.dataplane, "process"):
            raise CLIError("no data plane attached to this session")
        from .dataplane.tracing import capture_trace
        from .rmt.wire import load_pcap

        packets = load_pcap(args[0])
        index = int(args[1]) if len(args) > 1 else 0
        if not 0 <= index < len(packets):
            raise CLIError(f"capture has {len(packets)} packets")
        with capture_trace() as trace:
            result = self.dataplane.process(packets[index])
        self._print(trace.render() or "(no program owned this packet)")
        ports = f" ports={list(result.egress_ports)}" if result.egress_ports else ""
        self._print(
            f"verdict: {result.verdict.value} "
            f"(port {result.egress_port}{ports}, "
            f"{result.recirculations} recirculation(s))"
        )

    def cmd_util(self, args) -> None:
        util = self.controller.utilization()
        self._print(
            f"memory {util['memory']:.1%}   entries {util['entries']:.1%}"
        )
        snap = self.controller.manager.utilization_snapshot()
        spec = self.controller.spec
        for i, (mem, te) in enumerate(zip(snap["memory"], snap["entries"]), start=1):
            # Physical RPB i is also logic RPB i (iteration/hop 0), so the
            # spec's ingress test labels both single-switch and chain
            # layouts correctly.
            gress = "ingress" if spec.is_ingress(i) else "egress"
            self._print(f"  rpb{i:<3d} ({gress:7s}) mem {mem:6.1%}  entries {te:6.1%}")

    def cmd_profile(self, args) -> None:
        from .baselines.profiles import p4runpro_profile

        profile = p4runpro_profile()
        self._print(f"latency (cycles): {profile.latency_cycles}")
        self._print(
            "power (W): "
            + "/".join(f"{w:.2f}" for w in profile.power_watts)
            + f"  traffic limit load {profile.traffic_limit_load:.1%}"
        )
        for key, value in profile.utilization.items():
            self._print(f"  {key:12s} {value:5.1f}%")

    # -- helpers ---------------------------------------------------------------------
    def _program_id(self, args) -> int:
        if not args:
            raise CLIError("missing program id")
        return int(args[0])


def _load_topology(spec: str, **overrides):
    """Build a Topology from ``NxM`` shorthand or a JSON spec file path."""
    import re

    from .fabric import Topology

    shorthand = re.fullmatch(r"(\d+)x(\d+)", spec)
    if shorthand:
        return Topology.leaf_spine(
            int(shorthand.group(1)), int(shorthand.group(2)), **overrides
        )
    return Topology.from_spec(spec, **overrides)


def fabric_main(argv: list[str]) -> int:
    """``p4runpro fabric``: build, inspect, and exercise fabrics."""
    parser = argparse.ArgumentParser(
        prog="p4runpro fabric",
        description="Multi-switch leaf-spine fabric tools",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    spec_p = sub.add_parser("spec", help="emit a JSON topology spec")
    spec_p.add_argument("--leaves", type=int, default=2)
    spec_p.add_argument("--spines", type=int, default=2)
    spec_p.add_argument("--workers", type=int, default=0)
    spec_p.add_argument("--latency-us", type=float, default=2.0)
    spec_p.add_argument("--bandwidth-gbps", type=float, default=100.0)
    spec_p.add_argument("--loss", type=float, default=0.0)
    spec_p.add_argument("--out", help="write the spec to a file")

    show_p = sub.add_parser("show", help="describe a topology spec")
    show_p.add_argument("spec", help="NxM shorthand or a spec file")

    run_p = sub.add_parser("run", help="drive traffic through a fabric")
    run_p.add_argument("spec", help="NxM shorthand or a spec file")
    run_p.add_argument("--packets", type=int, default=5000)
    run_p.add_argument("--locality", type=float, default=0.5)
    run_p.add_argument("--deploy", action="append", default=[],
                       help="program source file to deploy fabric-wide "
                       "(repeatable)")
    run_p.add_argument("--routing", choices=("auto", "controlled"),
                       default="auto")
    run_p.add_argument("--seed", type=int, default=7)
    run_p.add_argument("--link-down", action="append", default=[],
                       metavar="A:B@K",
                       help="take link A<->B down before packet K")
    run_p.add_argument("--node-down", action="append", default=[],
                       metavar="NAME@K",
                       help="take a switch down before packet K")
    run_p.add_argument("--reroute", type=int, action="append", default=[],
                       metavar="K",
                       help="controller reroute before packet K")
    ns = parser.parse_args(argv)
    import json

    if ns.cmd == "spec":
        spec = {
            "kind": "leaf-spine",
            "leaves": ns.leaves,
            "spines": ns.spines,
            "workers": ns.workers,
            "host_ports": 4,
            "link": {
                "latency_us": ns.latency_us,
                "bandwidth_gbps": ns.bandwidth_gbps,
                "loss": ns.loss,
            },
        }
        text = json.dumps(spec, indent=2)
        if ns.out:
            Path(ns.out).write_text(text + "\n")
            print(f"wrote {ns.out}")
        else:
            print(text)
        return 0

    if ns.cmd == "show":
        with _load_topology(ns.spec) as topo:
            print(f"leaves: {', '.join(topo.leaves) or '-'}")
            print(f"spines: {', '.join(topo.spines) or '-'}")
            for leaf, (base, mask) in topo.leaf_subnets.items():
                prefix = 32 - ((~mask) & 0xFFFFFFFF).bit_length()
                print(
                    f"  {leaf}: {base >> 24 & 255}.{base >> 16 & 255}."
                    f"{base >> 8 & 255}.{base & 255}/{prefix}"
                )
            for link in topo.links:
                print(
                    f"link {link.name}  latency {link.latency_s * 1e6:.1f} us  "
                    f"{link.bandwidth_gbps:.0f} Gb/s  loss {link.loss:.3%}"
                )
        return 0

    # cmd == "run"
    from .fabric import FabricController, Scenario
    from .traffic import make_fabric_population

    with _load_topology(ns.spec) as topo:
        fabric_ctl = FabricController(topo, routing=ns.routing)
        for source_file in ns.deploy:
            program = fabric_ctl.deploy(Path(source_file).read_text())
            print(
                f"deployed '{program.name}' as #{program.program_id} "
                f"on {len(program.handles)} switches"
            )
        traffic = make_fabric_population(
            topo, num_flows=min(4096, max(64, ns.packets // 4)),
            locality=ns.locality, seed=ns.seed,
        )
        scenario = Scenario()
        for item in ns.link_down:
            ends, _, at = item.partition("@")
            a, _, b = ends.partition(":")
            scenario.link_down(int(at or 0), a, b)
        for item in ns.node_down:
            name, _, at = item.partition("@")
            scenario.node_down(int(at or 0), name)
        for at in ns.reroute:
            scenario.reroute(at)
        report = fabric_ctl.fabric.run(
            traffic.assignments(ns.packets),
            scenario=scenario if scenario.events else None,
        )
        print(
            f"injected {report.injected}  delivered {report.delivered}  "
            f"reorders {report.reorders}  wall {report.wall_s * 1e3:.1f} ms"
        )
        if report.drops:
            print("drops: " + ", ".join(
                f"{cause}={n}" for cause, n in sorted(report.drops.items())
            ))
        for event in report.reroutes:
            print(
                f"reroute at packet {event['at_index']}: "
                f"{event['latency_ms']:.3f} ms"
            )
        for name, link in sorted(report.per_link.items()):
            print(
                f"  {name}: carried {link['carried']}  "
                f"drops down/loss/bw {link['dropped_down']}/"
                f"{link['dropped_loss']}/{link['dropped_bandwidth']}"
            )
    return 0


def serve_main(argv: list[str]) -> int:
    """``p4runpro serve``: run the northbound control service."""
    parser = argparse.ArgumentParser(
        prog="p4runpro serve",
        description="Run the multi-tenant northbound control service "
        "(newline-delimited JSON-RPC over TCP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9400)
    parser.add_argument(
        "--chain",
        type=int,
        metavar="HOPS",
        help="serve a switch chain of HOPS hops instead of a single switch",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="shard traffic across N switch-replica worker processes "
        "(consistent-hash routed; incompatible with --chain)",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        metavar="N",
        help="floor the `scale` RPC may shrink the worker fleet to "
        "(requires --workers)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        metavar="N",
        help="ceiling the `scale` RPC may grow the worker fleet to "
        "(requires --workers)",
    )
    parser.add_argument(
        "--rebalance",
        type=float,
        metavar="SKEW",
        help="auto-rebalance the engine after injects once the hottest "
        "shard's traffic share exceeds SKEW (e.g. 0.7; requires "
        "--workers)",
    )
    parser.add_argument(
        "--fabric",
        metavar="SPEC",
        help="serve a multi-switch fabric instead of a single switch; "
        "SPEC is NxM (leaves x spines) or a JSON topology spec file "
        "(incompatible with --chain/--workers)",
    )
    parser.add_argument(
        "--routing",
        choices=("auto", "controlled"),
        default="auto",
        help="fabric ECMP mode: auto (data-plane failover) or controlled "
        "(routes pinned until a controller reroute)",
    )
    parser.add_argument(
        "--max-programs", type=int, default=8, help="per-tenant program quota"
    )
    parser.add_argument(
        "--max-memory-buckets", type=int, default=65536,
        help="per-tenant memory-bucket quota",
    )
    parser.add_argument(
        "--max-table-entries", type=int, default=512,
        help="per-tenant table-entry quota",
    )
    parser.add_argument(
        "--no-flow-cache", action="store_true",
        help="disable the two-tier flow cache (every packet walks the "
        "full pipeline)",
    )
    parser.add_argument(
        "--no-codegen", action="store_true",
        help="disable the trace-to-source codegen tier (cache misses fall "
        "back to the interpreter); composes with --no-flow-cache",
    )
    parser.add_argument(
        "--no-shm", action="store_true",
        help="disable the shared-memory ring transport between the engine "
        "coordinator and its workers (packet batches travel as pickled "
        "pipe frames instead); engine mode only",
    )
    parser.add_argument(
        "--shm-ring-bytes", type=int, default=None, metavar="N",
        help="per-direction shared-memory ring capacity in bytes "
        "(default 1 MiB); engine mode only",
    )
    parser.add_argument(
        "--shm-chunk-packets", type=int, default=None, metavar="N",
        help="packets per streamed ring chunk (default 256); engine "
        "mode only",
    )
    parser.add_argument(
        "--emc-size", type=int, default=8192, metavar="N",
        help="exact-match cache capacity in flows (default 8192)",
    )
    parser.add_argument(
        "--megaflow-size", type=int, default=4096, metavar="N",
        help="megaflow trace-cache capacity in entries (default 4096)",
    )
    ns = parser.parse_args(argv)
    import asyncio

    from .service import ControlService, TenantQuota, TenantRegistry, serve

    if ns.chain and ns.workers:
        parser.error("--workers shards a single switch; combining it with "
                     "--chain is not supported")
    if ns.fabric and (ns.chain or ns.workers):
        parser.error("--fabric serves a topology; combining it with "
                     "--chain/--workers is not supported")
    if not ns.workers and (
        ns.min_workers is not None
        or ns.max_workers is not None
        or ns.rebalance is not None
    ):
        parser.error("--min-workers/--max-workers/--rebalance require "
                     "--workers (the sharded engine)")
    if (
        ns.min_workers is not None
        and ns.max_workers is not None
        and ns.min_workers > ns.max_workers
    ):
        parser.error("--min-workers cannot exceed --max-workers")
    if not ns.workers and (
        ns.no_shm or ns.shm_ring_bytes is not None
        or ns.shm_chunk_packets is not None
    ):
        parser.error("--no-shm/--shm-ring-bytes/--shm-chunk-packets require "
                     "--workers (the sharded engine)")
    tenants = TenantRegistry(
        TenantQuota(ns.max_programs, ns.max_memory_buckets, ns.max_table_entries)
    )
    engine = None
    topology = None
    if ns.fabric:
        from .fabric import FabricController

        topology = _load_topology(
            ns.fabric,
            flow_cache=not ns.no_flow_cache,
            codegen=not ns.no_codegen,
        )
        fabric = FabricController(topology, routing=ns.routing)
        service = ControlService(fabric=fabric, tenants=tenants)
        print(
            f"fabric: {len(topology.leaves)} leaves x "
            f"{len(topology.spines)} spines, routing {ns.routing}"
        )
    elif ns.workers:
        from .engine import DEFAULT_CHUNK_PACKETS, DEFAULT_RING_BYTES, ShardedEngine

        engine = ShardedEngine(
            ns.workers,
            flow_cache=not ns.no_flow_cache,
            codegen=not ns.no_codegen,
            use_shm=not ns.no_shm,
            ring_bytes=ns.shm_ring_bytes or DEFAULT_RING_BYTES,
            chunk_packets=ns.shm_chunk_packets or DEFAULT_CHUNK_PACKETS,
        )
        service = ControlService(
            engine=engine,
            tenants=tenants,
            min_workers=ns.min_workers,
            max_workers=ns.max_workers,
            rebalance_threshold=ns.rebalance,
        )
        elastic = ""
        if ns.min_workers is not None or ns.max_workers is not None:
            elastic = (
                f" (elastic {ns.min_workers or 1}.."
                f"{ns.max_workers if ns.max_workers is not None else 'inf'})"
            )
        if ns.rebalance is not None:
            elastic += f", auto-rebalance at skew {ns.rebalance}"
        transport = engine.transport_stats()
        wire = (
            f"shm rings ({transport['ring_bytes']} B x "
            f"{transport['workers_with_rings']} workers)"
            if transport["enabled"] and transport["workers_with_rings"]
            else "pipes"
        )
        print(
            f"sharded engine: {ns.workers} worker processes{elastic}, "
            f"southbound transport: {wire}"
        )
    else:
        if ns.chain:
            controller, dataplane = Controller.with_chain(ns.chain)
        else:
            controller, dataplane = Controller.with_simulator()
        service = ControlService(controller, dataplane, tenants=tenants)
    flow_cache = getattr(service.dataplane, "flow_cache", None)
    if flow_cache is not None:
        flow_cache.enabled = not ns.no_flow_cache
        flow_cache.emc_capacity = ns.emc_size
        flow_cache.megaflow_capacity = ns.megaflow_size
        flow_cache.flush()
    codegen = getattr(service.dataplane, "codegen", None)
    if codegen is not None:
        codegen.enabled = not ns.no_codegen
        codegen.flush()
    print(f"p4runpro control service listening on {ns.host}:{ns.port}")
    try:
        asyncio.run(serve(ns.host, ns.port, service))
    except KeyboardInterrupt:
        print("drained; bye")
    finally:
        if engine is not None:
            engine.close()
        if topology is not None:
            topology.close()
    return 0


def client_main(argv: list[str]) -> int:
    """``p4runpro client``: one RPC against a running control service.

    The method's params are given as ``key=value`` pairs; values parse as
    JSON when possible (so ``program_id=3`` is an int and
    ``conditions=[["har",1,255]]`` is a list), else as strings.
    ``source=@file.rp`` inlines a file's contents.
    """
    parser = argparse.ArgumentParser(
        prog="p4runpro client",
        description="Send one RPC to a running control service",
    )
    parser.add_argument("method", help="RPC method, e.g. deploy, list, metrics")
    parser.add_argument("params", nargs="*", help="key=value params")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9400)
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--deadline-ms", type=float)
    parser.add_argument(
        "--codec",
        choices=("ndjson", "binary"),
        default="ndjson",
        help="wire codec (binary negotiates the length-prefixed fast path)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="subscribe to the method as a push stream (stats/metrics/audit) "
        "and print one JSON line per server push until interrupted",
    )
    parser.add_argument(
        "--interval-ms",
        type=float,
        default=500.0,
        help="push interval for --watch (default 500)",
    )
    ns = parser.parse_args(argv)
    import json

    from .service import ServiceClient, ServiceError

    params = {}
    for pair in ns.params:
        if "=" not in pair:
            parser.error(f"param {pair!r} is not key=value")
        key, value = pair.split("=", 1)
        if value.startswith("@"):
            value = Path(value[1:]).read_text()
        else:
            try:
                value = json.loads(value)
            except json.JSONDecodeError:
                pass
        params[key] = value
    if ns.watch and ns.method not in ("stats", "metrics", "audit"):
        parser.error("--watch supports the stats, metrics, and audit streams")
    try:
        with ServiceClient(
            ns.host, ns.port, tenant=ns.tenant, codec=ns.codec
        ) as client:
            try:
                if ns.watch:
                    sub_params = {
                        "streams": [ns.method],
                        "interval_ms": ns.interval_ms,
                    }
                    if "program_id" in params:
                        sub_params["program_id"] = params["program_id"]
                    ack = client.call("subscribe", sub_params)
                    print(json.dumps(ack, sort_keys=True))
                    try:
                        for event in client.events():
                            print(json.dumps(event, sort_keys=True), flush=True)
                    except KeyboardInterrupt:
                        return 0
                    return 0
                result = client.call(ns.method, params, deadline_ms=ns.deadline_ms)
            except ServiceError as exc:
                print(f"error [{exc.code.value}]: {exc.message}", file=sys.stderr)
                return 1
    except OSError as exc:
        print(f"error: cannot reach {ns.host}:{ns.port} ({exc})", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    if argv and argv[0] == "fabric":
        return fabric_main(argv[1:])
    parser = argparse.ArgumentParser(description="P4runpro runtime CLI")
    parser.add_argument(
        "-c",
        "--command",
        action="append",
        default=[],
        help="run a command and continue (repeatable); no REPL if given",
    )
    parser.add_argument(
        "--chain",
        type=int,
        metavar="HOPS",
        help="drive a switch chain of HOPS recirculation-free switches "
        "instead of a single switch",
    )
    ns = parser.parse_args(argv)
    if ns.chain:
        controller, dataplane = Controller.with_chain(ns.chain)
        cli = RuntimeCLI(controller, dataplane)
    else:
        cli = RuntimeCLI()
    if ns.command:
        for command in ns.command:
            cli.execute(command)
        return 0
    print("P4runpro runtime CLI — 'help' for commands, 'quit' to exit")
    cli.repl()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
