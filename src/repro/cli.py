"""The P4runpro runtime CLI (paper §5: "we implement a runtime CLI to
interact with the P4runpro data plane").

Commands operate on one controller session (simulated switch by default):

    deploy <file> [--program NAME] [--objective f1|f2|f3|hierarchical]
                  [--elastic N [--branch K]]
    revoke <program-id>
    list
    ps                                     # structured process listing
    show <program-id>                      # pretty-printed source + layout
    trace <pcap-file> [index]             # per-op execution trace (Fig. 3)
    mem read <program-id> <mid> <vaddr>
    mem write <program-id> <mid> <vaddr> <value>
    addcase <program-id> --cond reg,value,mask [--cond ...]
            [--template K] [--loadi V ...]
    util                                   # resource utilization
    profile                                # Table-2 style static report

Run interactively (``python -m repro.cli``) or scripted
(``python -m repro.cli -c "deploy prog.rp" -c list``).

Two daemon-mode subcommands wrap the northbound control service
(:mod:`repro.service`) instead of an in-process controller:

    p4runpro serve  [--host H] [--port P] [--chain HOPS] [--max-programs N]
    p4runpro client <method> [key=value ...] [--tenant T] [--deadline-ms D]
"""

from __future__ import annotations

import argparse
import shlex
import sys
from pathlib import Path

from .compiler.compiler import CompileOptions
from .compiler.objectives import make_objective
from .controlplane.controller import Controller, DeployedProgram
from .lang.errors import P4runproError
from .lang.printer import format_program


class CLIError(Exception):
    """User-facing command error."""


class RuntimeCLI:
    """A stateful command interpreter over one controller session."""

    def __init__(self, controller: Controller | None = None, dataplane=None, *, out=None):
        if controller is None:
            controller, dataplane = Controller.with_simulator()
        self.controller = controller
        self.dataplane = dataplane
        self.out = out or sys.stdout
        self._handles: dict[int, DeployedProgram] = {}
        self._cases: dict[int, list] = {}

    # -- plumbing ----------------------------------------------------------------
    def _print(self, *parts) -> None:
        print(*parts, file=self.out)

    def execute(self, line: str) -> bool:
        """Run one command line; returns False when the session should end."""
        try:
            tokens = shlex.split(line, comments=True)
        except ValueError as exc:
            self._print(f"error: {exc}")
            return True
        if not tokens:
            return True
        command, *args = tokens
        handler = getattr(self, f"cmd_{command.replace('-', '_')}", None)
        if handler is None:
            self._print(f"error: unknown command {command!r} (try 'help')")
            return True
        try:
            return handler(args) is not False
        except (CLIError, P4runproError, FileNotFoundError, KeyError, ValueError) as exc:
            self._print(f"error: {exc}")
            return True

    def repl(self, stream=None) -> None:
        stream = stream or sys.stdin
        for line in stream:
            if not self.execute(line):
                break

    # -- commands -------------------------------------------------------------------
    def cmd_help(self, args) -> None:
        self._print(__doc__)

    def cmd_quit(self, args) -> bool:
        return False

    cmd_exit = cmd_quit

    def cmd_deploy(self, args) -> None:
        parser = argparse.ArgumentParser(prog="deploy", add_help=False)
        parser.add_argument("file")
        parser.add_argument("--program")
        parser.add_argument("--objective", default="f1")
        parser.add_argument("--elastic", type=int)
        parser.add_argument("--branch", type=int, default=0)
        ns = parser.parse_args(args)
        source = Path(ns.file).read_text()
        from .lang.diagnostics import check_source

        diagnostics = check_source(source)
        if diagnostics:
            for diagnostic in diagnostics:
                self._print(diagnostic)
            return
        options = CompileOptions(
            objective=make_objective(ns.objective),
            elastic_cases=ns.elastic,
            elastic_branch=ns.branch,
        )
        handle = self.controller.deploy(
            source, program_name=ns.program, options=options
        )
        self._handles[handle.program_id] = handle
        stats = handle.stats
        self._print(
            f"deployed '{handle.name}' as #{handle.program_id}: "
            f"alloc {stats.allocation_ms:.2f} ms, update {stats.update_ms:.2f} ms, "
            f"{stats.entries} entries, RPBs {stats.logic_rpbs}"
        )
        for warning in stats.overlap_warnings:
            self._print(f"warning: {warning}")

    def cmd_revoke(self, args) -> None:
        program_id = self._program_id(args)
        delay = self.controller.revoke(program_id)
        self._handles.pop(program_id, None)
        self._cases.pop(program_id, None)
        self._print(f"revoked #{program_id} in {delay:.2f} ms")

    def cmd_ps(self, args) -> None:
        """Structured process listing via Controller.list_programs()."""
        listing = self.controller.list_programs()
        if not listing:
            self._print("no programs running")
            return
        self._print(
            f"{'ID':<5s} {'NAME':<14s} {'STATE':<11s} {'ENTRIES':>7s}  "
            f"{'LOGIC RPBS':<22s} MEMORY"
        )
        for info in listing:
            rpbs = ",".join(str(r) for r in info["logic_rpbs"])
            memories = " ".join(
                f"{mid}:{m['size']}@rpb{m['phys_rpb']}"
                for mid, m in info["memory"].items()
            )
            self._print(
                f"#{info['program_id']:<4d} {info['name']:<14s} {info['state']:<11s} "
                f"{info['entries']:>7d}  {rpbs:<22s} {memories or '-'}"
            )

    def cmd_list(self, args) -> None:
        records = self.controller.running_programs()
        if not records:
            self._print("no programs running")
            return
        for record in records:
            entries = len(record.batch)
            memories = ", ".join(
                f"{mid}@rpb{alloc.phys_rpb}+{alloc.base}"
                for mid, alloc in sorted(record.memory.items())
            )
            self._print(
                f"#{record.program_id:<4d} {record.name:12s} {record.state.value:10s} "
                f"{entries:4d} entries  {memories or '-'}"
            )

    def cmd_show(self, args) -> None:
        record = self.controller.manager.get(self._program_id(args))
        self._print(format_program(record.compiled.program))
        allocation = record.compiled.allocation
        self._print(f"// logic RPBs: {allocation.x}")
        self._print(f"// objective {allocation.objective_name} = "
                    f"{allocation.objective_value:.3f}, "
                    f"recirculations: {allocation.max_iteration}")

    def cmd_mem(self, args) -> None:
        if len(args) < 4:
            raise CLIError("usage: mem read|write <id> <mid> <vaddr> [value]")
        op, pid, mid, vaddr = args[0], int(args[1]), args[2], int(args[3], 0)
        if op == "read":
            value = self.controller.read_memory(pid, mid, vaddr)
            self._print(f"{mid}[{vaddr}] = {value} ({value:#x})")
        elif op == "write":
            if len(args) < 5:
                raise CLIError("mem write needs a value")
            self.controller.write_memory(pid, mid, vaddr, int(args[4], 0))
            self._print("ok")
        else:
            raise CLIError(f"unknown mem op {op!r}")

    def cmd_addcase(self, args) -> None:
        parser = argparse.ArgumentParser(prog="addcase", add_help=False)
        parser.add_argument("program_id", type=int)
        parser.add_argument("--cond", action="append", required=True)
        parser.add_argument("--branch", type=int, default=0)
        parser.add_argument("--template", type=int, default=0)
        parser.add_argument("--loadi", action="append", type=lambda v: int(v, 0))
        ns = parser.parse_args(args)
        conditions = []
        for cond in ns.cond:
            register, value, mask = cond.split(",")
            conditions.append((register, int(value, 0), int(mask, 0)))
        case = self.controller.add_case(
            ns.program_id,
            conditions,
            branch_index=ns.branch,
            template_case=ns.template,
            loadi_values=ns.loadi,
        )
        self._cases.setdefault(ns.program_id, []).append(case)
        self._print(f"added case (branch id {case.branch_id}) to #{ns.program_id}")

    def cmd_trace(self, args) -> None:
        if not args:
            raise CLIError("usage: trace <pcap-file> [packet-index]")
        if self.dataplane is None or not hasattr(self.dataplane, "process"):
            raise CLIError("no data plane attached to this session")
        from .dataplane.tracing import capture_trace
        from .rmt.wire import load_pcap

        packets = load_pcap(args[0])
        index = int(args[1]) if len(args) > 1 else 0
        if not 0 <= index < len(packets):
            raise CLIError(f"capture has {len(packets)} packets")
        with capture_trace() as trace:
            result = self.dataplane.process(packets[index])
        self._print(trace.render() or "(no program owned this packet)")
        ports = f" ports={list(result.egress_ports)}" if result.egress_ports else ""
        self._print(
            f"verdict: {result.verdict.value} "
            f"(port {result.egress_port}{ports}, "
            f"{result.recirculations} recirculation(s))"
        )

    def cmd_util(self, args) -> None:
        util = self.controller.utilization()
        self._print(
            f"memory {util['memory']:.1%}   entries {util['entries']:.1%}"
        )
        snap = self.controller.manager.utilization_snapshot()
        spec = self.controller.spec
        for i, (mem, te) in enumerate(zip(snap["memory"], snap["entries"]), start=1):
            # Physical RPB i is also logic RPB i (iteration/hop 0), so the
            # spec's ingress test labels both single-switch and chain
            # layouts correctly.
            gress = "ingress" if spec.is_ingress(i) else "egress"
            self._print(f"  rpb{i:<3d} ({gress:7s}) mem {mem:6.1%}  entries {te:6.1%}")

    def cmd_profile(self, args) -> None:
        from .baselines.profiles import p4runpro_profile

        profile = p4runpro_profile()
        self._print(f"latency (cycles): {profile.latency_cycles}")
        self._print(
            "power (W): "
            + "/".join(f"{w:.2f}" for w in profile.power_watts)
            + f"  traffic limit load {profile.traffic_limit_load:.1%}"
        )
        for key, value in profile.utilization.items():
            self._print(f"  {key:12s} {value:5.1f}%")

    # -- helpers ---------------------------------------------------------------------
    def _program_id(self, args) -> int:
        if not args:
            raise CLIError("missing program id")
        return int(args[0])


def serve_main(argv: list[str]) -> int:
    """``p4runpro serve``: run the northbound control service."""
    parser = argparse.ArgumentParser(
        prog="p4runpro serve",
        description="Run the multi-tenant northbound control service "
        "(newline-delimited JSON-RPC over TCP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9400)
    parser.add_argument(
        "--chain",
        type=int,
        metavar="HOPS",
        help="serve a switch chain of HOPS hops instead of a single switch",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="shard traffic across N switch-replica worker processes "
        "(flow-hash routed; incompatible with --chain)",
    )
    parser.add_argument(
        "--max-programs", type=int, default=8, help="per-tenant program quota"
    )
    parser.add_argument(
        "--max-memory-buckets", type=int, default=65536,
        help="per-tenant memory-bucket quota",
    )
    parser.add_argument(
        "--max-table-entries", type=int, default=512,
        help="per-tenant table-entry quota",
    )
    parser.add_argument(
        "--no-flow-cache", action="store_true",
        help="disable the two-tier flow cache (every packet walks the "
        "full pipeline)",
    )
    parser.add_argument(
        "--emc-size", type=int, default=8192, metavar="N",
        help="exact-match cache capacity in flows (default 8192)",
    )
    parser.add_argument(
        "--megaflow-size", type=int, default=4096, metavar="N",
        help="megaflow trace-cache capacity in entries (default 4096)",
    )
    ns = parser.parse_args(argv)
    import asyncio

    from .service import ControlService, TenantQuota, TenantRegistry, serve

    if ns.chain and ns.workers:
        parser.error("--workers shards a single switch; combining it with "
                     "--chain is not supported")
    tenants = TenantRegistry(
        TenantQuota(ns.max_programs, ns.max_memory_buckets, ns.max_table_entries)
    )
    engine = None
    if ns.workers:
        from .engine import ShardedEngine

        engine = ShardedEngine(ns.workers, flow_cache=not ns.no_flow_cache)
        service = ControlService(engine=engine, tenants=tenants)
        print(f"sharded engine: {ns.workers} worker processes")
    else:
        if ns.chain:
            controller, dataplane = Controller.with_chain(ns.chain)
        else:
            controller, dataplane = Controller.with_simulator()
        service = ControlService(controller, dataplane, tenants=tenants)
    flow_cache = getattr(service.dataplane, "flow_cache", None)
    if flow_cache is not None:
        flow_cache.enabled = not ns.no_flow_cache
        flow_cache.emc_capacity = ns.emc_size
        flow_cache.megaflow_capacity = ns.megaflow_size
        flow_cache.flush()
    print(f"p4runpro control service listening on {ns.host}:{ns.port}")
    try:
        asyncio.run(serve(ns.host, ns.port, service))
    except KeyboardInterrupt:
        print("drained; bye")
    finally:
        if engine is not None:
            engine.close()
    return 0


def client_main(argv: list[str]) -> int:
    """``p4runpro client``: one RPC against a running control service.

    The method's params are given as ``key=value`` pairs; values parse as
    JSON when possible (so ``program_id=3`` is an int and
    ``conditions=[["har",1,255]]`` is a list), else as strings.
    ``source=@file.rp`` inlines a file's contents.
    """
    parser = argparse.ArgumentParser(
        prog="p4runpro client",
        description="Send one RPC to a running control service",
    )
    parser.add_argument("method", help="RPC method, e.g. deploy, list, metrics")
    parser.add_argument("params", nargs="*", help="key=value params")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9400)
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--deadline-ms", type=float)
    ns = parser.parse_args(argv)
    import json

    from .service import ServiceClient, ServiceError

    params = {}
    for pair in ns.params:
        if "=" not in pair:
            parser.error(f"param {pair!r} is not key=value")
        key, value = pair.split("=", 1)
        if value.startswith("@"):
            value = Path(value[1:]).read_text()
        else:
            try:
                value = json.loads(value)
            except json.JSONDecodeError:
                pass
        params[key] = value
    try:
        with ServiceClient(ns.host, ns.port, tenant=ns.tenant) as client:
            try:
                result = client.call(ns.method, params, deadline_ms=ns.deadline_ms)
            except ServiceError as exc:
                print(f"error [{exc.code.value}]: {exc.message}", file=sys.stderr)
                return 1
    except OSError as exc:
        print(f"error: cannot reach {ns.host}:{ns.port} ({exc})", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    parser = argparse.ArgumentParser(description="P4runpro runtime CLI")
    parser.add_argument(
        "-c",
        "--command",
        action="append",
        default=[],
        help="run a command and continue (repeatable); no REPL if given",
    )
    parser.add_argument(
        "--chain",
        type=int,
        metavar="HOPS",
        help="drive a switch chain of HOPS recirculation-free switches "
        "instead of a single switch",
    )
    ns = parser.parse_args(argv)
    if ns.chain:
        controller, dataplane = Controller.with_chain(ns.chain)
        cli = RuntimeCLI(controller, dataplane)
    else:
        cli = RuntimeCLI()
    if ns.command:
        for command in ns.command:
            cli.execute(command)
        return 0
    print("P4runpro runtime CLI — 'help' for commands, 'quit' to exit")
    cli.repl()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
