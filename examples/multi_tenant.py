#!/usr/bin/env python3
"""Multi-tenant switch: isolated per-tenant programs on one data plane.

Three tenants each rent a slice of the switch: tenant A runs an
in-network cache, tenant B a rate limiter (written from scratch below),
tenant C a calculator service.  Each gets its own program ID, table
entries, and virtual memory — the cloud-native scenario of §2.1.  Tenant
B churns (leaves and re-joins) without the others noticing, and tenant
B's successor observes zeroed memory.

Run:  python examples/multi_tenant.py
"""

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_calc, make_udp
from repro.rmt.pipeline import Verdict

#: Tenant B's program, written from scratch: a per-flow rate limiter on
#: UDP port 9000 that drops flows beyond 50 packets.
RATE_LIMITER = """
@ rl_counts 256
program ratelimit(
    <hdr.udp.dst_port, 9000, 0xffff>) {
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(rl_counts);
    MEMADD(rl_counts);          //per-flow packet count
    LOADI(har, 50);             //budget
    MIN(har, sar);
    BRANCH:
    case(<har, 50, 0xffffffff>) {
        DROP;                   //over budget
    }
    FORWARD(4);
}
"""


def main() -> None:
    controller, dataplane = Controller.with_simulator()

    tenant_a = controller.deploy(PROGRAMS["cache"].source)
    tenant_b = controller.deploy(RATE_LIMITER)
    tenant_c = controller.deploy(PROGRAMS["calc"].source)
    print("tenants deployed:")
    for handle in (tenant_a, tenant_b, tenant_c):
        print(f"  #{handle.program_id} {handle.name:10s} "
              f"RPBs {handle.stats.logic_rpbs} ({handle.stats.entries} entries)")
    util = controller.utilization()
    print(f"switch utilization: memory {util['memory']:.1%}, entries {util['entries']:.1%}")

    # Tenant A's cache works.
    dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=99))
    read = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
    print(f"\ntenant A cache read -> {read.verdict.value}, "
          f"value={read.packet.get_field('hdr.nc.val')}")

    # Tenant B's rate limiter admits 50 packets per flow, then drops.
    flow = lambda: make_udp(0x0B000001, 0x0B000002, 5555, 9000)
    verdicts = [dataplane.process(flow()).verdict for _ in range(60)]
    admitted = sum(1 for v in verdicts if v is Verdict.FORWARD)
    dropped = sum(1 for v in verdicts if v is Verdict.DROP)
    print(f"tenant B rate limiter: {admitted} admitted, {dropped} dropped (budget 50)")

    # Tenant C's calculator answers.
    calc = dataplane.process(make_calc(1, 2, op=1, a=40, b=2))
    print(f"tenant C calc 40+2 -> {calc.packet.get_field('hdr.calc.result')}")

    # Tenant B churns: revoked (memory locked, zeroed, freed) and replaced
    # — tenants A and C never notice.
    print(f"\ntenant B leaves ({controller.revoke(tenant_b):.2f} ms)...")
    read = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
    assert read.packet.get_field("hdr.nc.val") == 99, "tenant A disturbed!"
    tenant_b2 = controller.deploy(RATE_LIMITER)
    fresh = [dataplane.process(flow()).verdict for _ in range(10)]
    assert all(v is Verdict.FORWARD for v in fresh), "stale tenant state leaked!"
    print(f"tenant B' joins as #{tenant_b2.program_id}: fresh counters, "
          "tenant A's cache still warm — full isolation.")


if __name__ == "__main__":
    main()
