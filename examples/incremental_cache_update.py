#!/usr/bin/env python3
"""Incremental updates: growing a running cache's key set (paper §7).

"When adding a new key-value pair to the program cache, two additional
case blocks must be embedded within the program and then updated to the
data plane."  The paper leaves this as future work and falls back to
revoke-and-redeploy; this reproduction implements it properly: new case
blocks are cloned from a template case under fresh branch IDs and
installed consistently (body entries first, the activating BRANCH entry
last), while the program keeps serving traffic.

Run:  python examples/incremental_cache_update.py
"""

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache
from repro.rmt.pipeline import Verdict

#: (key low word, memory bucket) pairs the operator adds at runtime.
NEW_KEYS = [(0x1111, 10), (0x2222, 11), (0x3333, 12)]


def lookup(dataplane, key):
    return dataplane.process(make_cache(1, 2, op=NC_READ, key=key))


def main() -> None:
    controller, dataplane = Controller.with_simulator()
    handle = controller.deploy(PROGRAMS["cache"].source)
    print(f"cache deployed (#{handle.program_id}); built-in key 0x8888 only")
    dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=1))

    for key, _bucket in NEW_KEYS:
        assert lookup(dataplane, key).verdict is Verdict.FORWARD  # miss

    print("\nadding 3 keys to the RUNNING program (no redeploy):")
    case_handles = []
    for key, bucket in NEW_KEYS:
        t0 = controller.clock.now
        read_case = controller.add_case(
            handle,
            [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", key, 0xFFFFFFFF)],
            template_case=0,  # clone the read path
            loadi_values=[bucket],
        )
        write_case = controller.add_case(
            handle,
            [("har", 2, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", key, 0xFFFFFFFF)],
            template_case=1,  # clone the write path
            loadi_values=[bucket],
        )
        case_handles.append((read_case, write_case))
        ms = (controller.clock.now - t0) * 1e3
        print(f"  key {key:#06x} -> bucket {bucket} "
              f"(branch ids {read_case.branch_id}/{write_case.branch_id}, {ms:.2f} ms)")

    print("\nserving the new keys:")
    for key, bucket in NEW_KEYS:
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=key, value=key * 2))
        result = lookup(dataplane, key)
        print(f"  read {key:#06x} -> {result.verdict.value}, "
              f"value={result.packet.get_field('hdr.nc.val')} "
              f"(bucket {bucket} = {controller.read_memory(handle, 'mem1', bucket)})")
        assert result.verdict is Verdict.REFLECT

    # The original key was never disturbed.
    original = lookup(dataplane, 0x8888)
    assert original.packet.get_field("hdr.nc.val") == 1
    print("\noriginal key 0x8888 still served; now evicting 0x1111...")

    read_case, write_case = case_handles[0]
    controller.remove_case(handle, read_case)
    controller.remove_case(handle, write_case)
    evicted = lookup(dataplane, 0x1111)
    print(f"read 0x1111 -> {evicted.verdict.value} to port {evicted.egress_port} "
          "(a miss again — forwarded to the backing server)")
    assert evicted.verdict is Verdict.FORWARD


if __name__ == "__main__":
    main()
