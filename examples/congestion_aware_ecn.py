#!/usr/bin/env python3
"""ECN marking under live congestion (Table 1's `ecn` + the queue model).

Replays traffic through a 100 Mbps bottleneck whose egress queue follows
a fluid model: depth grows while the offered load exceeds the drain rate
and the ECN program marks ECT packets Congestion-Experienced once the
queue crosses its threshold.  The load ramps up and back down; the mark
rate follows the queue with the one-window telemetry delay real switches
have.

Run:  python examples/congestion_aware_ecn.py
"""

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.queueing import QueueModel
from repro.traffic import CampusTrace, ReplayEngine, TraceConfig, make_population

PHASES = [  # (offered Mbps, seconds)
    (60.0, 2.0),
    (180.0, 3.0),
    (60.0, 3.0),
]
DRAIN_MBPS = 100.0


def sparkline(values, hi=None):
    blocks = " ▁▂▃▄▅▆▇█"
    hi = hi or max(values) or 1
    return "".join(
        blocks[min(int(v / hi * (len(blocks) - 1)), len(blocks) - 1)] for v in values
    )


def ect_windows(trace):
    for window in trace.windows():
        for packet in window.packets:
            packet.set_field("hdr.ipv4.ecn", 1)  # ECT(1)
        yield window


def main() -> None:
    controller, dataplane = Controller.with_simulator()
    controller.deploy(PROGRAMS["ecn"].source)
    model = QueueModel(drain_mbps=DRAIN_MBPS)
    engine = ReplayEngine(dataplane, queue_model=model)

    marks_per_window = []
    depth_per_window = []
    original = dataplane.process

    def counting(packet, carried=None):
        result = original(packet, carried)
        if result.packet.has("ipv4") and result.packet.get_field("hdr.ipv4.ecn") == 3:
            counting.marked += 1
        return result

    counting.marked = 0
    dataplane.process = counting

    population = make_population(seed=8, udp_fraction=0.0)
    offset = 0.0
    for rate, duration in PHASES:
        trace = CampusTrace(
            population,
            TraceConfig(
                rate_mbps=rate,
                duration_s=duration,
                samples_per_window=25,
                tcp_burst_probability=0.0,
                seed=11,
            ),
        )
        for window in ect_windows(trace):
            before = counting.marked
            engine._replay_window(window)
            marks_per_window.append(counting.marked - before)
            depth_per_window.append(model.observe_depth(0))
        offset += duration
    dataplane.process = original

    print(f"bottleneck drain {DRAIN_MBPS:.0f} Mbps; offered: "
          + " -> ".join(f"{r:.0f} Mbps x {d:.0f}s" for r, d in PHASES))
    print(f"\nqueue depth (cells)   |{sparkline(depth_per_window)}|  peak "
          f"{max(depth_per_window)}")
    print(f"CE marks per window   |{sparkline(marks_per_window)}|  total "
          f"{sum(marks_per_window)}")

    phase1 = sum(marks_per_window[:40])
    phase2 = sum(marks_per_window[40:100])
    phase3_tail = sum(marks_per_window[-20:])
    print(f"\nmarks: underload {phase1}, congestion {phase2}, after drain "
          f"{phase3_tail} — the data plane marks exactly while the queue "
          "exceeds the program's threshold.")
    assert phase1 == 0 and phase2 > 0


if __name__ == "__main__":
    main()
