#!/usr/bin/env python3
"""An on-demand network measurement suite (the FlyMon-style use case,
but runtime-composed from general P4runpro primitives).

Deploys a heavy-hitter detector, a Count-Min Sketch, and a SuMax sketch,
each monitoring its own subnet (P4runpro executes one program per packet
— §7's parallel-execution limitation — so unrelated monitors watch
disjoint traffic slices).  Replays heavy-tailed traffic, then reads the
sketches back through the control plane's address translation and
compares them with ground truth.

Run:  python examples/measurement_suite.py
"""

from collections import Counter

from repro.controlplane import Controller
from repro.programs import source_with_memory
from repro.rmt.hashing import HashUnit
from repro.rmt.packet import make_tcp, make_udp
from repro.rmt.pipeline import Verdict
from repro.traffic import make_population

THRESHOLD = 64
PACKETS_PER_SUBNET = 6_000

HH_SUBNET = 0x0A000000  # 10.0/16 -> heavy-hitter detector
CMS_SUBNET = 0x0A010000  # 10.1/16 -> Count-Min Sketch
SUMAX_SUBNET = 0x0A020000  # 10.2/16 -> SuMax


def subnet_filter(source: str, subnet: int) -> str:
    """Point a catch-all program at one /16 of source addresses."""
    return source.replace(
        "<hdr.ipv4.ttl, 0, 0x0>", f"<hdr.ipv4.src, {subnet:#x}, 0xffff0000>"
    )


def replay(dataplane, subnet: int, seed: int):
    population = make_population(
        num_flows=1024, heavy_flows=20, heavy_share=0.7, subnet=subnet, seed=seed
    )
    truth: Counter = Counter()
    max_len: dict[tuple, int] = {}
    reported = set()
    for flow in population.sample(PACKETS_PER_SUBNET):
        truth[flow.five_tuple] += 1
        maker = make_udp if flow.proto == 17 else make_tcp
        size = 80 + (hash(flow.five_tuple) % 600)
        pkt = maker(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, size=size)
        max_len[flow.five_tuple] = max(
            max_len.get(flow.five_tuple, 0), pkt.get_field("hdr.ipv4.len")
        )
        result = dataplane.process(pkt)
        if result.verdict is Verdict.TO_CPU:
            reported.add(pkt.five_tuple())
    return truth, max_len, reported


def main() -> None:
    controller, dataplane = Controller.with_simulator()

    # The operator edits program text at deploy time: thresholds, memory
    # sizes, and traffic filters are all just source until deployment.
    hh_source = (
        source_with_memory("hh", 1024)
        .replace("LOADI(har, 1024)", f"LOADI(har, {THRESHOLD})")
        .replace("case(<har, 1024, 0xffffffff>)", f"case(<har, {THRESHOLD}, 0xffffffff>)")
    )
    controller.deploy(hh_source)
    cms = controller.deploy(subnet_filter(source_with_memory("cms", 1024), CMS_SUBNET))
    sumax = controller.deploy(
        subnet_filter(source_with_memory("sumax", 1024), SUMAX_SUBNET)
    )
    print(f"deployed: hh on 10.0/16 (threshold {THRESHOLD}), cms on 10.1/16, "
          f"sumax on 10.2/16 — {len(controller.running_programs())} programs running")

    # Heavy-hitter subnet.
    truth_hh, _, reported = replay(dataplane, HH_SUBNET, seed=9)
    crossed = {t for t, n in truth_hh.items() if n >= THRESHOLD}
    print(f"\nheavy hitters: {len(reported)} reported / {len(crossed)} crossed threshold")
    print(f"  missed: {len(crossed - reported)}   spurious: {len(reported - crossed)}")

    # CMS subnet: compare estimates against ground truth.
    truth_cms, _, _ = replay(dataplane, CMS_SUBNET, seed=10)
    mask = 1023
    row1, row2 = HashUnit("crc_16_buypass"), HashUnit("crc_16_mcrf4xx")
    print("\nCount-Min Sketch estimates (top-5 flows in 10.1/16):")
    print("  flow                                     true    cms-est")
    for five_tuple, count in truth_cms.most_common(5):
        est = min(
            controller.read_memory(cms, "cms_row1", row1.hash_five_tuple(five_tuple) & mask),
            controller.read_memory(cms, "cms_row2", row2.hash_five_tuple(five_tuple) & mask),
        )
        src, dst, proto, sport, dport = five_tuple
        label = f"{src:>10x}->{dst:<10x} {proto}/{sport}->{dport}"
        print(f"  {label:40s} {count:6d} {est:9d}")
        assert est >= count, "CMS must never underestimate"

    # SuMax subnet: stored maxima match the largest packet per flow.
    truth_sm, max_len, _ = replay(dataplane, SUMAX_SUBNET, seed=11)
    print("\nSuMax stored maxima (top-3 flows in 10.2/16):")
    exact = 0
    for five_tuple, _count in truth_sm.most_common(3):
        stored = controller.read_memory(
            sumax, "sumax_row1", row1.hash_five_tuple(five_tuple) & mask
        )
        flag = "==" if stored == max_len[five_tuple] else ">="
        exact += stored == max_len[five_tuple]
        print(f"  true max {max_len[five_tuple]:5d}  stored {stored:5d}  ({flag}: "
              "collisions only ever raise the stored value)")
        assert stored >= max_len[five_tuple]

    print("\nall three measurement programs ran concurrently on one fixed "
          "data plane — no recompilation, no traffic disturbance.")


if __name__ == "__main__":
    main()
