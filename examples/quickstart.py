#!/usr/bin/env python3
"""Quickstart: deploy the paper's in-network cache at runtime.

Builds a simulated P4runpro switch, deploys the cache program from the
paper's Figure 2 without any reprovisioning, runs cache read/write/miss
traffic through it, inspects the program's memory through the control
plane, and revokes it — the full §3.2 workflow.

Run:  python examples/quickstart.py
"""

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache

HOT_KEY = 0x8888  # the key the cache program's case blocks match


def main() -> None:
    # One-time provisioning: build the P4runpro data plane. After this the
    # switch never needs to be reprovisioned again.
    controller, dataplane = Controller.with_simulator()
    print("P4runpro data plane provisioned "
          f"({controller.spec.num_rpbs} RPBs, R={controller.spec.max_recirculations})")

    # Deploy the cache program while (hypothetical) traffic keeps flowing.
    handle = controller.deploy(PROGRAMS["cache"].source)
    stats = handle.stats
    print(f"\ndeployed '{handle.name}' as program #{handle.program_id}")
    print(f"  parse       {stats.parse_ms:8.3f} ms")
    print(f"  allocation  {stats.allocation_ms:8.3f} ms  -> logic RPBs {stats.logic_rpbs}")
    print(f"  update      {stats.update_ms:8.3f} ms  ({stats.entries} table entries)")
    print(f"  total       {stats.total_ms:8.3f} ms  (conventional P4: minutes + blackout)")

    # Cache write: the server stores a value; the switch absorbs the packet.
    write = make_cache(0x0A000001, 0x0A000002, op=NC_WRITE, key=HOT_KEY, value=1234)
    result = dataplane.process(write)
    print(f"\ncache write  -> {result.verdict.value} (value cached in-switch)")

    # Cache read: served directly from the switch, reflected to the client.
    read = make_cache(0x0A000001, 0x0A000002, op=NC_READ, key=HOT_KEY)
    result = dataplane.process(read)
    print(f"cache read   -> {result.verdict.value}, value={result.packet.get_field('hdr.nc.val')}")

    # Cache miss: forwarded to the backend server on port 32.
    miss = make_cache(0x0A000001, 0x0A000002, op=NC_READ, key=0xDEAD)
    result = dataplane.process(miss)
    print(f"cache miss   -> {result.verdict.value} to port {result.egress_port}")

    # The control plane reads the program's virtual memory through address
    # translation (virtual bucket 128 -> physical bucket somewhere in RPB N).
    value = controller.read_memory(handle, "mem1", 128)
    print(f"\ncontrol-plane readback of mem1[128]: {value}")

    # Revoke: entries removed consistently (init entry first), memory
    # locked, zeroed, and returned to the free lists.
    delay_ms = controller.revoke(handle)
    print(f"revoked in {delay_ms:.3f} ms; running programs: "
          f"{[r.name for r in controller.running_programs()]}")
    result = dataplane.process(read.clone())
    print(f"cache read after revoke -> {result.verdict.value} to port {result.egress_port}")


if __name__ == "__main__":
    main()
