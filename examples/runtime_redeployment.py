#!/usr/bin/env python3
"""Runtime redeployment under live traffic (the Fig. 13(a) scenario).

Replays a synthetic campus trace at 100 Mbps while an operator deploys
and deletes programs every half second from t=5 s.  P4runpro's RX rate
never moves; the conventional P4 workflow's contrast curve shows the
reprovisioning blackout.

Run:  python examples/runtime_redeployment.py
"""

from repro.baselines.conventional import ConventionalWorkflow
from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.traffic import CampusTrace, ReplayEngine, ReplayEvent, TraceConfig, make_population

DURATION_S = 12.0
CHURN_FROM_S = 5.0


def sparkline(values, lo=0.0, hi=None):
    blocks = " ▁▂▃▄▅▆▇█"
    hi = hi or max(values) or 1.0
    return "".join(
        blocks[min(int((v - lo) / (hi - lo) * (len(blocks) - 1)), len(blocks) - 1)]
        for v in values
    )


def main() -> None:
    controller, dataplane = Controller.with_simulator()
    trace = CampusTrace(
        make_population(seed=3),
        TraceConfig(duration_s=DURATION_S, samples_per_window=15),
    )

    deployed = []
    churn_log = []
    names = [n for n in PROGRAMS if n != "nc"] * 3

    def churn(name):
        def action():
            if deployed and len(deployed) % 3 == 2:
                handle = deployed.pop(0)
                controller.revoke(handle)
                churn_log.append(f"- {handle.name}")
            else:
                handle = controller.deploy(PROGRAMS[name].source)
                deployed.append(handle)
                churn_log.append(f"+ {name}")

        return action

    events = [
        ReplayEvent(at_s=CHURN_FROM_S + 0.5 * i, action=churn(name))
        for i, name in enumerate(names)
        if CHURN_FROM_S + 0.5 * i < DURATION_S
    ]
    stats = ReplayEngine(dataplane).run(trace.windows(), events)

    # The conventional contrast: one reprovision at t=5 s.
    workflow = ConventionalWorkflow()
    workflow.deploy("cache", p4_loc=77, at_s=CHURN_FROM_S)
    _, contrast_dp = Controller.with_simulator()
    contrast = ReplayEngine(
        contrast_dp, blackout=lambda t: not workflow.traffic_available(t)
    ).run(
        CampusTrace(
            make_population(seed=3), TraceConfig(duration_s=DURATION_S, samples_per_window=5)
        ).windows()
    )

    print(f"churn from t={CHURN_FROM_S}s: {' '.join(churn_log)}")
    print(f"\nRX rate (50 ms windows, 0..{max(s.offered_mbps for s in stats):.0f} Mbps):")
    print(f"  P4runpro     |{sparkline([s.rx_mbps for s in stats])}|")
    print(f"  conventional |{sparkline([s.rx_mbps for s in contrast])}|")
    lost = sum(1 for s in contrast if s.rx_mbps == 0)
    print(
        f"\nP4runpro dropped 0 windows during {len(churn_log)} runtime updates; "
        f"the conventional workflow blacked out {lost} windows "
        f"({lost * 0.05:.1f} s) for a single program change."
    )
    print(f"programs still running: {[r.name for r in controller.running_programs()]}")


if __name__ == "__main__":
    main()
