#!/usr/bin/env python3
"""Deploying long programs on a switch chain instead of recirculating.

Paper §4.1.3: "Recirculation can also be replaced by multiple switches
deployed on the same path" — each hop drops the recirculation block
(gaining an ingress RPB) and the bridge header carries program state from
hop to hop.  The heavy-hitter detector needs 24 execution steps, more
than one pass offers; here it runs across a 2-hop chain with zero
recirculation (and therefore none of Fig. 11's throughput loss).

Run:  python examples/switch_chain.py
"""

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.packet import make_udp
from repro.rmt.pipeline import Verdict

THRESHOLD = 16


def main() -> None:
    controller, chain = Controller.with_chain(num_switches=2)
    spec = controller.spec
    print(f"switch chain: {spec.num_switches} hops x {spec.rpbs_per_switch} RPBs "
          f"= {spec.num_logic_rpbs} logic RPBs "
          f"(single switch with R=1: 44)")

    source = (
        PROGRAMS["hh"].source
        .replace("LOADI(har, 1024)", f"LOADI(har, {THRESHOLD})")
        .replace("case(<har, 1024, 0xffffffff>)", f"case(<har, {THRESHOLD}, 0xffffffff>)")
    )
    handle = controller.deploy(source)
    per_hop = spec.rpbs_per_switch
    hops_used = sorted({(rpb - 1) // per_hop for rpb in handle.stats.logic_rpbs})
    print(f"\nheavy-hitter detector allocated to logic RPBs {handle.stats.logic_rpbs}")
    print(f"spanning hops {hops_used} — the REPORT executes on hop 1's ingress")

    heavy = make_udp(0x0A000001, 0x0B000001, 4000, 80)
    verdicts = [chain.process(heavy.clone()) for _ in range(THRESHOLD + 2)]
    reported = [i for i, r in enumerate(verdicts) if r.verdict is Verdict.TO_CPU]
    print(f"\n{len(verdicts)} packets of one flow: report fired at packet "
          f"{reported[0] + 1} (threshold {THRESHOLD}); "
          f"recirculations: {max(r.recirculations for r in verdicts)}")

    # Per-hop resource picture.
    print("\nper-hop table occupancy:")
    for index, hop in enumerate(chain.hops):
        used = sum(t.occupancy for t in hop.tables.values())
        print(f"  hop {index}: {used} entries installed")

    # What a chain cannot host: memory-revisiting programs.
    revisit = (
        "@ m 64\nprogram revisit(<hdr.ipv4.ttl, 0, 0x0>) {"
        " MEMREAD(m); LOADI(sar, 1); MEMWRITE(m); }"
    )
    try:
        controller.deploy(revisit)
    except Exception as exc:
        print(f"\nre-accessing one memory at two steps is recirculation-only:\n  {exc}")


if __name__ == "__main__":
    main()
