#!/usr/bin/env python3
"""SwitchML-style in-network aggregation via the MULTICAST extension.

The paper (§7) observes that "implementing the simple aggregation logic
in SwitchML requires only modifying P4runpro to support multicast" — this
reproduction implements that extension.  Four ML workers stream gradient
chunks to the switch; the switch sums each chunk in-network, absorbs the
first three arrivals, and multicasts the aggregate back to all workers on
the fourth — cutting the all-reduce traffic at the host NICs by 4x.

Run:  python examples/in_network_aggregation.py
"""

import random

from repro.controlplane import Controller
from repro.rmt.packet import make_cache
from repro.rmt.parser import default_parse_machine
from repro.rmt.pipeline import Verdict

NUM_WORKERS = 4
WORKER_PORTS = [10, 11, 12, 13]
CHUNKS = 16
AGG_PORT = 9999

AGGREGATION_PROGRAM = f"""
@ agg_val 256
@ agg_cnt 256
program mlagg(
    <hdr.udp.dst_port, {AGG_PORT}, 0xffff>) {{
    EXTRACT(hdr.nc.key2, har);  //chunk index
    HASH_MEM(agg_val);          //aggregation slot
    EXTRACT(hdr.nc.val, sar);   //worker's partial gradient
    MEMADD(agg_val);            //sum in-network
    MODIFY(hdr.nc.val, sar);    //carry the running sum
    LOADI(sar, 1);
    MEMADD(agg_cnt);            //count arrivals for this chunk
    BRANCH:
    case(<sar, {NUM_WORKERS}, 0xffffffff>) {{
        MULTICAST(1);           //round complete: broadcast the aggregate
    }}
    DROP;                       //absorb intermediate arrivals
}}
"""


def main() -> None:
    controller, dataplane = Controller.with_simulator(
        parse_machine=default_parse_machine(nc_port=AGG_PORT)
    )
    controller.configure_multicast_group(1, WORKER_PORTS)
    handle = controller.deploy(AGGREGATION_PROGRAM)
    print(f"deployed aggregation program in {handle.stats.total_ms:.2f} ms "
          f"({handle.stats.entries} entries)")

    rng = random.Random(1)
    gradients = [
        [rng.randrange(1, 100) for _ in range(CHUNKS)] for _ in range(NUM_WORKERS)
    ]
    expected = [sum(worker[c] for worker in gradients) for c in range(CHUNKS)]

    absorbed = 0
    broadcast = []
    # Workers interleave chunk transmissions, as they would over a fabric.
    sends = [
        (worker, chunk)
        for chunk in range(CHUNKS)
        for worker in range(NUM_WORKERS)
    ]
    rng.shuffle(sends)
    # ... but per chunk the arrival order is preserved by the shuffle above
    # only within workers; aggregation is order-independent anyway.
    for worker, chunk in sends:
        pkt = make_cache(
            0x0A000000 + worker,
            0x0A00FF01,
            op=3,
            key=chunk,
            value=gradients[worker][chunk],
            dst_port=AGG_PORT,
        )
        result = dataplane.process(pkt)
        if result.verdict is Verdict.DROP:
            absorbed += 1
        elif result.verdict is Verdict.MULTICAST:
            broadcast.append((chunk, result.packet.get_field("hdr.nc.val")))

    print(f"\n{len(sends)} gradient packets sent; {absorbed} absorbed in-switch, "
          f"{len(broadcast)} aggregates multicast to {WORKER_PORTS}")
    ok = all(value == expected[chunk] for chunk, value in broadcast)
    for chunk, value in sorted(broadcast)[:5]:
        print(f"  chunk {chunk:2d}: aggregate {value:4d} (expected {expected[chunk]})")
    print("  ...")
    assert ok and len(broadcast) == CHUNKS
    print(f"\nall {CHUNKS} aggregates exact; host-side receive traffic cut "
          f"{NUM_WORKERS}x (workers receive 1 aggregate instead of "
          f"{NUM_WORKERS} partials per chunk).")


if __name__ == "__main__":
    main()
