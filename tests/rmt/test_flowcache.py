"""Two-tier flow cache unit tests: EMC, megaflow, stateful replay,
generation invalidation, and uncacheable classification."""

import pytest

from repro.controlplane import Controller
from repro.compiler.target import TargetSpec
from repro.dataplane.runpro import P4runproDataPlane
from repro.dataplane.tracing import capture_trace
from repro.programs import PROGRAMS
from repro.rmt.packet import make_cache, make_l2, make_tcp, make_udp
from repro.rmt.pipeline import Verdict


def deployed(source, *, spec=None, flow_cache=True):
    dataplane = P4runproDataPlane(spec or TargetSpec(), flow_cache=flow_cache)
    ctl = Controller(dataplane, spec=spec)
    ctl.deploy(source)
    return ctl, dataplane


def result_tuple(result):
    return (
        result.verdict,
        result.egress_port,
        result.recirculations,
        result.egress_ports,
        sorted(result.bridge.items()),
    )


class TestEmc:
    def test_identical_packets_hit_emc(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        for _ in range(5):
            result = dataplane.process(make_l2(dst=0x1))
        assert result.verdict is Verdict.FORWARD and result.egress_port == 1
        stats = dataplane.flow_cache.stats()
        assert stats["misses"] == 1
        assert stats["emc_hits"] == 4

    def test_emc_verdict_matches_uncached(self):
        _, cached = deployed(PROGRAMS["l2fwd"].source)
        _, uncached = deployed(PROGRAMS["l2fwd"].source, flow_cache=False)
        for dst in (0x1, 0x2, 0x999, 0x1, 0x2):
            a = cached.process(make_l2(dst=dst))
            b = uncached.process(make_l2(dst=dst))
            assert result_tuple(a) == result_tuple(b)

    def test_emc_capacity_evicts_oldest(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.flow_cache.emc_capacity = 4
        for i in range(10):
            dataplane.process(make_l2(dst=0x1, src=0x100 + i))
        assert dataplane.flow_cache.stats()["occupancy"]["emc"] <= 4

    def test_emc_hit_bumps_table_counters(self):
        """Template replay must keep lookup/hit counters bit-identical."""
        _, cached = deployed(PROGRAMS["l2fwd"].source)
        _, uncached = deployed(PROGRAMS["l2fwd"].source, flow_cache=False)
        for _ in range(6):
            cached.process(make_l2(dst=0x1))
            uncached.process(make_l2(dst=0x1))
        for name in cached.tables:
            ct, ut = cached.tables[name], uncached.tables[name]
            assert (ct.lookups, ct.hits) == (ut.lookups, ut.hits), name

    def test_emc_hit_skips_pipeline_walk(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1))
        table = dataplane.tables["init"]
        accesses_fn = lambda: sum(
            a.accesses
            for s in dataplane.switch.ingress.stages
            for a in s.register_arrays.values()
        )
        # l2fwd is stateless: a template hit touches no register array
        # and the switch-level pass counter still advances.
        passes = dataplane.switch.pipeline_passes
        dataplane.process(make_l2(dst=0x1))
        assert dataplane.switch.pipeline_passes == passes + 1


class TestMegaflow:
    def test_unconsulted_fields_wildcard(self):
        """Flows differing only in unconsulted fields share one megaflow."""
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        for i in range(12):
            dataplane.process(make_l2(dst=0x1, src=0x5000 + i))
        stats = dataplane.flow_cache.stats()
        assert stats["misses"] == 1
        assert stats["megaflow_hits"] == 11
        assert stats["occupancy"]["megaflow"] == 1

    def test_consulted_fields_split_megaflows(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        for dst in (0x1, 0x2, 0x3):
            dataplane.process(make_l2(dst=dst))
        assert dataplane.flow_cache.stats()["occupancy"]["megaflow"] == 3

    def test_megaflow_hit_promotes_to_emc(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1, src=0xA))
        dataplane.process(make_l2(dst=0x1, src=0xB))  # megaflow hit
        dataplane.process(make_l2(dst=0x1, src=0xB))  # now an EMC hit
        stats = dataplane.flow_cache.stats()
        assert stats["megaflow_hits"] == 1
        assert stats["emc_hits"] == 1

    def test_parse_path_pins_presence(self):
        """A TCP-recorded trace must not swallow a UDP packet."""
        _, cached = deployed(PROGRAMS["firewall"].source)
        _, uncached = deployed(PROGRAMS["firewall"].source, flow_cache=False)
        stream = [
            make_tcp(0x0A000001, 0x0A000002, 1000, 80),
            make_udp(0x0A000001, 0x0A000002, 1000, 80),
            make_tcp(0x0A000001, 0x0A000002, 1000, 80),
        ] * 3
        for pkt in stream:
            a = cached.process(pkt)
            b = uncached.process(pkt)
            assert result_tuple(a) == result_tuple(b)


class TestStatefulReplay:
    def test_salu_ops_reexecute_on_hit(self):
        """dqacc MEMADDs per packet: hits must keep mutating the bucket."""
        _, cached = deployed(PROGRAMS["dqacc"].source)
        _, uncached = deployed(PROGRAMS["dqacc"].source, flow_cache=False)
        pkt = lambda: make_cache(0x0A000001, 0x0A000002, op=1, key=0x44, value=5)
        for _ in range(6):
            assert result_tuple(cached.process(pkt())) == result_tuple(
                uncached.process(pkt())
            )
        assert cached.flow_cache.stats()["emc_hits"] >= 4
        for phys in range(1, 23):
            assert (
                cached._array(phys).snapshot() == uncached._array(phys).snapshot()
            ), f"rpb{phys} diverged"

    def test_register_dependent_branch_is_uncacheable(self):
        """hh thresholds on a live CMS count: its traces cannot be cached."""
        _, dataplane = deployed(PROGRAMS["hh"].source)
        for _ in range(8):
            dataplane.process(make_tcp(0x0A000001, 0x0B000001, 999, 80))
        stats = dataplane.flow_cache.stats()
        assert stats["emc_hits"] == 0
        assert stats["megaflow_hits"] == 0
        assert stats["uncacheable"] >= 7

    def test_uncacheable_flow_still_correct(self):
        _, cached = deployed(PROGRAMS["hh"].source)
        _, uncached = deployed(PROGRAMS["hh"].source, flow_cache=False)
        for i in range(30):
            pkt = lambda: make_tcp(0x0A000001 + i % 3, 0x0B000001, 999, 80)
            assert result_tuple(cached.process(pkt())) == result_tuple(
                uncached.process(pkt())
            )
        for phys in range(1, 23):
            assert cached._array(phys).snapshot() == uncached._array(phys).snapshot()

    def test_recirculating_stateful_trace_replays(self):
        spec = TargetSpec(max_recirculations=4)
        body = []
        for i in range(5):
            body += [
                f"LOADI(mar, {i});",
                "EXTRACT(hdr.nc.val, sar);",
                "MEMADD(slots);",
            ]
        source = (
            "@ slots 1024\nprogram agg(<hdr.udp.dst_port, 9999, 0xffff>) { "
            + " ".join(body)
            + " }"
        )
        _, cached = deployed(source, spec=spec)
        _, uncached = deployed(source, spec=spec, flow_cache=False)

        def pkt():
            p = make_udp(0x0A000001, 0x0A000002, 1234, 9999, size=80)
            p.headers["nc"] = {"op": 0, "key1": 0, "key2": 0, "val": 3}
            return p

        for _ in range(6):
            a, b = cached.process(pkt()), uncached.process(pkt())
            assert result_tuple(a) == result_tuple(b)
        assert a.recirculations == 4
        assert cached.flow_cache.stats()["emc_hits"] == 5
        assert cached.switch.pipeline_passes == uncached.switch.pipeline_passes
        for phys in range(1, 23):
            assert cached._array(phys).snapshot() == uncached._array(phys).snapshot()


class TestInvalidation:
    def test_deploy_bumps_generation(self):
        ctl, dataplane = deployed(PROGRAMS["l2fwd"].source)
        for _ in range(3):
            dataplane.process(make_l2(dst=0x1))
        generation = dataplane.flow_cache.generation
        ctl.deploy(PROGRAMS["dqacc"].source)
        assert dataplane.flow_cache.generation > generation

    def test_revoke_flushes_stale_verdicts(self):
        ctl, dataplane = deployed(PROGRAMS["l2fwd"].source)
        handle = ctl.running_programs()[0]
        result = dataplane.process(make_l2(dst=0x1))
        assert result.egress_port == 1
        ctl.revoke(handle.program_id)
        result = dataplane.process(make_l2(dst=0x1))
        assert result.egress_port == 0  # default port: program gone

    def test_write_bucket_invalidates(self):
        _, dataplane = deployed(PROGRAMS["dqacc"].source)
        dataplane.process(make_cache(0x0A000001, 0x0A000002, op=1, key=0x1))
        generation = dataplane.flow_cache.generation
        dataplane.write_bucket(1, 0, 42)
        assert dataplane.flow_cache.generation > generation

    def test_multicast_reconfig_invalidates(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        generation = dataplane.flow_cache.generation
        dataplane.configure_multicast_group(1, [2, 3])
        assert dataplane.flow_cache.generation > generation

    def test_stale_hits_counted_as_invalidations(self):
        ctl, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1))
        ctl.deploy(PROGRAMS["dqacc"].source)  # bumps generation
        dataplane.process(make_l2(dst=0x1))  # stale EMC + megaflow entries
        assert dataplane.flow_cache.stats()["invalidations"] >= 1

    def test_disabled_cache_is_inert(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source, flow_cache=False)
        for _ in range(4):
            dataplane.process(make_l2(dst=0x1))
        stats = dataplane.flow_cache.stats()
        assert not stats["enabled"]
        assert stats["misses"] == 0 and stats["emc_hits"] == 0


class TestTracingBypass:
    def test_capture_trace_sees_full_walk(self):
        """Tracing needs real execution, so a hot flow must still trace."""
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        for _ in range(3):
            dataplane.process(make_l2(dst=0x1))  # hot: EMC resident
        with capture_trace() as trace:
            dataplane.process(make_l2(dst=0x1))
        assert len(trace.steps) > 0
        hits_during_trace = dataplane.flow_cache.stats()["emc_hits"]
        dataplane.process(make_l2(dst=0x1))
        assert dataplane.flow_cache.stats()["emc_hits"] == hits_during_trace + 1


class TestBatchPooling:
    def test_process_many_reuses_phvs(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.flow_cache.enabled = False  # force full walks
        dataplane.codegen.enabled = False  # ...through the interpreter
        packets = [make_l2(dst=0x1, src=0x100 + i) for i in range(32)]
        results = dataplane.process_many(packets)
        assert len(results) == 32
        assert len(dataplane.switch._phv_pool) >= 1

    def test_batch_matches_sequential(self):
        _, batch = deployed(PROGRAMS["l2fwd"].source)
        _, seq = deployed(PROGRAMS["l2fwd"].source)
        packets = [make_l2(dst=(i % 3), src=0x100 + i) for i in range(24)]
        batched = batch.process_many([p.clone() for p in packets])
        single = [seq.process(p.clone()) for p in packets]
        assert [result_tuple(a) for a in batched] == [
            result_tuple(b) for b in single
        ]


class TestStats:
    def test_dataplane_stats_includes_flow_cache(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1))
        stats = dataplane.stats()
        assert stats["packets_in"] == 1
        assert stats["flow_cache"]["misses"] == 1
        assert set(stats["flow_cache"]) >= {
            "emc_hits",
            "megaflow_hits",
            "misses",
            "uncacheable",
            "invalidations",
            "occupancy",
        }
