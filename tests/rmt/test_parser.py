"""Parse-machine tests."""

import pytest

from repro.rmt.packet import make_cache, make_calc, make_ipv4, make_l2, make_tcp, make_udp
from repro.rmt.parser import (
    DEFAULT_BITMAP_BITS,
    ParseMachine,
    ParserFrozenError,
    ParseState,
    default_parse_machine,
)
from repro.rmt.phv import PHV, PHVLayout


def parse(machine, packet):
    layout = PHVLayout()
    layout.declare("ud.parse_bitmap", 8)
    phv = PHV(layout, packet)
    return machine.parse(packet, phv), phv


@pytest.fixture
def machine():
    return default_parse_machine()


class TestDefaultMachine:
    def test_l2_only_bitmap(self, machine):
        bitmap, _ = parse(machine, make_l2())
        assert bitmap == 1 << DEFAULT_BITMAP_BITS["eth"]

    def test_ipv4_bitmap(self, machine):
        bitmap, _ = parse(machine, make_ipv4(1, 2))
        assert bitmap & (1 << DEFAULT_BITMAP_BITS["ipv4"])
        assert not bitmap & (1 << DEFAULT_BITMAP_BITS["tcp"])

    def test_tcp_bitmap(self, machine):
        bitmap, _ = parse(machine, make_tcp(1, 2, 3, 4))
        assert bitmap & (1 << DEFAULT_BITMAP_BITS["tcp"])
        assert not bitmap & (1 << DEFAULT_BITMAP_BITS["udp"])

    def test_udp_bitmap(self, machine):
        bitmap, _ = parse(machine, make_udp(1, 2, 3, 4))
        expected = (
            (1 << DEFAULT_BITMAP_BITS["eth"])
            | (1 << DEFAULT_BITMAP_BITS["ipv4"])
            | (1 << DEFAULT_BITMAP_BITS["udp"])
        )
        assert bitmap == expected

    def test_cache_packet_parses_nc(self, machine):
        bitmap, phv = parse(machine, make_cache(1, 2, op=1, key=5))
        assert bitmap & (1 << DEFAULT_BITMAP_BITS["nc"])
        assert phv.has("hdr.nc.op")

    def test_calc_packet_parses_calc(self, machine):
        bitmap, phv = parse(machine, make_calc(1, 2, op=1, a=1, b=2))
        assert bitmap & (1 << DEFAULT_BITMAP_BITS["calc"])

    def test_udp_wrong_port_stops_before_nc(self, machine):
        pkt = make_udp(1, 2, 3, 9999)
        bitmap, phv = parse(machine, pkt)
        assert not bitmap & (1 << DEFAULT_BITMAP_BITS["nc"])
        assert not phv.has("hdr.nc.op")

    def test_bitmap_stored_in_phv(self, machine):
        bitmap, phv = parse(machine, make_udp(1, 2, 3, 4))
        assert phv.get("ud.parse_bitmap") == bitmap

    def test_headers_loaded_in_phv(self, machine):
        _, phv = parse(machine, make_tcp(1, 2, 3, 4))
        assert phv.get("hdr.tcp.dst_port") == 4
        assert "tcp" in phv.valid_headers

    def test_parsing_paths_enumeration(self, machine):
        paths = machine.parsing_paths()
        # Every concrete packet's bitmap must be a known path.
        for packet in (
            make_l2(),
            make_ipv4(1, 2),
            make_tcp(1, 2, 3, 4),
            make_udp(1, 2, 3, 4),
            make_cache(1, 2, op=1, key=1),
            make_calc(1, 2, op=1, a=1, b=1),
        ):
            bitmap, _ = parse(default_parse_machine(), packet)
            assert bitmap in paths


class TestMachineMechanics:
    def test_freeze_blocks_modification(self, machine):
        machine.freeze()
        with pytest.raises(ParserFrozenError):
            machine.add_state(ParseState("late"))

    def test_no_start_state_raises(self):
        machine = ParseMachine()
        with pytest.raises(RuntimeError):
            parse(machine, make_l2())

    def test_loop_detection(self):
        machine = ParseMachine()
        machine.add_state(
            ParseState("a", header="eth", select="hdr.eth.etype", transitions={None: "a"}),
            start=True,
        )
        with pytest.raises(RuntimeError, match="loop"):
            parse(machine, make_l2())

    def test_custom_machine_unknown_header_stops(self):
        machine = ParseMachine()
        machine.add_state(
            ParseState(
                "eth", header="eth", select="hdr.eth.etype", transitions={0x0800: "v4"}
            ),
            start=True,
        )
        machine.add_state(ParseState("v4", header="ipv4"))
        bitmap, _ = parse(machine, make_l2())  # no ipv4 on the wire
        assert bitmap == 1 << DEFAULT_BITMAP_BITS["eth"]
