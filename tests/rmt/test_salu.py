"""Stateful ALU / register array tests (Table-3 memory op semantics)."""

import pytest

from repro.rmt.salu import MemoryOutOfRangeError, RegisterArray, make_salu_programs


@pytest.fixture
def array():
    return RegisterArray("mem", 16)


class TestMemoryOps:
    def test_memadd_accumulates_and_returns_new(self, array):
        assert array.execute("MEMADD", 0, 5) == 5
        assert array.execute("MEMADD", 0, 3) == 8
        assert array.read(0) == 8

    def test_memsub_wraps(self, array):
        out = array.execute("MEMSUB", 0, 1)
        assert out == 0xFFFFFFFF
        assert array.read(0) == 0xFFFFFFFF

    def test_memand(self, array):
        array.write(1, 0b1100)
        assert array.execute("MEMAND", 1, 0b1010) == 0b1000

    def test_memor_returns_old_value(self, array):
        """MEMOR's PHV output is the value *before* the OR — the Bloom
        filter existence check depends on this (paper Fig. 17)."""
        assert array.execute("MEMOR", 2, 1) == 0
        assert array.execute("MEMOR", 2, 1) == 1
        assert array.read(2) == 1

    def test_memread_does_not_modify(self, array):
        array.write(3, 42)
        assert array.execute("MEMREAD", 3, 999) == 42
        assert array.read(3) == 42

    def test_memwrite_stores_operand(self, array):
        array.execute("MEMWRITE", 4, 77)
        assert array.read(4) == 77

    def test_memmax_keeps_maximum(self, array):
        array.execute("MEMMAX", 5, 10)
        assert array.execute("MEMMAX", 5, 3) == 10
        assert array.execute("MEMMAX", 5, 20) == 20
        assert array.read(5) == 20

    def test_memadd_wraps_at_width(self, array):
        array.write(6, 0xFFFFFFFF)
        assert array.execute("MEMADD", 6, 1) == 0

    def test_unknown_op_rejected(self, array):
        with pytest.raises(ValueError):
            array.execute("MEMXOR", 0, 1)

    def test_operand_masked_to_width(self):
        narrow = RegisterArray("w8", 4, width=8)
        narrow.execute("MEMWRITE", 0, 0x1FF)
        assert narrow.read(0) == 0xFF


class TestBounds:
    def test_execute_out_of_range(self, array):
        with pytest.raises(MemoryOutOfRangeError):
            array.execute("MEMREAD", 16, 0)

    def test_negative_address(self, array):
        with pytest.raises(MemoryOutOfRangeError):
            array.read(-1)

    def test_write_out_of_range(self, array):
        with pytest.raises(MemoryOutOfRangeError):
            array.write(100, 1)

    def test_reset_range(self, array):
        for i in range(16):
            array.write(i, i + 1)
        array.reset_range(4, 8)
        assert array.snapshot(0, 4) == [1, 2, 3, 4]
        assert array.snapshot(4, 8) == [0] * 8
        assert array.snapshot(12, 4) == [13, 14, 15, 16]

    def test_reset_range_bounds_checked(self, array):
        with pytest.raises(MemoryOutOfRangeError):
            array.reset_range(10, 10)

    def test_access_counter(self, array):
        array.execute("MEMADD", 0, 1)
        array.execute("MEMREAD", 0, 0)
        assert array.accesses == 2


class TestProgramFactory:
    def test_all_seven_ops_present(self):
        programs = make_salu_programs()
        assert set(programs) == {
            "MEMADD",
            "MEMSUB",
            "MEMAND",
            "MEMOR",
            "MEMREAD",
            "MEMWRITE",
            "MEMMAX",
        }
