"""Stage resource-budget tests."""

import pytest

from repro.rmt.hashing import HashUnit
from repro.rmt.salu import RegisterArray
from repro.rmt.stage import LogicalUnit, Stage, StageBudget, StageResourceError


class _Unit(LogicalUnit):
    def __init__(self):
        self.applied = 0

    def apply(self, phv, stage):
        self.applied += 1


@pytest.fixture
def stage():
    return Stage(0, "ingress")


class TestAttachment:
    def test_attach_unit_accounts_resources(self, stage):
        stage.attach_unit(_Unit(), tcam_entries=1024, key_bits=88, vliw_slots=10)
        assert stage.usage.tcam_blocks == 2 * 2  # 2 rows x 2 blocks wide
        assert stage.usage.vliw_slots == 10
        assert stage.usage.ltids == 1

    def test_tcam_budget_enforced(self, stage):
        with pytest.raises(StageResourceError, match="TCAM"):
            stage.attach_unit(_Unit(), tcam_entries=512 * 100)

    def test_vliw_budget_enforced(self, stage):
        with pytest.raises(StageResourceError, match="VLIW"):
            stage.attach_unit(_Unit(), vliw_slots=33)

    def test_ltid_budget_enforced(self, stage):
        for _ in range(16):
            stage.attach_unit(_Unit(), ltids=1)
        with pytest.raises(StageResourceError, match="LTID"):
            stage.attach_unit(_Unit(), ltids=1)

    def test_register_array_sram_accounting(self, stage):
        stage.attach_register_array(RegisterArray("m", 65536))
        assert stage.usage.sram_blocks == 16
        assert stage.usage.salus == 1

    def test_salu_budget_enforced(self, stage):
        for i in range(4):
            stage.attach_register_array(RegisterArray(f"m{i}", 4096))
        with pytest.raises(StageResourceError, match="SALU"):
            stage.attach_register_array(RegisterArray("m5", 4096))

    def test_sram_budget_enforced(self):
        stage = Stage(0, "ingress", StageBudget(sram_blocks=8))
        with pytest.raises(StageResourceError, match="SRAM"):
            stage.attach_register_array(RegisterArray("big", 65536))

    def test_hash_budget_enforced(self, stage):
        for i in range(6):
            stage.attach_hash_unit(f"h{i}", HashUnit())
        with pytest.raises(StageResourceError, match="hash"):
            stage.attach_hash_unit("h7", HashUnit())

    def test_wide_key_gangs_blocks(self, stage):
        stage.attach_unit(_Unit(), tcam_entries=512, key_bits=132)
        assert stage.usage.tcam_blocks == 3  # 1 row x 3 blocks wide


class TestProcessing:
    def test_units_applied_in_order(self, stage):
        calls = []

        class Recorder(LogicalUnit):
            def __init__(self, tag):
                self.tag = tag

            def apply(self, phv, st):
                calls.append(self.tag)

        stage.attach_unit(Recorder("a"))
        stage.attach_unit(Recorder("b"))
        stage.process(None)
        assert calls == ["a", "b"]

    def test_empty_stage_noop(self, stage):
        stage.process(None)  # must not raise
