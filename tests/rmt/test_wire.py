"""Wire-format tests: bit packing, IPv4 checksums, pcap round-trips."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.rmt.fields import header_size_bytes
from repro.rmt.packet import make_cache, make_l2, make_tcp, make_udp
from repro.rmt.wire import (
    WireFormatError,
    deserialize,
    ipv4_checksum,
    load_pcap,
    pack_header,
    save_pcap,
    serialize,
    unpack_header,
    verify_ipv4_checksum,
)


class TestBitPacking:
    def test_eth_pack_layout(self):
        data = pack_header("eth", {"dst": 0x112233445566, "src": 0xAABBCCDDEEFF, "etype": 0x0800})
        assert data == bytes.fromhex("112233445566AABBCCDDEEFF0800")

    def test_udp_pack(self):
        data = pack_header("udp", {"src_port": 0x1234, "dst_port": 0x5678, "len": 0x9ABC})
        assert data == bytes.fromhex("123456789ABC")

    def test_subbyte_fields_pack_together(self):
        """dscp(6) + ecn(2) share one byte."""
        fields = {"ver_ihl": 0x45, "dscp": 0b000010, "ecn": 0b11, "len": 20,
                  "id": 0, "flags_frag": 0, "ttl": 64, "proto": 17,
                  "checksum": 0, "src": 0, "dst": 0}
        data = pack_header("ipv4", fields)
        assert data[1] == (0b000010 << 2) | 0b11

    def test_overflow_rejected(self):
        with pytest.raises(WireFormatError, match="overflows"):
            pack_header("udp", {"src_port": 0x10000, "dst_port": 0, "len": 0})

    def test_unpack_inverse_of_pack(self):
        fields = {"src_port": 53, "dst_port": 5353, "len": 300}
        packed = pack_header("udp", fields)
        unpacked, rest = unpack_header("udp", packed + b"tail")
        assert unpacked == fields
        assert rest == b"tail"

    def test_short_data_rejected(self):
        with pytest.raises(WireFormatError, match="short packet"):
            unpack_header("ipv4", b"\x45\x00")


class TestChecksum:
    def test_known_vector(self):
        """RFC 1071 example-style header checksums validate to zero."""
        header = bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
        checksum = ipv4_checksum(header)
        patched = header[:10] + struct.pack(">H", checksum) + header[12:]
        assert ipv4_checksum(patched) == 0

    def test_serialized_packets_have_valid_checksums(self):
        for pkt in (make_udp(1, 2, 3, 4), make_tcp(5, 6, 7, 8, size=200)):
            assert verify_ipv4_checksum(serialize(pkt))


class TestSerializeDeserialize:
    @pytest.mark.parametrize(
        "packet",
        [
            make_l2(),
            make_udp(0x0A000001, 0x0B000002, 1234, 80, size=120),
            make_tcp(1, 2, 3, 4),
            make_cache(5, 6, op=2, key=0xDEAD_BEEF_0BAD_F00D, value=42),
        ],
    )
    def test_round_trip_preserves_headers(self, packet):
        data = serialize(packet)
        restored = deserialize(data)
        assert set(restored.headers) == set(packet.headers)
        for header, fields in packet.headers.items():
            for name, value in fields.items():
                if header == "ipv4" and name in ("len", "checksum"):
                    continue  # recomputed on the wire
                assert restored.headers[header][name] == value, f"{header}.{name}"

    def test_padding_to_wire_size(self):
        pkt = make_udp(1, 2, 3, 4, size=200)
        assert len(serialize(pkt)) == 200

    def test_ipv4_len_field_consistent(self):
        pkt = make_udp(1, 2, 3, 4, size=100)
        restored = deserialize(serialize(pkt))
        assert restored.headers["ipv4"]["len"] == 100 - header_size_bytes("eth")

    @given(
        src=st.integers(0, 0xFFFFFFFF),
        dst=st.integers(0, 0xFFFFFFFF),
        sport=st.integers(0, 0xFFFF),
        dport=st.integers(1, 0xFFFF),
        size=st.integers(64, 1500),
    )
    @settings(max_examples=60)
    def test_random_round_trips(self, src, dst, sport, dport, size):
        pkt = make_udp(src, dst, sport, dport, size=size)
        restored = deserialize(serialize(pkt))
        assert restored.five_tuple() == pkt.five_tuple()
        assert verify_ipv4_checksum(serialize(pkt))


class TestPcap:
    def test_pcap_round_trip(self, tmp_path):
        packets = [make_udp(i + 1, 2, 3, 80, size=100) for i in range(10)]
        for i, pkt in enumerate(packets):
            pkt.ts = i * 0.05
        path = tmp_path / "out.pcap"
        assert save_pcap(path, packets) == 10
        loaded = load_pcap(path)
        assert len(loaded) == 10
        assert [p.five_tuple() for p in loaded] == [p.five_tuple() for p in packets]
        assert [round(p.ts, 6) for p in loaded] == [round(p.ts, 6) for p in packets]

    def test_pcap_global_header_is_standard(self, tmp_path):
        path = tmp_path / "hdr.pcap"
        save_pcap(path, [make_l2()])
        raw = path.read_bytes()
        magic, major, minor = struct.unpack(">IHH", raw[:8])
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)
        (linktype,) = struct.unpack(">I", raw[20:24])
        assert linktype == 1  # Ethernet

    def test_not_a_pcap(self, tmp_path):
        path = tmp_path / "junk.pcap"
        path.write_bytes(b"\x00" * 30)
        with pytest.raises(WireFormatError, match="not a pcap"):
            load_pcap(path)

    def test_cache_packets_survive_pcap(self, tmp_path):
        pkt = make_cache(1, 2, op=1, key=0x8888, value=7)
        path = tmp_path / "cache.pcap"
        save_pcap(path, [pkt])
        restored = load_pcap(path)[0]
        assert restored.headers["nc"] == pkt.headers["nc"]

    def test_pcap_replay_through_switch(self, tmp_path):
        """Bytes-from-disk traffic drives the data plane identically."""
        from repro.controlplane import Controller
        from repro.programs import PROGRAMS
        from repro.rmt.packet import NC_READ
        from repro.rmt.pipeline import Verdict

        pkt = make_cache(1, 2, op=NC_READ, key=0x1)
        path = tmp_path / "replay.pcap"
        save_pcap(path, [pkt])
        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(PROGRAMS["cache"].source)
        result = dataplane.process(load_pcap(path)[0])
        assert result.verdict is Verdict.FORWARD
        assert result.egress_port == 32
