"""Fluid queue model tests + the ECN program under live congestion."""

import pytest

from repro.rmt.queueing import CELL_BYTES, PortQueue, QueueModel


class TestPortQueue:
    def test_underload_stays_empty(self):
        q = PortQueue(drain_mbps=100.0)
        for _ in range(20):
            q.advance(50e6 / 8 * 0.05, 0.05)  # 50 Mbps offered
        assert q.depth_cells == 0

    def test_overload_builds_queue(self):
        q = PortQueue(drain_mbps=100.0, capacity_cells=100_000)
        depths = [q.advance(150e6 / 8 * 0.05, 0.05) for _ in range(10)]
        assert depths == sorted(depths)
        assert depths[-1] > 0
        # Build rate: 50 Mbps excess = 312,500 B per 50 ms window.
        expected = 10 * 50e6 / 8 * 0.05 / CELL_BYTES
        assert depths[-1] == pytest.approx(expected, rel=0.01)

    def test_drains_after_overload(self):
        q = PortQueue(drain_mbps=100.0)
        q.advance(200e6 / 8 * 0.5, 0.5)
        assert q.depth_cells > 0
        for _ in range(40):
            q.advance(0.0, 0.5)
        assert q.depth_cells == 0

    def test_tail_drop_at_capacity(self):
        q = PortQueue(drain_mbps=10.0, capacity_cells=100)
        q.advance(1e9, 1.0)
        assert q.depth_cells == 100
        assert q.tail_dropped_bytes > 0
        assert q.utilization() == pytest.approx(1.0)

    def test_negative_inputs_rejected(self):
        q = PortQueue()
        with pytest.raises(ValueError):
            q.advance(-1, 0.1)
        with pytest.raises(ValueError):
            q.advance(1, -0.1)


class TestQueueModel:
    def test_ports_created_lazily(self):
        model = QueueModel()
        assert model.observe_depth(3) == 0
        model.end_window({3: 1e6}, 0.05)
        assert model.observe_depth(3) > 0

    def test_independent_ports(self):
        model = QueueModel(drain_mbps=100.0)
        model.end_window({1: 5e6, 2: 0.0}, 0.05)
        assert model.observe_depth(1) > 0
        assert model.observe_depth(2) == 0

    def test_history_recorded(self):
        model = QueueModel()
        model.end_window({0: 1e6}, 0.05)
        model.end_window({0: 1e6}, 0.05)
        assert len(model.depth_history) == 2


class TestECNUnderCongestion:
    """The Table-1 ECN program with a live queue: marks appear exactly
    when the bottleneck is oversubscribed."""

    def _run(self, rate_mbps: float):
        from repro.controlplane import Controller
        from repro.programs import PROGRAMS
        from repro.traffic import CampusTrace, ReplayEngine, TraceConfig, make_population

        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(PROGRAMS["ecn"].source)
        model = QueueModel(drain_mbps=100.0)
        trace = CampusTrace(
            make_population(seed=4, udp_fraction=0.0),
            TraceConfig(
                rate_mbps=rate_mbps,
                duration_s=2.0,
                samples_per_window=20,
                tcp_burst_probability=0.0,
            ),
        )
        engine = ReplayEngine(dataplane, queue_model=model)
        marked = total_ect = 0
        original = engine.dataplane.process

        def counting(packet, carried=None):
            nonlocal marked, total_ect
            result = original(packet, carried)
            if result.packet.has("ipv4"):
                ecn = result.packet.get_field("hdr.ipv4.ecn")
                if ecn == 3:
                    marked += 1
                if ecn in (1, 3):
                    total_ect += 1
            return result

        engine.dataplane.process = counting
        try:
            engine.run(self._ect_windows(trace))
        finally:
            engine.dataplane.process = original
        return marked, total_ect

    @staticmethod
    def _ect_windows(trace):
        for window in trace.windows():
            for packet in window.packets:
                packet.set_field("hdr.ipv4.ecn", 1)  # ECT(1)
            yield window

    def test_no_marks_under_light_load(self):
        marked, total = self._run(rate_mbps=60.0)
        assert total > 0
        assert marked == 0

    def test_marks_appear_under_congestion(self):
        marked, total = self._run(rate_mbps=200.0)
        assert marked > 0
        assert marked <= total
