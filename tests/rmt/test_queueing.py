"""Fluid queue model tests + the ECN program under live congestion."""

import pytest

from repro.rmt.queueing import CELL_BYTES, PortQueue, QueueModel


class TestPortQueue:
    def test_underload_stays_empty(self):
        q = PortQueue(drain_mbps=100.0)
        for _ in range(20):
            q.advance(50e6 / 8 * 0.05, 0.05)  # 50 Mbps offered
        assert q.depth_cells == 0

    def test_overload_builds_queue(self):
        q = PortQueue(drain_mbps=100.0, capacity_cells=100_000)
        depths = [q.advance(150e6 / 8 * 0.05, 0.05) for _ in range(10)]
        assert depths == sorted(depths)
        assert depths[-1] > 0
        # Build rate: 50 Mbps excess = 312,500 B per 50 ms window.
        expected = 10 * 50e6 / 8 * 0.05 / CELL_BYTES
        assert depths[-1] == pytest.approx(expected, rel=0.01)

    def test_drains_after_overload(self):
        q = PortQueue(drain_mbps=100.0)
        q.advance(200e6 / 8 * 0.5, 0.5)
        assert q.depth_cells > 0
        for _ in range(40):
            q.advance(0.0, 0.5)
        assert q.depth_cells == 0

    def test_tail_drop_at_capacity(self):
        q = PortQueue(drain_mbps=10.0, capacity_cells=100)
        q.advance(1e9, 1.0)
        assert q.depth_cells == 100
        assert q.tail_dropped_bytes > 0
        assert q.utilization() == pytest.approx(1.0)

    def test_negative_inputs_rejected(self):
        q = PortQueue()
        with pytest.raises(ValueError):
            q.advance(-1, 0.1)
        with pytest.raises(ValueError):
            q.advance(1, -0.1)


class TestQueueModel:
    def test_ports_created_lazily(self):
        model = QueueModel()
        assert model.observe_depth(3) == 0
        model.end_window({3: 1e6}, 0.05)
        assert model.observe_depth(3) > 0

    def test_independent_ports(self):
        model = QueueModel(drain_mbps=100.0)
        model.end_window({1: 5e6, 2: 0.0}, 0.05)
        assert model.observe_depth(1) > 0
        assert model.observe_depth(2) == 0

    def test_history_recorded(self):
        model = QueueModel()
        model.end_window({0: 1e6}, 0.05)
        model.end_window({0: 1e6}, 0.05)
        assert len(model.depth_history) == 2


class TestECNUnderCongestion:
    """The Table-1 ECN program with a live queue: marks appear exactly
    when the bottleneck is oversubscribed."""

    def _run(self, rate_mbps: float):
        from repro.controlplane import Controller
        from repro.programs import PROGRAMS
        from repro.traffic import CampusTrace, ReplayEngine, TraceConfig, make_population

        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(PROGRAMS["ecn"].source)
        model = QueueModel(drain_mbps=100.0)
        trace = CampusTrace(
            make_population(seed=4, udp_fraction=0.0),
            TraceConfig(
                rate_mbps=rate_mbps,
                duration_s=2.0,
                samples_per_window=20,
                tcp_burst_probability=0.0,
            ),
        )
        engine = ReplayEngine(dataplane, queue_model=model)
        marked = total_ect = 0
        original = engine.dataplane.process

        def counting(packet, carried=None):
            nonlocal marked, total_ect
            result = original(packet, carried)
            if result.packet.has("ipv4"):
                ecn = result.packet.get_field("hdr.ipv4.ecn")
                if ecn == 3:
                    marked += 1
                if ecn in (1, 3):
                    total_ect += 1
            return result

        engine.dataplane.process = counting
        try:
            engine.run(self._ect_windows(trace))
        finally:
            engine.dataplane.process = original
        return marked, total_ect

    @staticmethod
    def _ect_windows(trace):
        for window in trace.windows():
            for packet in window.packets:
                packet.set_field("hdr.ipv4.ecn", 1)  # ECT(1)
            yield window

    def test_no_marks_under_light_load(self):
        marked, total = self._run(rate_mbps=60.0)
        assert total > 0
        assert marked == 0

    def test_marks_appear_under_congestion(self):
        marked, total = self._run(rate_mbps=200.0)
        assert marked > 0
        assert marked <= total


class TestTrafficManager:
    """Verdict precedence, counter accounting, and PRE replication."""

    def _phv(self, **fields):
        from repro.rmt.packet import make_l2
        from repro.rmt.phv import PHV, PHVLayout

        layout = PHVLayout()
        for name in ("ud.drop_ctl", "ud.to_cpu", "ud.reflect", "ud.mcast_grp"):
            layout.declare(name, 16)
        packet = make_l2()
        packet.ingress_port = fields.pop("ingress_port", 7)
        phv = PHV(layout, packet)
        for name, value in fields.items():
            phv.set(name, value)
        return phv

    def test_default_is_forward_to_egress_port(self):
        from repro.rmt.pipeline import TrafficManager, Verdict

        tm = TrafficManager()
        phv = self._phv()
        phv.set("meta.egress_port", 12)
        assert tm.decide(phv) == (Verdict.FORWARD, 12)
        assert tm.forwarded == 1

    def test_drop_beats_everything(self):
        from repro.rmt.pipeline import TrafficManager, Verdict

        tm = TrafficManager()
        phv = self._phv(**{
            "ud.drop_ctl": 1, "ud.to_cpu": 1, "ud.reflect": 1, "ud.mcast_grp": 1,
        })
        verdict, port = tm.decide(phv)
        assert verdict is Verdict.DROP and port is None
        assert (tm.dropped, tm.to_cpu, tm.reflected, tm.multicast) == (1, 0, 0, 0)

    def test_to_cpu_beats_reflect_and_multicast(self):
        from repro.rmt.pipeline import CPU_PORT, TrafficManager, Verdict

        tm = TrafficManager()
        phv = self._phv(**{"ud.to_cpu": 1, "ud.reflect": 1, "ud.mcast_grp": 1})
        assert tm.decide(phv) == (Verdict.TO_CPU, CPU_PORT)
        assert (tm.to_cpu, tm.reflected, tm.multicast) == (1, 0, 0)

    def test_reflect_returns_ingress_port(self):
        from repro.rmt.pipeline import TrafficManager, Verdict

        tm = TrafficManager()
        phv = self._phv(ingress_port=33, **{"ud.reflect": 1})
        assert tm.decide(phv) == (Verdict.REFLECT, 33)
        assert tm.reflected == 1

    def test_multicast_requires_configured_group(self):
        from repro.rmt.pipeline import TrafficManager, UnknownMulticastGroupError

        tm = TrafficManager()
        phv = self._phv(**{"ud.mcast_grp": 5})
        with pytest.raises(UnknownMulticastGroupError):
            tm.decide(phv)
        assert tm.multicast == 0

    def test_multicast_counts_once_per_packet(self):
        from repro.rmt.pipeline import TrafficManager, Verdict

        tm = TrafficManager()
        tm.configure_multicast_group(5, [1, 2, 3])
        phv = self._phv(**{"ud.mcast_grp": 5})
        verdict, port = tm.decide(phv)
        assert verdict is Verdict.MULTICAST and port is None
        assert tm.multicast == 1  # one verdict, not one per replica

    def test_group_ids_start_at_one(self):
        from repro.rmt.pipeline import TrafficManager

        tm = TrafficManager()
        with pytest.raises(ValueError):
            tm.configure_multicast_group(0, [1])

    def test_reconfigure_overwrites_port_list(self):
        from repro.rmt.pipeline import TrafficManager

        tm = TrafficManager()
        tm.configure_multicast_group(2, [1, 2])
        tm.configure_multicast_group(2, [9])
        assert tm.multicast_groups[2] == (9,)

    def test_counter_accounting_over_mixed_stream(self):
        from repro.rmt.pipeline import TrafficManager, Verdict

        tm = TrafficManager()
        tm.configure_multicast_group(1, [4, 5])
        outcomes = []
        for flags in (
            {},
            {"ud.drop_ctl": 1},
            {"ud.to_cpu": 1},
            {"ud.reflect": 1},
            {"ud.mcast_grp": 1},
            {},
        ):
            outcomes.append(tm.decide(self._phv(**flags))[0])
        assert outcomes.count(Verdict.FORWARD) == tm.forwarded == 2
        assert tm.dropped == tm.to_cpu == tm.reflected == tm.multicast == 1

    def test_switch_multicast_replicates_to_all_group_ports(self):
        """End to end: a MULTICAST verdict fans out to the PRE port list."""
        from repro.controlplane import Controller
        from repro.programs import PROGRAMS
        from repro.rmt.packet import make_udp
        from repro.rmt.pipeline import Verdict

        ctl, dataplane = Controller.with_simulator()
        source = PROGRAMS["l2fwd"].source.replace(
            "FORWARD(1);", "MULTICAST(3);"
        )
        dataplane.configure_multicast_group(3, [10, 11, 12])
        ctl.deploy(source)
        pkt = make_udp(0x0A000001, 0x0A000002, 1111, 2222)
        pkt.headers["eth"]["dst"] = 0x1
        result = dataplane.process(pkt)
        assert result.verdict is Verdict.MULTICAST
        assert result.egress_ports == (10, 11, 12)
        assert dataplane.switch.tm.multicast == 1
