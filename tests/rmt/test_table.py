"""Match-action table tests."""

import pytest

from repro.rmt.packet import make_udp
from repro.rmt.phv import PHV, PHVLayout
from repro.rmt.table import (
    EntryNotFoundError,
    MatchActionTable,
    TableEntry,
    TableFullError,
    TernaryKey,
)


def make_phv(**ud_fields):
    layout = PHVLayout()
    for name, (width, _value) in ud_fields.items():
        layout.declare(name, width)
    phv = PHV(layout, make_udp(1, 2, 3, 4))
    phv.load_header("udp")
    phv.load_header("ipv4")
    for name, (_width, value) in ud_fields.items():
        phv.set(name, value)
    return phv


def entry(keys, action="act", priority=0, **data):
    return TableEntry(tuple(TernaryKey(*k) for k in keys), action, data, priority=priority)


class TestMatching:
    def test_exact_match(self):
        table = MatchActionTable("t", 10)
        table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="hit"))
        result = table.lookup(make_phv())
        assert result == ("hit", {})

    def test_ternary_mask(self):
        table = MatchActionTable("t", 10)
        table.insert(entry([("hdr.ipv4.src", 0x0A000000, 0xFF000000)], action="net"))
        phv = make_phv()
        phv.set("hdr.ipv4.src", 0x0A123456)
        assert table.lookup(phv) == ("net", {})

    def test_mask_zero_is_wildcard(self):
        table = MatchActionTable("t", 10)
        table.insert(entry([("hdr.udp.dst_port", 999, 0x0)], action="any"))
        assert table.lookup(make_phv()) == ("any", {})

    def test_miss_returns_none_without_default(self):
        table = MatchActionTable("t", 10)
        table.insert(entry([("hdr.udp.dst_port", 5, 0xFFFF)]))
        assert table.lookup(make_phv()) is None

    def test_miss_returns_default(self):
        table = MatchActionTable("t", 10, default_action="nop", default_action_data={"x": 1})
        assert table.lookup(make_phv()) == ("nop", {"x": 1})

    def test_priority_lower_wins(self):
        table = MatchActionTable("t", 10)
        table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="low", priority=5))
        table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="high", priority=1))
        assert table.lookup(make_phv())[0] == "high"

    def test_multi_key_all_must_match(self):
        table = MatchActionTable("t", 10)
        table.insert(
            entry(
                [("hdr.udp.dst_port", 4, 0xFFFF), ("hdr.udp.src_port", 99, 0xFFFF)],
                action="both",
            )
        )
        assert table.lookup(make_phv()) is None  # src_port is 3, not 99

    def test_missing_phv_field_never_matches(self):
        table = MatchActionTable("t", 10)
        table.insert(entry([("hdr.tcp.seq", 0, 0x0)], action="tcp_only"))
        assert table.lookup(make_phv()) is None


class TestManagement:
    def test_capacity_enforced(self):
        table = MatchActionTable("t", 2)
        table.insert(entry([("hdr.udp.dst_port", 1, 0xFFFF)]))
        table.insert(entry([("hdr.udp.dst_port", 2, 0xFFFF)]))
        with pytest.raises(TableFullError):
            table.insert(entry([("hdr.udp.dst_port", 3, 0xFFFF)]))

    def test_delete_frees_capacity(self):
        table = MatchActionTable("t", 1)
        handle = table.insert(entry([("hdr.udp.dst_port", 1, 0xFFFF)]))
        table.delete(handle)
        table.insert(entry([("hdr.udp.dst_port", 2, 0xFFFF)]))
        assert table.occupancy == 1

    def test_delete_unknown_handle(self):
        table = MatchActionTable("t", 4)
        with pytest.raises(EntryNotFoundError):
            table.delete(99999)

    def test_handles_unique(self):
        table = MatchActionTable("t", 4)
        h1 = table.insert(entry([("hdr.udp.dst_port", 1, 0xFFFF)]))
        h2 = table.insert(entry([("hdr.udp.dst_port", 2, 0xFFFF)]))
        assert h1 != h2

    def test_get_and_entries(self):
        table = MatchActionTable("t", 4)
        h = table.insert(entry([("hdr.udp.dst_port", 1, 0xFFFF)], action="a"))
        assert table.get(h).action == "a"
        assert len(table.entries()) == 1

    def test_utilization(self):
        table = MatchActionTable("t", 4)
        assert table.utilization() == 0.0
        table.insert(entry([("hdr.udp.dst_port", 1, 0xFFFF)]))
        assert table.utilization() == 0.25
        assert table.free_entries == 3

    def test_clear(self):
        table = MatchActionTable("t", 4)
        table.insert(entry([("hdr.udp.dst_port", 1, 0xFFFF)]))
        table.clear()
        assert table.occupancy == 0
        assert table.lookup(make_phv()) is None


class TestIndexedLookup:
    """The program-ID index must not change match semantics."""

    def _tables(self):
        plain = MatchActionTable("plain", 100)
        indexed = MatchActionTable("indexed", 100, index_field="ud.pid", index_mask=0xFFFF)
        return plain, indexed

    def test_indexed_equals_plain(self):
        plain, indexed = self._tables()
        for pid in range(1, 6):
            e = [("ud.pid", pid, 0xFFFF), ("hdr.udp.dst_port", 4, 0xFFFF)]
            plain.insert(entry(e, action=f"p{pid}"))
            indexed.insert(entry(e, action=f"p{pid}"))
        for pid in range(7):
            phv = make_phv(**{"ud.pid": (16, pid)})
            assert plain.lookup(phv) == indexed.lookup(phv)

    def test_partial_mask_entries_fall_back_to_scan(self):
        _, indexed = self._tables()
        indexed.insert(entry([("ud.pid", 0x10, 0xF0)], action="masked"))
        phv = make_phv(**{"ud.pid": (16, 0x15)})
        assert indexed.lookup(phv) == ("masked", {})

    def test_index_delete_consistency(self):
        _, indexed = self._tables()
        h = indexed.insert(entry([("ud.pid", 3, 0xFFFF)], action="x"))
        indexed.delete(h)
        phv = make_phv(**{"ud.pid": (16, 3)})
        assert indexed.lookup(phv) is None

    def test_lookup_counts(self):
        plain, _ = self._tables()
        plain.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)]))
        plain.lookup(make_phv())
        plain.lookup(make_phv())
        assert plain.lookups == 2
        assert plain.hits == 2


class TestTieBreaking:
    """Equal priorities resolve by insertion order (handle), exactly as
    TCAM entry ordering does — including across the indexed/unindexed
    boundary, where the pre-PR lookup wrongly preferred bucket entries."""

    def _indexed(self):
        return MatchActionTable("t", 100, index_field="ud.pid", index_mask=0xFFFF)

    def test_unindexed_inserted_first_wins_tie(self):
        table = self._indexed()
        # Partial mask: not bucketable, lands in the unindexed pool.
        table.insert(entry([("ud.pid", 0, 0x0)], action="older", priority=3))
        table.insert(entry([("ud.pid", 7, 0xFFFF)], action="newer", priority=3))
        phv = make_phv(**{"ud.pid": (16, 7)})
        assert table.lookup(phv)[0] == "older"
        assert table.lookup_reference(phv)[0] == "older"

    def test_indexed_inserted_first_wins_tie(self):
        table = self._indexed()
        table.insert(entry([("ud.pid", 7, 0xFFFF)], action="older", priority=3))
        table.insert(entry([("ud.pid", 0, 0x0)], action="newer", priority=3))
        phv = make_phv(**{"ud.pid": (16, 7)})
        assert table.lookup(phv)[0] == "older"
        assert table.lookup_reference(phv)[0] == "older"

    def test_priority_still_beats_insertion_order(self):
        table = self._indexed()
        table.insert(entry([("ud.pid", 0, 0x0)], action="older", priority=5))
        table.insert(entry([("ud.pid", 7, 0xFFFF)], action="newer", priority=2))
        phv = make_phv(**{"ud.pid": (16, 7)})
        assert table.lookup(phv)[0] == "newer"

    def test_tie_break_within_one_pool(self):
        table = MatchActionTable("t", 100)
        table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="first", priority=1))
        table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="second", priority=1))
        assert table.lookup(make_phv())[0] == "first"


class TestTombstones:
    """Deletes are O(1) amortized: entries are unlinked immediately and
    swept from the sorted pools in bulk."""

    def test_deleted_entry_never_matches(self):
        table = MatchActionTable("t", 100)
        h = table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="gone"))
        table.insert(
            entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="stays", priority=9)
        )
        table.delete(h)
        assert table.lookup(make_phv())[0] == "stays"

    def test_mass_delete_triggers_sweep(self):
        table = MatchActionTable("t", 200)
        handles = [
            table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action=f"a{i}"))
            for i in range(100)
        ]
        for h in handles[1:]:
            table.delete(h)
        # The sweep threshold (tombstones > max(16, live)) has tripped by
        # now; the pools must hold only the survivor.
        assert table._tombstones < 100
        assert table.occupancy == 1
        assert table.lookup(make_phv())[0] == "a0"

    def test_delete_then_reinsert_same_shape(self):
        table = MatchActionTable("t", 10)
        h = table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="v1"))
        table.delete(h)
        table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)], action="v2"))
        assert table.lookup(make_phv())[0] == "v2"

    def test_generation_bumps_on_every_structural_change(self):
        table = MatchActionTable("t", 10)
        g0 = table.generation
        h = table.insert(entry([("hdr.udp.dst_port", 4, 0xFFFF)]))
        g1 = table.generation
        table.delete(h)
        g2 = table.generation
        table.clear()
        assert g0 < g1 < g2 < table.generation
