"""PHV and layout tests."""

import pytest

from repro.rmt.packet import make_udp
from repro.rmt.phv import PHV, PHVLayout, PHVOverflowError


@pytest.fixture
def layout():
    lay = PHVLayout()
    lay.declare("ud.flag", 1)
    lay.declare("ud.word", 32)
    return lay


@pytest.fixture
def phv(layout):
    p = PHV(layout, make_udp(1, 2, 3, 4, size=100))
    p.load_header("eth")
    p.load_header("ipv4")
    p.load_header("udp")
    return p


class TestLayout:
    def test_declare_requires_ud_prefix(self, layout):
        with pytest.raises(ValueError):
            layout.declare("flag2", 1)

    def test_redeclare_same_width_ok(self, layout):
        layout.declare("ud.flag", 1)
        assert layout.user_fields["ud.flag"] == 1

    def test_redeclare_different_width_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.declare("ud.flag", 8)

    def test_budget_enforced(self):
        lay = PHVLayout(budget_bits=PHVLayout().header_bits() + 8)
        lay.declare("ud.small", 8)
        with pytest.raises(PHVOverflowError):
            lay.declare("ud.big", 1)

    def test_width_of_user_field(self, layout):
        assert layout.width_of("ud.word") == 32

    def test_width_of_header_field(self, layout):
        assert layout.width_of("hdr.ipv4.ttl") == 8

    def test_utilization_monotonic(self):
        lay = PHVLayout()
        before = lay.utilization()
        lay.declare("ud.x", 32)
        assert lay.utilization() > before


class TestPHV:
    def test_intrinsic_metadata_initialized(self, phv):
        assert phv.get("meta.pkt_len") == 100
        assert phv.get("meta.egress_port") == 0

    def test_user_fields_start_zero(self, phv):
        assert phv.get("ud.flag") == 0
        assert phv.get("ud.word") == 0

    def test_loaded_header_fields_visible(self, phv):
        assert phv.get("hdr.udp.dst_port") == 4
        assert phv.get("hdr.ipv4.src") == 1

    def test_set_masks_to_width(self, phv):
        phv.set("ud.flag", 0xFF)
        assert phv.get("ud.flag") == 1

    def test_set_header_field_masks(self, phv):
        phv.set("hdr.ipv4.ttl", 0x1FF)
        assert phv.get("hdr.ipv4.ttl") == 0xFF

    def test_get_unloaded_header_raises(self, layout):
        phv = PHV(layout, make_udp(1, 2, 3, 4))
        with pytest.raises(KeyError):
            phv.get("hdr.udp.dst_port")

    def test_set_unparsed_header_field_raises(self, phv):
        with pytest.raises(KeyError):
            phv.set("hdr.tcp.seq", 1)

    def test_has(self, phv):
        assert phv.has("hdr.udp.dst_port")
        assert not phv.has("hdr.tcp.seq")
        assert phv.has("ud.flag")

    def test_alias_access(self, layout):
        from repro.rmt.packet import make_cache

        phv = PHV(layout, make_cache(1, 2, op=1, key=5, value=77))
        phv.load_header("nc")
        assert phv.get("hdr.nc.value") == 77

    def test_deparse_writes_back(self, phv):
        phv.set("hdr.ipv4.ttl", 10)
        packet = phv.deparse()
        assert packet.get_field("hdr.ipv4.ttl") == 10

    def test_deparse_ignores_unloaded_headers(self, layout):
        packet = make_udp(1, 2, 3, 4)
        phv = PHV(layout, packet)
        phv.load_header("eth")
        out = phv.deparse()
        assert out.get_field("hdr.udp.dst_port") == 4  # untouched
