"""Switch / traffic-manager / recirculation tests."""

import pytest

from repro.rmt.packet import make_udp
from repro.rmt.parser import default_parse_machine
from repro.rmt.phv import PHV
from repro.rmt.pipeline import (
    CPU_PORT,
    RECIRC_PORT,
    RecirculationLimitError,
    Switch,
    SwitchConfig,
    Verdict,
)
from repro.rmt.stage import LogicalUnit


class SetField(LogicalUnit):
    """Test helper: set a PHV field when a predicate holds."""

    def __init__(self, field, value, when=None):
        self.field = field
        self.value = value
        self.when = when

    def apply(self, phv, stage):
        if self.when is None or self.when(phv):
            phv.set(self.field, self.value)


@pytest.fixture
def switch():
    return Switch(default_parse_machine())


def run(switch, packet=None):
    return switch.process_packet(packet or make_udp(1, 2, 3, 4))


class TestForwardingVerdicts:
    def test_default_forward_to_port_zero(self, switch):
        result = run(switch)
        assert result.verdict is Verdict.FORWARD
        assert result.egress_port == 0

    def test_forward_to_set_port(self, switch):
        switch.ingress.stages[1].attach_unit(SetField("meta.egress_port", 7))
        result = run(switch)
        assert result.egress_port == 7

    def test_drop(self, switch):
        switch.ingress.stages[1].attach_unit(SetField("ud.drop_ctl", 1))
        result = run(switch)
        assert result.verdict is Verdict.DROP
        assert result.egress_port is None
        assert switch.tm.dropped == 1

    def test_reflect_returns_to_ingress_port(self, switch):
        switch.ingress.stages[1].attach_unit(SetField("ud.reflect", 1))
        packet = make_udp(1, 2, 3, 4)
        packet.ingress_port = 9
        result = run(switch, packet)
        assert result.verdict is Verdict.REFLECT
        assert result.egress_port == 9

    def test_to_cpu(self, switch):
        switch.ingress.stages[1].attach_unit(SetField("ud.to_cpu", 1))
        result = run(switch)
        assert result.verdict is Verdict.TO_CPU
        assert result.egress_port == CPU_PORT

    def test_drop_beats_forward(self, switch):
        switch.ingress.stages[1].attach_unit(SetField("meta.egress_port", 7))
        switch.ingress.stages[2].attach_unit(SetField("ud.drop_ctl", 1))
        assert run(switch).verdict is Verdict.DROP

    def test_drop_skips_egress(self, switch):
        seen = []

        class Spy(LogicalUnit):
            def apply(self, phv, stage):
                seen.append(1)

        switch.ingress.stages[1].attach_unit(SetField("ud.drop_ctl", 1))
        switch.egress.stages[0].attach_unit(Spy())
        run(switch)
        assert not seen


class TestRecirculation:
    def _recirc_once(self, switch):
        """Flag recirculation only on the first pass."""
        switch.ingress.stages[11].attach_unit(
            SetField("ud.recirc_flag", 1, when=lambda phv: phv.get("ud.recirc_count") == 0)
        )

    def test_single_recirculation(self, switch):
        self._recirc_once(switch)
        result = run(switch)
        assert result.recirculations == 1
        assert result.verdict is Verdict.FORWARD

    def test_recirculated_packet_reenters_on_recirc_port(self, switch):
        self._recirc_once(switch)
        ports = []

        class PortSpy(LogicalUnit):
            def apply(self, phv, stage):
                ports.append(phv.get("meta.ingress_port"))

        switch.ingress.stages[1].attach_unit(PortSpy())
        run(switch)
        assert ports == [0, RECIRC_PORT]

    def test_state_carried_across_passes(self, switch):
        switch.layout.declare("ud.scratch", 32)
        switch.ingress.stages[1].attach_unit(
            SetField("ud.scratch", 42, when=lambda phv: phv.get("ud.recirc_count") == 0)
        )
        self._recirc_once(switch)
        captured = []

        class Capture(LogicalUnit):
            def apply(self, phv, stage):
                if phv.get("ud.recirc_count") == 1:
                    captured.append(phv.get("ud.scratch"))

        switch.ingress.stages[2].attach_unit(Capture())
        run(switch)
        assert captured == [42]

    def test_drop_deferred_until_final_pass(self, switch):
        """A drop intent latched before recirculation must not kill the
        packet until its final pass (the paper's DROP-then-continue)."""
        self._recirc_once(switch)
        switch.ingress.stages[1].attach_unit(
            SetField("ud.drop_ctl", 1, when=lambda phv: phv.get("ud.recirc_count") == 0)
        )
        result = run(switch)
        assert result.recirculations == 1
        assert result.verdict is Verdict.DROP

    def test_recirculation_limit(self):
        switch = Switch(default_parse_machine(), SwitchConfig(max_recirculations=2))
        switch.ingress.stages[11].attach_unit(SetField("ud.recirc_flag", 1))
        with pytest.raises(RecirculationLimitError):
            run(switch)

    def test_pipeline_pass_accounting(self, switch):
        self._recirc_once(switch)
        run(switch)
        assert switch.packets_in == 1
        assert switch.pipeline_passes == 2


class TestThroughputModel:
    def test_no_recirculation_no_loss(self, switch):
        assert switch.max_lossless_throughput_gbps(128, 0) == 100.0

    def test_one_iteration_small_packets_lose_about_ten_percent(self, switch):
        rate = switch.max_lossless_throughput_gbps(128, 1)
        assert 85.0 < rate < 93.0

    def test_one_iteration_large_packets_lose_about_one_percent(self, switch):
        rate = switch.max_lossless_throughput_gbps(1500, 1)
        assert 98.0 < rate < 99.5

    def test_loss_monotonic_in_iterations(self, switch):
        rates = [switch.max_lossless_throughput_gbps(512, k) for k in range(7)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_loss_monotonic_in_packet_size(self, switch):
        rates = [switch.max_lossless_throughput_gbps(s, 1) for s in (128, 256, 512, 1500)]
        assert rates == sorted(rates)

    def test_latency_grows_linearly(self, switch):
        l1 = switch.added_latency_ms(1)
        l6 = switch.added_latency_ms(6)
        assert l6 == pytest.approx(6 * l1)

    def test_latency_at_six_iterations_in_paper_band(self, switch):
        """Paper §6.3: 0.5-1.5 ms added at R=6 depending on packet size."""
        assert 0.4 < switch.added_latency_ms(6, 128) < 1.6
        assert 0.4 < switch.added_latency_ms(6, 1500) < 1.6
