"""Codegen tier unit tests: dispatch, generation invalidation (including
mid-batch races), live register visibility, miss routing from the flow
cache, counter coalescing, and stats plumbing."""

from repro.controlplane import Controller
from repro.dataplane.runpro import P4runproDataPlane
from repro.dataplane.tracing import capture_trace
from repro.programs import PROGRAMS
from repro.rmt.packet import (
    NC_READ,
    NC_WRITE,
    make_cache,
    make_l2,
    make_udp,
)
from repro.rmt.pipeline import Switch, Verdict


def deployed(source, *, flow_cache=False, codegen=True):
    """A dataplane with the flow cache OFF by default, so every packet
    exercises the codegen tier (or, with ``codegen=False``, the
    interpreter)."""
    dataplane = P4runproDataPlane(flow_cache=flow_cache, codegen=codegen)
    ctl = Controller(dataplane)
    ctl.deploy(source)
    return ctl, dataplane


def result_tuple(result):
    return (
        result.verdict,
        result.egress_port,
        result.recirculations,
        result.egress_ports,
        sorted(result.bridge.items()),
    )


class TestKnobs:
    def test_default_on(self):
        dataplane = P4runproDataPlane()
        assert dataplane.codegen.enabled
        assert dataplane.codegen is dataplane.switch.codegen

    def test_ctor_knob_disables(self):
        dataplane = P4runproDataPlane(codegen=False)
        assert not dataplane.codegen.enabled

    def test_switch_knob(self):
        machine = P4runproDataPlane().switch.parse_machine
        assert Switch(machine).codegen.enabled
        assert not Switch(machine, codegen=False).codegen.enabled

    def test_disabled_codegen_is_inert(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source, codegen=False)
        for _ in range(4):
            dataplane.process(make_l2(dst=0x1))
        stats = dataplane.codegen.stats()
        assert not stats["enabled"]
        assert stats["hits"] == 0 and stats["compiled"] == 0


class TestDispatch:
    def test_repeat_packets_run_generated_function(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        for _ in range(5):
            result = dataplane.process(make_l2(dst=0x1))
        assert result.verdict is Verdict.FORWARD and result.egress_port == 1
        stats = dataplane.codegen.stats()
        assert stats["hits"] == 5
        assert stats["compiled"] == 1  # one composition, compiled once
        assert stats["functions"] == 1

    def test_matches_interpreter(self):
        _, fast = deployed(PROGRAMS["l2fwd"].source)
        _, slow = deployed(PROGRAMS["l2fwd"].source, codegen=False)
        for dst in (0x1, 0x2, 0x999, 0x1, 0x2):
            a = fast.process(make_l2(dst=dst))
            b = slow.process(make_l2(dst=dst))
            assert result_tuple(a) == result_tuple(b)

    def test_compositions_get_distinct_functions(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1))
        dataplane.process(make_udp(0x0A000001, 2, 1000, 80))
        assert dataplane.codegen.stats()["compiled"] == 2


class TestInvalidation:
    def test_deploy_bumps_generation(self):
        ctl, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1))
        generation = dataplane.codegen.generation
        ctl.deploy(PROGRAMS["dqacc"].source)
        assert dataplane.codegen.generation > generation

    def test_revoke_flushes_stale_function(self):
        ctl, dataplane = deployed(PROGRAMS["l2fwd"].source)
        handle = ctl.running_programs()[0]
        assert dataplane.process(make_l2(dst=0x1)).egress_port == 1
        ctl.revoke(handle.program_id)
        result = dataplane.process(make_l2(dst=0x1))
        assert result.egress_port == 0  # default port: program gone
        assert dataplane.codegen.stats()["invalidations"] >= 1

    def _mid_batch(self, codegen, mutate_when, mutate):
        """Run a 4-packet read burst with ``mutate(ctl, handle)`` applied
        mid-batch (between packets ``mutate_when`` and ``mutate_when+1``,
        from inside the iterator ``process_batch`` consumes)."""
        ctl, dataplane = deployed(PROGRAMS["cache"].source, codegen=codegen)
        handle = ctl.running_programs()[0].program_id

        def stream():
            for i in range(4):
                if i == mutate_when:
                    mutate(ctl, handle)
                yield make_cache(i + 1, 2, op=NC_READ, key=0x8888)

        return dataplane, dataplane.process_many(stream())

    def _mid_batch_equivalence(self, mutate, *, invalidates):
        fast, got = self._mid_batch(True, 2, mutate)
        _slow, want = self._mid_batch(False, 2, mutate)
        assert [result_tuple(a) for a in got] == [
            result_tuple(b) for b in want
        ]
        for phys in range(1, 23):
            assert fast._array(phys).snapshot() == _slow._array(phys).snapshot()
        if invalidates:
            assert fast.codegen.stats()["invalidations"] >= 1

    def test_add_case_mid_batch_never_runs_stale_function(self):
        def mutate(ctl, handle):
            ctl.add_case(
                handle,
                [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 7, 0xFFFF)],
                template_case=0,
                loadi_values=[9],
            )

        self._mid_batch_equivalence(mutate, invalidates=True)

    def test_remove_case_mid_batch_never_runs_stale_function(self):
        def mutate(ctl, handle):
            case = ctl.add_case(
                handle,
                [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 7, 0xFFFF)],
                template_case=0,
                loadi_values=[9],
            )
            ctl.remove_case(handle, case)

        self._mid_batch_equivalence(mutate, invalidates=True)

    def test_write_mem_mid_batch_is_visible(self):
        """Register writes need no invalidation — generated code reads
        the arrays live — but the new value must appear immediately."""

        def mutate(ctl, handle):
            ctl.write_memory(handle, "mem1", 128, 77)

        self._mid_batch_equivalence(mutate, invalidates=False)

    def test_write_mem_does_not_invalidate(self):
        ctl, dataplane = deployed(PROGRAMS["cache"].source)
        handle = ctl.running_programs()[0].program_id
        dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        generation = dataplane.codegen.generation
        ctl.write_memory(handle, "mem1", 128, 55)
        assert dataplane.codegen.generation == generation
        served = dataplane.process(make_cache(2, 2, op=NC_READ, key=0x8888))
        assert served.packet.headers["nc"]["val"] == 55

    def test_dataplane_writes_visible_without_recompile(self):
        _, dataplane = deployed(PROGRAMS["cache"].source)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=42))
        compiled = dataplane.codegen.stats()["compiled"]
        served = dataplane.process(make_cache(2, 2, op=NC_READ, key=0x8888))
        assert served.packet.headers["nc"]["val"] == 42
        assert dataplane.codegen.stats()["compiled"] == compiled


class TestMissRouting:
    def test_negative_megaflow_entries_route_to_codegen(self):
        """Register-branching programs (hh thresholds on a live CMS
        count) are uncacheable for the megaflow tier; with codegen on,
        those misses run generated code instead of the interpreter."""
        from repro.rmt.packet import make_tcp

        _, dataplane = deployed(PROGRAMS["hh"].source, flow_cache=True)
        packets = [
            make_tcp(0x0A000001, 0x0B000001, 999, 80) for _ in range(8)
        ]
        a = [result_tuple(r) for r in dataplane.process_many(packets)]
        assert dataplane.flow_cache.stats()["uncacheable"] > 0
        assert dataplane.codegen.stats()["hits"] > 0

        _, reference = deployed(
            PROGRAMS["hh"].source, flow_cache=False, codegen=False
        )
        b = [result_tuple(r) for r in reference.process_many(packets)]
        assert a == b


class TestCoalescing:
    """Straight-line bodies defer constant counter bumps to batch end
    (or apply them immediately outside a batch) — either way the final
    counts must be bit-identical to the interpreter's."""

    def _counters(self, dataplane):
        return {
            name: (t.lookups, t.hits) for name, t in dataplane.tables.items()
        } | {
            "packets_in": dataplane.switch.packets_in,
            "pipeline_passes": dataplane.switch.pipeline_passes,
            "forwarded": dataplane.switch.tm.forwarded,
        }

    def test_single_packet_counters_apply_immediately(self):
        _, fast = deployed(PROGRAMS["l2fwd"].source)
        _, slow = deployed(PROGRAMS["l2fwd"].source, codegen=False)
        for dataplane in (fast, slow):
            dataplane.process(make_l2(dst=0x1))  # no batch: no end_batch
        assert self._counters(fast) == self._counters(slow)

    def test_batch_counters_flush_at_end(self):
        _, fast = deployed(PROGRAMS["l2fwd"].source)
        _, slow = deployed(PROGRAMS["l2fwd"].source, codegen=False)
        packets = [make_l2(dst=(i % 3)) for i in range(24)]
        for dataplane in (fast, slow):
            dataplane.process_many([p.clone() for p in packets])
        assert self._counters(fast) == self._counters(slow)

    def test_flush_is_idempotent(self):
        _, fast = deployed(PROGRAMS["l2fwd"].source)
        fast.process_many([make_l2(dst=0x1) for _ in range(8)])
        before = self._counters(fast)
        fast.codegen.end_batch()  # second flush: cells already drained
        assert self._counters(fast) == before


class TestStatsPlumbing:
    def test_dataplane_stats_includes_codegen(self):
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1))
        stats = dataplane.stats()
        assert stats["codegen"]["hits"] == 1
        assert set(stats["codegen"]) >= {
            "enabled",
            "functions",
            "compiled",
            "hits",
            "invalidations",
            "fallbacks",
            "generation",
        }

    def test_tracing_falls_back_with_taxonomy_entry(self):
        """Tracing needs real execution: the dispatcher refuses and logs
        the reason, mirroring the flow cache's bypass."""
        _, dataplane = deployed(PROGRAMS["l2fwd"].source)
        dataplane.process(make_l2(dst=0x1))
        with capture_trace() as trace:
            dataplane.process(make_l2(dst=0x1))
        assert len(trace.steps) > 0
        # capture_trace engages the flow-cache recorder bypass, which the
        # dispatcher checks first — either label proves the refusal.
        fallbacks = dataplane.codegen.stats()["fallbacks"]
        assert sum(fallbacks.values()) == 1
        assert set(fallbacks) <= {"recording", "tracing"}
