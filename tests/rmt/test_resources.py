"""Resource / latency / power model tests (Table 2, Fig. 10)."""

import pytest

from repro.rmt import resources
from repro.rmt.resources import ChipBudget, ResourceUsage


class TestUsageArithmetic:
    def test_addition(self):
        a = ResourceUsage(sram_blocks=1, salus=2, active_stages=3)
        b = ResourceUsage(sram_blocks=4, salus=5, active_stages=6)
        c = a + b
        assert (c.sram_blocks, c.salus, c.active_stages) == (5, 7, 9)

    def test_chip_budget_totals(self):
        budget = ChipBudget()
        assert budget.total("salus") == 4 * 12 * 2
        assert budget.total("phv_bits") == 4096

    def test_utilization_report_keys(self):
        report = resources.utilization_report(ResourceUsage())
        assert set(report) == {
            "sram_blocks",
            "tcam_blocks",
            "vliw_slots",
            "salus",
            "hash_units",
            "ltids",
            "phv_bits",
        }

    def test_utilization_percentage(self):
        usage = ResourceUsage(salus=48)
        report = resources.utilization_report(usage)
        assert report["salus"] == pytest.approx(50.0)


class TestLatency:
    def test_full_pipelines_match_table2(self):
        """12 active stages per gress gives the paper's 306/316/622."""
        assert resources.latency_cycles(12, 12) == (306, 316, 622)

    def test_empty_pipeline(self):
        ingress, egress, total = resources.latency_cycles(0, 0)
        assert ingress == resources.INGRESS_BASE_CYCLES
        assert egress == resources.EGRESS_BASE_CYCLES
        assert total == ingress + egress

    def test_monotonic_in_stages(self):
        totals = [resources.latency_cycles(k, k)[2] for k in range(13)]
        assert totals == sorted(totals)


class TestPower:
    def test_zero_usage_zero_power(self):
        assert resources.power_watts(ResourceUsage()) == 0.0

    def test_base_power_requires_active_stage(self):
        idle = resources.power_watts(ResourceUsage(salus=1, active_stages=0))
        active = resources.power_watts(ResourceUsage(salus=1, active_stages=1))
        assert active > idle

    def test_traffic_limit_under_budget(self):
        assert resources.traffic_limit_load(30.0) == 1.0

    def test_traffic_limit_over_budget(self):
        assert resources.traffic_limit_load(43.7) == pytest.approx(40.0 / 43.7)

    def test_traffic_limit_paper_example(self):
        """40.74 W -> ~98% load (Table 2, P4runpro row)."""
        assert resources.traffic_limit_load(40.74) == pytest.approx(0.982, abs=0.01)


class TestSwitchAccounting:
    @pytest.fixture(scope="class")
    def dataplane(self):
        from repro.dataplane.runpro import P4runproDataPlane

        return P4runproDataPlane()

    def test_p4runpro_latency_matches_paper(self, dataplane):
        assert resources.switch_latency_cycles(dataplane.switch) == (306, 316, 622)

    def test_p4runpro_power_in_paper_band(self, dataplane):
        ingress, egress, total = resources.switch_power_watts(dataplane.switch)
        assert 17.0 < ingress < 22.0  # paper: 19.32
        assert 19.0 < egress < 24.0  # paper: 21.42
        assert 38.0 < total < 43.0  # paper: 40.74

    def test_p4runpro_vliw_near_saturation(self, dataplane):
        usage = resources.account_switch(dataplane.switch)
        report = resources.utilization_report(usage)
        assert report["vliw_slots"] > 80.0  # "uses almost all the VLIW"

    def test_p4runpro_sram_light(self, dataplane):
        usage = resources.account_switch(dataplane.switch)
        report = resources.utilization_report(usage)
        assert report["sram_blocks"] < 40.0  # "does not heavily rely on SRAM"

    def test_salu_count_is_one_per_rpb(self, dataplane):
        usage = resources.account_switch(dataplane.switch)
        assert usage.salus == 22

    def test_account_gress_split(self, dataplane):
        ingress = resources.account_gress(dataplane.switch, "ingress")
        egress = resources.account_gress(dataplane.switch, "egress")
        assert ingress.salus == 10
        assert egress.salus == 12
        assert ingress.active_stages == 12  # init + 10 RPBs + recirc
        assert egress.active_stages == 12
