"""Traffic-manager multicast tests at the RMT layer."""

import pytest

from repro.rmt.packet import make_udp
from repro.rmt.parser import default_parse_machine
from repro.rmt.pipeline import (
    Switch,
    UnknownMulticastGroupError,
    Verdict,
)
from repro.rmt.stage import LogicalUnit


class SetGroup(LogicalUnit):
    def __init__(self, group):
        self.group = group

    def apply(self, phv, stage):
        phv.set("ud.mcast_grp", self.group)


@pytest.fixture
def switch():
    return Switch(default_parse_machine())


class TestMulticastVerdict:
    def test_replication_ports_reported(self, switch):
        switch.tm.configure_multicast_group(5, [10, 20, 30])
        switch.ingress.stages[1].attach_unit(SetGroup(5))
        result = switch.process_packet(make_udp(1, 2, 3, 4))
        assert result.verdict is Verdict.MULTICAST
        assert result.egress_ports == (10, 20, 30)
        assert switch.tm.multicast == 1

    def test_unknown_group_raises(self, switch):
        switch.ingress.stages[1].attach_unit(SetGroup(9))
        with pytest.raises(UnknownMulticastGroupError):
            switch.process_packet(make_udp(1, 2, 3, 4))

    def test_group_zero_is_unicast(self, switch):
        """Group 0 means 'no multicast' — the PHV default."""
        result = switch.process_packet(make_udp(1, 2, 3, 4))
        assert result.verdict is Verdict.FORWARD
        assert result.egress_ports == ()

    def test_group_id_validation(self, switch):
        with pytest.raises(ValueError):
            switch.tm.configure_multicast_group(0, [1])

    def test_reconfiguration(self, switch):
        switch.tm.configure_multicast_group(5, [1])
        switch.tm.configure_multicast_group(5, [2, 3])
        switch.ingress.stages[1].attach_unit(SetGroup(5))
        result = switch.process_packet(make_udp(1, 2, 3, 4))
        assert result.egress_ports == (2, 3)

    def test_drop_beats_multicast(self, switch):
        class AlsoDrop(LogicalUnit):
            def apply(self, phv, stage):
                phv.set("ud.drop_ctl", 1)

        switch.tm.configure_multicast_group(5, [1])
        switch.ingress.stages[1].attach_unit(SetGroup(5))
        switch.ingress.stages[2].attach_unit(AlsoDrop())
        result = switch.process_packet(make_udp(1, 2, 3, 4))
        assert result.verdict is Verdict.DROP

    def test_multicast_group_carried_across_recirculation(self, switch):
        """A MULTICAST latched before recirculation fires on the final pass."""
        switch.tm.configure_multicast_group(5, [7])
        switch.ingress.stages[1].attach_unit(SetGroup(5))

        class RecircOnce(LogicalUnit):
            def apply(self, phv, stage):
                if phv.get("ud.recirc_count") == 0:
                    phv.set("ud.recirc_flag", 1)

        switch.ingress.stages[11].attach_unit(RecircOnce())
        result = switch.process_packet(make_udp(1, 2, 3, 4))
        assert result.recirculations == 1
        assert result.verdict is Verdict.MULTICAST
        assert result.egress_ports == (7,)
