"""Field registry tests."""

import pytest

from repro.rmt import fields


class TestLookup:
    def test_known_header_field(self):
        spec = fields.lookup("hdr.ipv4.dst")
        assert spec.width == 32
        assert spec.max_value == 0xFFFFFFFF
        assert spec.header == "ipv4"

    def test_known_metadata_field(self):
        spec = fields.lookup("meta.ingress_port")
        assert spec.width == 9
        assert spec.header is None

    def test_unknown_field_raises(self):
        with pytest.raises(fields.UnknownFieldError):
            fields.lookup("hdr.bogus.field")

    def test_alias_resolves_to_canonical(self):
        assert fields.lookup("hdr.nc.value") is fields.lookup("hdr.nc.val")

    def test_canonical_name_identity_for_non_alias(self):
        assert fields.canonical_name("hdr.ipv4.src") == "hdr.ipv4.src"

    def test_is_known(self):
        assert fields.is_known("hdr.udp.dst_port")
        assert fields.is_known("hdr.nc.value")  # via alias
        assert not fields.is_known("hdr.udp.nonexistent")


class TestWidths:
    @pytest.mark.parametrize(
        "name,width",
        [
            ("hdr.eth.dst", 48),
            ("hdr.eth.etype", 16),
            ("hdr.ipv4.ecn", 2),
            ("hdr.ipv4.proto", 8),
            ("hdr.tcp.seq", 32),
            ("hdr.udp.dst_port", 16),
            ("hdr.nc.op", 8),
            ("hdr.nc.key1", 32),
            ("hdr.calc.result", 32),
            ("meta.queue_depth", 19),
        ],
    )
    def test_field_width(self, name, width):
        assert fields.lookup(name).width == width

    def test_header_size_bytes(self):
        assert fields.header_size_bytes("eth") == 14
        assert fields.header_size_bytes("ipv4") == 20
        assert fields.header_size_bytes("udp") == 6

    def test_all_fields_returns_copy(self):
        registry = fields.all_fields()
        registry["hdr.fake.x"] = None
        assert not fields.is_known("hdr.fake.x")


class TestRegisterHeader:
    def test_register_new_header(self):
        fields.register_header("testhdr", {"a": 8, "b": 16})
        assert fields.lookup("hdr.testhdr.a").width == 8
        assert fields.lookup("hdr.testhdr.b").width == 16

    def test_reregister_same_layout_is_noop(self):
        fields.register_header("testhdr2", {"x": 4})
        fields.register_header("testhdr2", {"x": 4})
        assert fields.lookup("hdr.testhdr2.x").width == 4

    def test_reregister_different_layout_rejected(self):
        fields.register_header("testhdr3", {"x": 4})
        with pytest.raises(ValueError):
            fields.register_header("testhdr3", {"x": 8})
