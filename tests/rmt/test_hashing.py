"""CRC hash unit tests against published check values."""

import pytest

from repro.rmt.hashing import CRC_CATALOG, CRCParams, HashUnit, crc

CHECK_INPUT = b"123456789"

#: Rocksoft "check" values for the implemented variants.
CHECK_VALUES = {
    "crc_16_buypass": 0xFEE8,
    "crc_16_mcrf4xx": 0x6F91,
    "crc_aug_ccitt": 0xE5CC,
    "crc_16_dds_110": 0x9ECF,
    "crc_32": 0xCBF43926,
}


class TestCRCCheckValues:
    @pytest.mark.parametrize("name,expected", sorted(CHECK_VALUES.items()))
    def test_published_check_value(self, name, expected):
        assert crc(CHECK_INPUT, CRC_CATALOG[name]) == expected

    def test_empty_input(self):
        # CRC of nothing is init (+xorout), reflected appropriately.
        params = CRC_CATALOG["crc_16_buypass"]
        assert crc(b"", params) == 0

    def test_deterministic(self):
        params = CRC_CATALOG["crc_aug_ccitt"]
        assert crc(b"hello", params) == crc(b"hello", params)

    def test_single_bit_change_changes_output(self):
        params = CRC_CATALOG["crc_16_mcrf4xx"]
        assert crc(b"hello", params) != crc(b"hellp", params)


class TestHashUnit:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            HashUnit("crc_bogus")

    def test_output_width(self):
        assert HashUnit("crc_16_buypass").output_width == 16
        assert HashUnit("crc_32").output_width == 32

    def test_output_fits_width(self):
        unit = HashUnit("crc_16_dds_110")
        for value in range(0, 1000, 37):
            assert 0 <= unit.hash_values((value,)) <= 0xFFFF

    def test_five_tuple_hash_stable(self):
        unit = HashUnit("crc_16_buypass")
        tup = (0x0A000001, 0x0A000002, 17, 1234, 80)
        assert unit.hash_five_tuple(tup) == unit.hash_five_tuple(tup)

    def test_five_tuple_order_sensitivity(self):
        unit = HashUnit("crc_16_buypass")
        a = unit.hash_five_tuple((1, 2, 17, 10, 20))
        b = unit.hash_five_tuple((2, 1, 17, 20, 10))
        assert a != b  # not symmetric

    def test_variants_differ(self):
        tup = (0x0A000001, 0x0A000002, 6, 555, 443)
        outputs = {
            name: HashUnit(name).hash_five_tuple(tup)
            for name in ("crc_16_buypass", "crc_16_mcrf4xx", "crc_aug_ccitt", "crc_16_dds_110")
        }
        assert len(set(outputs.values())) >= 3  # independent-ish functions

    def test_widths_argument_changes_serialization(self):
        # crc_16_mcrf4xx has a nonzero init, so leading zero bytes matter.
        unit = HashUnit("crc_16_mcrf4xx")
        assert unit.hash_values((1,), (8,)) != unit.hash_values((1,), (32,))

    def test_truncation_uniformity(self):
        """Masking a 16-bit CRC to 8 bits spreads values across all 256
        buckets reasonably evenly — the property the paper's mask-based
        address translation relies on (§6.4)."""
        unit = HashUnit("crc_16_buypass")
        buckets = [0] * 256
        for value in range(4096):
            buckets[unit.hash_values((value,)) & 0xFF] += 1
        nonempty = sum(1 for b in buckets if b)
        assert nonempty > 240
        assert max(buckets) < 4096 / 256 * 3
