"""Packet model tests."""

import pytest

from repro.rmt import packet as pkt


class TestConstructors:
    def test_l2_packet_has_eth_only(self):
        p = pkt.make_l2()
        assert p.has("eth")
        assert not p.has("ipv4")

    def test_ipv4_packet_sets_etype(self):
        p = pkt.make_ipv4(0x0A000001, 0x0A000002)
        assert p.headers["eth"]["etype"] == pkt.ETYPE_IPV4
        assert p.get_field("hdr.ipv4.src") == 0x0A000001

    def test_tcp_packet(self):
        p = pkt.make_tcp(1, 2, 1000, 80)
        assert p.get_field("hdr.ipv4.proto") == pkt.PROTO_TCP
        assert p.get_field("hdr.tcp.dst_port") == 80

    def test_udp_packet(self):
        p = pkt.make_udp(1, 2, 1000, 53)
        assert p.get_field("hdr.ipv4.proto") == pkt.PROTO_UDP
        assert p.get_field("hdr.udp.dst_port") == 53

    def test_cache_packet_key_split(self):
        p = pkt.make_cache(1, 2, op=pkt.NC_READ, key=0x1234_5678_9ABC_DEF0)
        assert p.get_field("hdr.nc.key1") == 0x12345678
        assert p.get_field("hdr.nc.key2") == 0x9ABCDEF0
        assert p.get_field("hdr.nc.op") == pkt.NC_READ

    def test_cache_packet_default_port(self):
        p = pkt.make_cache(1, 2, op=1, key=5)
        assert p.get_field("hdr.udp.dst_port") == 7777

    def test_calc_packet(self):
        p = pkt.make_calc(1, 2, op=3, a=7, b=9)
        assert p.get_field("hdr.calc.op") == 3
        assert p.get_field("hdr.calc.a") == 7
        assert p.get_field("hdr.calc.b") == 9


class TestFieldAccess:
    def test_set_field_masks_to_width(self):
        p = pkt.make_ipv4(1, 2)
        p.set_field("hdr.ipv4.ttl", 0x1FF)  # 8-bit field
        assert p.get_field("hdr.ipv4.ttl") == 0xFF

    def test_get_missing_field_raises(self):
        p = pkt.make_l2()
        with pytest.raises(KeyError):
            p.get_field("hdr.ipv4.src")

    def test_set_missing_header_raises(self):
        p = pkt.make_l2()
        with pytest.raises(KeyError):
            p.set_field("hdr.ipv4.src", 1)

    def test_alias_field_access(self):
        p = pkt.make_cache(1, 2, op=1, key=5, value=99)
        assert p.get_field("hdr.nc.value") == 99
        p.set_field("hdr.nc.value", 100)
        assert p.get_field("hdr.nc.val") == 100


class TestFiveTuple:
    def test_udp_five_tuple(self):
        p = pkt.make_udp(10, 20, 1000, 2000)
        assert p.five_tuple() == (10, 20, pkt.PROTO_UDP, 1000, 2000)

    def test_tcp_five_tuple(self):
        p = pkt.make_tcp(10, 20, 1000, 2000)
        assert p.five_tuple() == (10, 20, pkt.PROTO_TCP, 1000, 2000)

    def test_l2_five_tuple_zeros(self):
        assert pkt.make_l2().five_tuple() == (0, 0, 0, 0, 0)


class TestClone:
    def test_clone_is_deep(self):
        p = pkt.make_udp(1, 2, 3, 4)
        q = p.clone()
        q.set_field("hdr.ipv4.src", 999)
        assert p.get_field("hdr.ipv4.src") == 1

    def test_clone_preserves_metadata(self):
        p = pkt.make_udp(1, 2, 3, 4, size=200)
        p.ts = 1.5
        p.ingress_port = 7
        q = p.clone()
        assert (q.size, q.ts, q.ingress_port) == (200, 1.5, 7)

    def test_header_bytes(self):
        p = pkt.make_udp(1, 2, 3, 4)
        assert p.header_bytes() == 14 + 20 + 6
