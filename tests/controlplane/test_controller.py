"""Controller API tests against the simulated data plane."""

import pytest

from repro.controlplane import Controller
from repro.lang.errors import AllocationError, P4runproError
from repro.programs.library import CACHE_SOURCE, LB_SOURCE


@pytest.fixture
def ctl():
    controller, dataplane = Controller.with_simulator()
    controller.dataplane = dataplane  # keep for assertions
    return controller


class TestDeploy:
    def test_deploy_returns_stats(self, ctl):
        handle = ctl.deploy(CACHE_SOURCE)
        stats = handle.stats
        assert stats.program == "cache"
        assert stats.entries == 17
        assert stats.update_ms > 0
        assert stats.total_ms == pytest.approx(
            stats.parse_ms + stats.allocation_ms + stats.update_ms
        )

    def test_deploy_installs_entries_in_simulator(self, ctl):
        ctl.deploy(CACHE_SOURCE)
        assert ctl.dataplane.tables["init"].occupancy == 1

    def test_deploy_failure_leaves_no_residue(self, ctl):
        util_before = ctl.utilization()
        bad = "@ big 131072\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMREAD(big); }"
        with pytest.raises(AllocationError):
            ctl.deploy(bad)
        assert ctl.utilization() == util_before
        assert ctl.running_programs() == []

    def test_compile_without_deploy(self, ctl):
        compiled = ctl.compile(CACHE_SOURCE)
        assert compiled.name == "cache"
        assert ctl.running_programs() == []

    def test_two_programs_coexist(self, ctl):
        ctl.deploy(CACHE_SOURCE)
        ctl.deploy(LB_SOURCE)
        assert {r.name for r in ctl.running_programs()} == {"cache", "lb"}


class TestRevoke:
    def test_revoke_by_handle(self, ctl):
        handle = ctl.deploy(CACHE_SOURCE)
        delay = ctl.revoke(handle)
        assert delay > 0
        assert ctl.running_programs() == []

    def test_revoke_by_id(self, ctl):
        handle = ctl.deploy(CACHE_SOURCE)
        ctl.revoke(handle.program_id)
        assert ctl.running_programs() == []

    def test_revoke_clears_simulator_entries(self, ctl):
        handle = ctl.deploy(CACHE_SOURCE)
        ctl.revoke(handle)
        assert ctl.dataplane.tables["init"].occupancy == 0
        for name, table in ctl.dataplane.tables.items():
            assert table.occupancy == 0, name

    def test_other_program_survives_revoke(self, ctl):
        cache = ctl.deploy(CACHE_SOURCE)
        ctl.deploy(LB_SOURCE)
        ctl.revoke(cache)
        assert [r.name for r in ctl.running_programs()] == ["lb"]
        assert ctl.dataplane.tables["init"].occupancy == 1


class TestMemoryAccess:
    def test_write_then_read(self, ctl):
        handle = ctl.deploy(CACHE_SOURCE)
        ctl.write_memory(handle, "mem1", 128, 0xABCD)
        assert ctl.read_memory(handle, "mem1", 128) == 0xABCD

    def test_virtual_address_translation(self, ctl):
        """Two programs' virtual address 0 must hit distinct buckets."""
        a = ctl.deploy(CACHE_SOURCE)
        b = ctl.deploy(CACHE_SOURCE)
        ctl.write_memory(a, "mem1", 0, 111)
        ctl.write_memory(b, "mem1", 0, 222)
        assert ctl.read_memory(a, "mem1", 0) == 111
        assert ctl.read_memory(b, "mem1", 0) == 222

    def test_out_of_range_vaddr(self, ctl):
        handle = ctl.deploy(CACHE_SOURCE)
        with pytest.raises(P4runproError, match="out of range"):
            ctl.read_memory(handle, "mem1", 256)

    def test_unknown_memory(self, ctl):
        handle = ctl.deploy(CACHE_SOURCE)
        with pytest.raises(P4runproError, match="no memory"):
            ctl.read_memory(handle, "ghost", 0)

    def test_memory_zeroed_after_revoke_and_reuse(self, ctl):
        a = ctl.deploy(CACHE_SOURCE)
        ctl.write_memory(a, "mem1", 5, 999)
        ctl.revoke(a)
        b = ctl.deploy(CACHE_SOURCE)
        assert ctl.read_memory(b, "mem1", 5) == 0


class TestMonitoring:
    def test_utilization_keys(self, ctl):
        util = ctl.utilization()
        assert set(util) == {"memory", "entries"}

    def test_clock_advances_with_operations(self, ctl):
        t0 = ctl.clock.now
        handle = ctl.deploy(CACHE_SOURCE)
        t1 = ctl.clock.now
        ctl.revoke(handle)
        assert t1 > t0
        assert ctl.clock.now > t1
