"""Filter-overlap detection tests."""

import pytest

from repro.controlplane import Controller
from repro.controlplane.overlap import filters_overlap
from repro.lang.ast import Filter
from repro.programs import PROGRAMS


def flt(field, value, mask):
    return Filter(field, value, mask)


class TestFiltersOverlap:
    def test_same_exact_filter(self):
        a = [flt("hdr.udp.dst_port", 7777, 0xFFFF)]
        assert filters_overlap(a, a)

    def test_disjoint_exact_values(self):
        a = [flt("hdr.udp.dst_port", 7777, 0xFFFF)]
        b = [flt("hdr.udp.dst_port", 8888, 0xFFFF)]
        assert not filters_overlap(a, b)

    def test_catch_all_overlaps_everything(self):
        a = [flt("hdr.ipv4.ttl", 0, 0x0)]
        b = [flt("hdr.udp.dst_port", 7777, 0xFFFF)]
        assert filters_overlap(a, b)
        assert filters_overlap(b, a)

    def test_different_fields_overlap(self):
        a = [flt("hdr.ipv4.src", 0x0A000000, 0xFFFF0000)]
        b = [flt("hdr.ipv4.dst", 0x0B000000, 0xFFFF0000)]
        assert filters_overlap(a, b)

    def test_nested_prefixes_overlap(self):
        a = [flt("hdr.ipv4.dst", 0x0A000000, 0xFF000000)]  # 10/8
        b = [flt("hdr.ipv4.dst", 0x0A010000, 0xFFFF0000)]  # 10.1/16
        assert filters_overlap(a, b)

    def test_sibling_prefixes_disjoint(self):
        a = [flt("hdr.ipv4.dst", 0x0A000000, 0xFFFF0000)]  # 10.0/16
        b = [flt("hdr.ipv4.dst", 0x0A010000, 0xFFFF0000)]  # 10.1/16
        assert not filters_overlap(a, b)

    def test_partial_mask_agreement(self):
        # masks overlap on the low byte only; values agree there
        a = [flt("hdr.udp.dst_port", 0x1234, 0x00FF)]
        b = [flt("hdr.udp.dst_port", 0x5634, 0xFFFF)]
        assert filters_overlap(a, b)

    def test_partial_mask_conflict(self):
        a = [flt("hdr.udp.dst_port", 0x1234, 0x00FF)]
        b = [flt("hdr.udp.dst_port", 0x5635, 0xFFFF)]
        assert not filters_overlap(a, b)

    def test_alias_fields_compared(self):
        a = [flt("hdr.nc.value", 5, 0xFF)]
        b = [flt("hdr.nc.val", 6, 0xFF)]
        assert not filters_overlap(a, b)

    def test_multi_filter_conjunction(self):
        a = [
            flt("hdr.udp.dst_port", 7777, 0xFFFF),
            flt("hdr.ipv4.src", 0x0A000000, 0xFFFF0000),
        ]
        b = [
            flt("hdr.udp.dst_port", 7777, 0xFFFF),
            flt("hdr.ipv4.src", 0x0B000000, 0xFFFF0000),
        ]
        assert not filters_overlap(a, b)


class TestDeployWarnings:
    def test_overlapping_deploy_warns(self):
        ctl, _ = Controller.with_simulator()
        ctl.deploy(PROGRAMS["cache"].source)
        nc = ctl.deploy(PROGRAMS["nc"].source)  # same UDP:7777 filter
        assert len(nc.stats.overlap_warnings) == 1
        warning = nc.stats.overlap_warnings[0]
        assert warning.earlier_name == "cache"
        assert "first match" in str(warning)

    def test_disjoint_deploy_no_warning(self):
        ctl, _ = Controller.with_simulator()
        ctl.deploy(PROGRAMS["cache"].source)  # UDP:7777
        calc = ctl.deploy(PROGRAMS["calc"].source)  # UDP:8888
        assert calc.stats.overlap_warnings == []

    def test_first_deploy_never_warns(self):
        ctl, _ = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["cache"].source)
        assert handle.stats.overlap_warnings == []

    def test_catch_all_programs_warn_on_everything(self):
        ctl, _ = Controller.with_simulator()
        ctl.deploy(PROGRAMS["firewall"].source)  # all IPv4
        cms = ctl.deploy(PROGRAMS["cms"].source)  # all IPv4 too
        assert len(cms.stats.overlap_warnings) == 1

    def test_warnings_cleared_after_revoke(self):
        ctl, _ = Controller.with_simulator()
        first = ctl.deploy(PROGRAMS["cache"].source)
        ctl.revoke(first)
        again = ctl.deploy(PROGRAMS["nc"].source)
        assert again.stats.overlap_warnings == []
