"""Timing-model tests (update + conventional workflow)."""

import pytest

from repro.controlplane.timing import (
    ConventionalP4Timing,
    SimClock,
    UpdateTimingModel,
)


class TestUpdateTimingModel:
    def test_install_linear_in_entries(self):
        timing = UpdateTimingModel()
        base = timing.install_delay_ms(0)
        assert timing.install_delay_ms(100) == pytest.approx(
            base + 100 * timing.entry_insert_ms
        )

    def test_delete_cheaper_than_insert(self):
        timing = UpdateTimingModel()
        assert timing.delete_delay_ms(50) < timing.install_delay_ms(50)

    def test_memory_reset_scales_per_kbucket(self):
        timing = UpdateTimingModel()
        assert timing.memory_reset_ms(2048) == pytest.approx(
            2 * timing.memory_reset_ms_per_kbucket
        )

    def test_calibration_anchor_cache(self):
        """The Table-1 calibration: 17 entries -> ~11.4 ms (paper 11.47)."""
        timing = UpdateTimingModel()
        assert timing.install_delay_ms(17) == pytest.approx(11.44, abs=0.1)

    def test_model_frozen(self):
        timing = UpdateTimingModel()
        with pytest.raises(Exception):
            timing.entry_insert_ms = 1.0


class TestConventionalTiming:
    def test_compile_dominates(self):
        timing = ConventionalP4Timing()
        assert timing.deploy_delay_s(100) > 60
        assert timing.deploy_delay_s(200) > timing.deploy_delay_s(50)

    def test_blackout_includes_port_enable(self):
        timing = ConventionalP4Timing()
        assert timing.traffic_blackout_s == pytest.approx(
            timing.reprovision_s + timing.port_enable_s
        )

    def test_order_of_magnitude_gap(self):
        """§6.2.1: P4runpro cuts deployment by >= one order of magnitude."""
        conventional = ConventionalP4Timing().deploy_delay_s(77) * 1e3
        runpro = UpdateTimingModel().install_delay_ms(17)
        assert conventional / runpro > 1000


class TestSimClockEdges:
    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(1.0) == 1.0
        assert clock.advance_ms(500.0) == 1.5
