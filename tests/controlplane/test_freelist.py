"""Free-list allocator tests."""

import pytest

from repro.controlplane.freelist import (
    FreeList,
    FreeListCorruptionError,
    OutOfMemoryError,
)


@pytest.fixture
def fl():
    return FreeList(1024)


class TestAllocation:
    def test_first_fit_from_zero(self, fl):
        assert fl.allocate(100) == 0
        assert fl.allocate(50) == 100

    def test_exhaustion(self, fl):
        fl.allocate(1024)
        with pytest.raises(OutOfMemoryError):
            fl.allocate(1)

    def test_fragmentation_blocks_large_request(self, fl):
        a = fl.allocate(512)
        fl.allocate(512)
        fl.free(a)
        # 512 free at the front, but not 513 contiguous.
        with pytest.raises(OutOfMemoryError):
            fl.allocate(513)
        assert fl.allocate(512) == 0

    def test_invalid_sizes(self, fl):
        with pytest.raises(ValueError):
            fl.allocate(0)
        with pytest.raises(ValueError):
            FreeList(0)

    def test_totals(self, fl):
        fl.allocate(100)
        assert fl.free_total() == 924
        assert fl.allocated_total() == 100
        assert fl.utilization() == pytest.approx(100 / 1024)


class TestFree:
    def test_free_coalesces_with_next(self, fl):
        a = fl.allocate(100)
        b = fl.allocate(100)
        fl.free(b)
        fl.free(a)
        assert fl.largest_free_run() == 1024
        assert len(fl.free_runs()) == 1

    def test_free_coalesces_with_prev(self, fl):
        a = fl.allocate(100)
        b = fl.allocate(100)
        fl.free(a)
        fl.free(b)
        assert fl.largest_free_run() == 1024

    def test_free_middle_coalesces_both_sides(self, fl):
        a = fl.allocate(100)
        b = fl.allocate(100)
        c = fl.allocate(100)
        fl.free(a)
        fl.free(c)
        fl.free(b)
        assert len(fl.free_runs()) == 1

    def test_double_free_rejected(self, fl):
        a = fl.allocate(10)
        fl.free(a)
        with pytest.raises(FreeListCorruptionError):
            fl.free(a)

    def test_free_unallocated_rejected(self, fl):
        with pytest.raises(FreeListCorruptionError):
            fl.free(123)


class TestCanAllocate:
    def test_simple(self, fl):
        assert fl.can_allocate([1024])
        assert not fl.can_allocate([1025])

    def test_multiple_sizes(self, fl):
        assert fl.can_allocate([512, 512])
        assert not fl.can_allocate([512, 513])

    def test_respects_fragmentation(self, fl):
        a = fl.allocate(400)
        fl.allocate(224)
        fl.free(a)
        # runs: [0..400), [624..1024): 400 + 400
        assert fl.can_allocate([400, 400])
        assert not fl.can_allocate([401, 400])

    def test_does_not_mutate(self, fl):
        fl.can_allocate([512])
        assert fl.free_total() == 1024


class TestLockProtocol:
    def test_locked_memory_unavailable(self, fl):
        a = fl.allocate(1024)
        fl.lock(a)
        with pytest.raises(OutOfMemoryError):
            fl.allocate(1)
        assert fl.allocated_total() == 1024

    def test_unlock_and_free_releases(self, fl):
        a = fl.allocate(512)
        fl.lock(a)
        fl.unlock_and_free(a)
        assert fl.free_total() == 1024

    def test_lock_unallocated_rejected(self, fl):
        with pytest.raises(FreeListCorruptionError):
            fl.lock(7)

    def test_unlock_unlocked_rejected(self, fl):
        a = fl.allocate(8)
        with pytest.raises(FreeListCorruptionError):
            fl.unlock_and_free(a)

    def test_locked_ranges_reported(self, fl):
        a = fl.allocate(64)
        fl.lock(a)
        assert fl.locked_ranges() == [(0, 64)]

    def test_free_locked_block_rejected(self, fl):
        a = fl.allocate(64)
        fl.lock(a)
        with pytest.raises(FreeListCorruptionError):
            fl.free(a)
