"""Injectable southbound faults and install rollback (fail every k-th update).

The satellite requirement: with a :class:`FaultPlan` failing every k-th
entry update, a failed install must leave the resource manager
byte-identical (``state_fingerprint``) to its pre-deploy state.
"""

import pytest

from repro.controlplane import (
    Controller,
    FaultInjectingBinding,
    FaultPlan,
    NullBinding,
    SouthboundError,
)
from repro.dataplane.runpro import P4runproDataPlane
from repro.programs import PROGRAMS


class TestFaultPlan:
    def test_disabled_plan_never_fires(self):
        plan = FaultPlan(every_k=0)
        for _ in range(100):
            plan.check("insert")
        assert plan.faults == 0

    def test_fails_every_kth(self):
        plan = FaultPlan(every_k=3)
        outcomes = []
        for _ in range(9):
            try:
                plan.check("insert")
                outcomes.append("ok")
            except SouthboundError:
                outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom"] * 3

    def test_op_filter(self):
        plan = FaultPlan(every_k=1, ops=frozenset({"insert"}))
        plan.check("delete")  # not counted, not failed
        with pytest.raises(SouthboundError):
            plan.check("insert")

    def test_max_faults_heals(self):
        plan = FaultPlan(every_k=1, max_faults=2)
        for _ in range(2):
            with pytest.raises(SouthboundError):
                plan.check("insert")
        plan.check("insert")  # healed
        assert plan.faults == 2


@pytest.mark.parametrize("every_k", [1, 3, 7, 16])
class TestRollbackFingerprint:
    def test_null_binding_rollback_is_byte_identical(self, every_k):
        ctl = Controller(NullBinding(FaultPlan(every_k=every_k, ops=frozenset({"insert"}))))
        before = ctl.manager.state_fingerprint()
        with pytest.raises(SouthboundError):
            ctl.deploy(PROGRAMS["cache"].source)
        assert ctl.manager.state_fingerprint() == before

    def test_simulator_rollback_is_byte_identical(self, every_k):
        inner = P4runproDataPlane()
        binding = FaultInjectingBinding(
            inner, FaultPlan(every_k=every_k, ops=frozenset({"insert"}))
        )
        ctl = Controller(binding)
        before = ctl.manager.state_fingerprint()
        with pytest.raises(SouthboundError):
            ctl.deploy(PROGRAMS["cache"].source)
        assert ctl.manager.state_fingerprint() == before
        # and no residue on the simulated switch either
        for name, table in inner.tables.items():
            assert table.occupancy == 0, name


class TestRollbackWithSurvivors:
    def test_survivor_fingerprint_preserved_across_failed_deploy(self):
        """A failed deploy must not disturb an already-running program's
        allocations — fingerprint with the survivor admitted must be
        restored exactly."""
        inner = P4runproDataPlane()
        plan = FaultPlan(every_k=0, ops=frozenset({"insert"}))
        ctl = Controller(FaultInjectingBinding(inner, plan))
        ctl.deploy(PROGRAMS["cache"].source)
        with_survivor = ctl.manager.state_fingerprint()
        plan.every_k = 4  # now start failing
        with pytest.raises(SouthboundError):
            ctl.deploy(PROGRAMS["lb"].source)
        assert ctl.manager.state_fingerprint() == with_survivor

    def test_fingerprint_changes_when_state_changes(self):
        """Sanity: the fingerprint is not a constant."""
        ctl = Controller(NullBinding())
        before = ctl.manager.state_fingerprint()
        handle = ctl.deploy(PROGRAMS["cache"].source)
        assert ctl.manager.state_fingerprint() != before
        ctl.revoke(handle)
        assert ctl.manager.state_fingerprint() == before
