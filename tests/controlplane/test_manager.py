"""Resource manager tests."""

import pytest

from repro.compiler.compiler import compile_source
from repro.controlplane.manager import (
    ProgramNotFoundError,
    ProgramState,
    ResourceManager,
)
from repro.programs.library import CACHE_SOURCE, LB_SOURCE


@pytest.fixture
def manager():
    return ResourceManager()


def admit(manager, source=CACHE_SOURCE):
    compiled = compile_source(source, view=manager)
    return manager.admit(compiled)


class TestAdmission:
    def test_admit_assigns_unique_ids(self, manager):
        a = admit(manager)
        b = admit(manager)
        assert a.program_id != b.program_id

    def test_memory_allocated_on_placement_rpb(self, manager):
        record = admit(manager)
        alloc = record.memory["mem1"]
        assert alloc.size == 256
        assert alloc.phys_rpb == record.compiled.allocation.memory_placement["mem1"]

    def test_entries_reserved(self, manager):
        before = manager.entry_utilization()
        admit(manager)
        assert manager.entry_utilization() > before

    def test_memory_utilization_grows(self, manager):
        before = manager.memory_utilization()
        admit(manager, LB_SOURCE)
        assert manager.memory_utilization() > before

    def test_state_starts_installing(self, manager):
        record = admit(manager)
        assert record.state is ProgramState.INSTALLING
        manager.mark_running(record)
        assert record.state is ProgramState.RUNNING

    def test_programs_listed(self, manager):
        admit(manager)
        admit(manager, LB_SOURCE)
        assert {r.name for r in manager.programs()} == {"cache", "lb"}


class TestRemoval:
    def _install(self, manager):
        record = admit(manager)
        # Simulate the update engine recording installed handles.
        for i, entry in enumerate(record.batch.install_order()):
            record.installed_handles.append((entry.table, i))
        manager.mark_running(record)
        return record

    def test_begin_removal_locks_memory(self, manager):
        record = self._install(manager)
        manager.begin_removal(record.program_id)
        assert record.state is ProgramState.REMOVING
        # Memory is locked: utilization unchanged, but not reusable.
        phys = record.memory["mem1"].phys_rpb
        assert manager.memory_utilization(phys) > 0

    def test_finish_removal_releases_everything(self, manager):
        record = self._install(manager)
        mem_before = manager.memory_utilization()
        te_before = manager.entry_utilization()
        manager.begin_removal(record.program_id)
        manager.finish_removal(record)
        assert manager.memory_utilization() < mem_before
        assert manager.entry_utilization() < te_before
        assert record.state is ProgramState.REMOVED
        with pytest.raises(ProgramNotFoundError):
            manager.get(record.program_id)

    def test_removed_resources_reusable(self, manager):
        record = self._install(manager)
        manager.begin_removal(record.program_id)
        manager.finish_removal(record)
        again = admit(manager)
        assert again.memory["mem1"].base == record.memory["mem1"].base

    def test_get_unknown_program(self, manager):
        with pytest.raises(ProgramNotFoundError):
            manager.get(999)


class TestResourceView:
    def test_free_entries_decrease(self, manager):
        free_before = [manager.free_entries(p) for p in range(1, 23)]
        admit(manager)
        free_after = [manager.free_entries(p) for p in range(1, 23)]
        assert sum(free_after) < sum(free_before)

    def test_can_allocate_memory_reflects_admissions(self, manager):
        # Fill one RPB's memory completely via repeated lb deployments is
        # slow; instead reach into the freelist contract directly.
        assert manager.can_allocate_memory(1, [65536])
        assert not manager.can_allocate_memory(1, [65537])

    def test_snapshot_shape(self, manager):
        snap = manager.utilization_snapshot()
        assert len(snap["memory"]) == 22
        assert len(snap["entries"]) == 22


class TestSequentialAdmissionPressure:
    def test_allocations_shift_under_pressure(self, manager):
        """Later cache deployments land on different RPBs as entries fill."""
        first = admit(manager)
        placements = {tuple(first.compiled.allocation.x)}
        for _ in range(30):
            record = admit(manager)
            placements.add(tuple(record.compiled.allocation.x))
        # With ~31 cache programs the early RPB tables are far from full,
        # but memory first-fit should still give identical vectors here.
        assert len(placements) >= 1
