"""Incremental-update tests: growing/shrinking a running cache's keys."""

import pytest

from repro.controlplane import Controller
from repro.controlplane.incremental import IncrementalUpdateError
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache
from repro.rmt.pipeline import Verdict

NEW_KEY = 0x4242
NEW_BUCKET = 64


@pytest.fixture
def env():
    ctl, dataplane = Controller.with_simulator()
    handle = ctl.deploy(PROGRAMS["cache"].source)
    return ctl, dataplane, handle


def add_key(ctl, handle, key=NEW_KEY, bucket=NEW_BUCKET):
    """Add read+write cases for a new cache key, like the paper's example
    of 'adding a new key-value pair to the program cache'."""
    read = ctl.add_case(
        handle,
        [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", key, 0xFFFFFFFF)],
        template_case=0,
        loadi_values=[bucket],
    )
    write = ctl.add_case(
        handle,
        [("har", 2, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", key, 0xFFFFFFFF)],
        template_case=1,
        loadi_values=[bucket],
    )
    return read, write


class TestAddCase:
    def test_new_key_served_after_add(self, env):
        ctl, dataplane, handle = env
        # Before the incremental update, the new key is a miss.
        miss = dataplane.process(make_cache(1, 2, op=NC_READ, key=NEW_KEY))
        assert miss.verdict is Verdict.FORWARD
        assert miss.egress_port == 32
        add_key(ctl, handle)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=NEW_KEY, value=555))
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=NEW_KEY))
        assert hit.verdict is Verdict.REFLECT
        assert hit.packet.get_field("hdr.nc.val") == 555

    def test_original_key_unaffected(self, env):
        ctl, dataplane, handle = env
        add_key(ctl, handle)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=7))
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.packet.get_field("hdr.nc.val") == 7

    def test_new_key_uses_requested_bucket(self, env):
        ctl, dataplane, handle = env
        add_key(ctl, handle, bucket=NEW_BUCKET)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=NEW_KEY, value=99))
        assert ctl.read_memory(handle, "mem1", NEW_BUCKET) == 99

    def test_branch_ids_fresh_per_case(self, env):
        ctl, _, handle = env
        read, write = add_key(ctl, handle)
        assert read.branch_id != write.branch_id
        assert read.branch_id >= 3  # 0 root + 2 static cases

    def test_entry_reservations_grow(self, env):
        ctl, _, handle = env
        before = ctl.manager.entry_utilization()
        add_key(ctl, handle)
        assert ctl.manager.entry_utilization() > before

    def test_clock_advances(self, env):
        ctl, _, handle = env
        t0 = ctl.clock.now
        add_key(ctl, handle)
        assert ctl.clock.now > t0


class TestRemoveCase:
    def test_removed_key_misses_again(self, env):
        ctl, dataplane, handle = env
        read, write = add_key(ctl, handle)
        ctl.remove_case(handle, read)
        ctl.remove_case(handle, write)
        miss = dataplane.process(make_cache(1, 2, op=NC_READ, key=NEW_KEY))
        assert miss.verdict is Verdict.FORWARD
        assert miss.egress_port == 32

    def test_reservations_released(self, env):
        ctl, _, handle = env
        before = ctl.manager.entry_utilization()
        read, write = add_key(ctl, handle)
        ctl.remove_case(handle, read)
        ctl.remove_case(handle, write)
        assert ctl.manager.entry_utilization() == pytest.approx(before)

    def test_double_remove_rejected(self, env):
        ctl, _, handle = env
        read, _write = add_key(ctl, handle)
        ctl.remove_case(handle, read)
        with pytest.raises(IncrementalUpdateError, match="not live"):
            ctl.remove_case(handle, read)


class TestRevokeWithDynamicCases:
    def test_revoke_cleans_dynamic_entries(self, env):
        ctl, dataplane, handle = env
        add_key(ctl, handle)
        ctl.revoke(handle)
        for table in dataplane.tables.values():
            assert table.occupancy == 0
        assert ctl.incremental.live_cases(handle.program_id) == []

    def test_redeploy_after_revoke_with_cases(self, env):
        ctl, dataplane, handle = env
        add_key(ctl, handle)
        ctl.revoke(handle)
        again = ctl.deploy(PROGRAMS["cache"].source)
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.verdict is Verdict.REFLECT


class TestValidation:
    def test_unknown_branch_index(self, env):
        ctl, _, handle = env
        with pytest.raises(IncrementalUpdateError, match="no BRANCH #5"):
            ctl.add_case(handle, [("har", 1, 0xFF)], branch_index=5)

    def test_unknown_template_case(self, env):
        ctl, _, handle = env
        with pytest.raises(IncrementalUpdateError, match="no case #9"):
            ctl.add_case(handle, [("har", 1, 0xFF)], template_case=9)

    def test_empty_conditions_rejected(self, env):
        ctl, _, handle = env
        with pytest.raises(IncrementalUpdateError, match="condition"):
            ctl.add_case(handle, [])

    def test_unknown_register_rejected(self, env):
        ctl, _, handle = env
        with pytest.raises(IncrementalUpdateError, match="register"):
            ctl.add_case(handle, [("xar", 1, 0xFF)])

    def test_nested_branch_template_rejected(self):
        ctl, _ = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["hh"].source)
        with pytest.raises(IncrementalUpdateError, match="nested BRANCH"):
            ctl.add_case(handle, [("har", 1, 0xFF)], branch_index=0)
