"""Consistent-update engine tests (Fig. 6)."""

import pytest

from repro.compiler.compiler import compile_source
from repro.controlplane.manager import ResourceManager
from repro.controlplane.timing import SimClock, UpdateTimingModel
from repro.controlplane.update import NullBinding, UpdateEngine
from repro.dataplane import constants as dp
from repro.programs.library import CACHE_SOURCE, HH_SOURCE


class RecordingBinding(NullBinding):
    """Remembers the order of every southbound call."""

    def __init__(self):
        super().__init__()
        self.inserts = []
        self.deletes = []
        self.resets = []

    def insert_entry(self, entry):
        self.inserts.append(entry)
        return super().insert_entry(entry)

    def delete_entry(self, table, handle):
        self.deletes.append((table, handle))

    def reset_memory(self, phys_rpb, base, size):
        self.resets.append((phys_rpb, base, size))


@pytest.fixture
def setup():
    manager = ResourceManager()
    binding = RecordingBinding()
    clock = SimClock()
    engine = UpdateEngine(binding, clock)
    compiled = compile_source(CACHE_SOURCE, view=manager)
    record = manager.admit(compiled)
    return manager, binding, clock, engine, record


class TestInstall:
    def test_init_entry_installed_last(self, setup):
        _, binding, _, engine, record = setup
        engine.install(record)
        assert binding.inserts[-1].table == dp.INIT_TABLE
        assert all(e.table != dp.INIT_TABLE for e in binding.inserts[:-1])

    def test_handles_recorded_in_order(self, setup):
        _, _, _, engine, record = setup
        report = engine.install(record)
        assert len(record.installed_handles) == report.entries == len(record.batch)

    def test_install_advances_clock(self, setup):
        _, _, clock, engine, record = setup
        before = clock.now
        report = engine.install(record)
        assert clock.now == pytest.approx(before + report.update_delay_ms / 1000.0)

    def test_delay_model_linear_in_entries(self):
        timing = UpdateTimingModel()
        d10 = timing.install_delay_ms(10)
        d20 = timing.install_delay_ms(20)
        assert d20 - d10 == pytest.approx(10 * timing.entry_insert_ms)


class TestRemove:
    def test_init_entry_deleted_first(self, setup):
        manager, binding, _, engine, record = setup
        engine.install(record)
        manager.begin_removal(record.program_id)
        engine.remove(record)
        assert binding.deletes[0][0] == dp.INIT_TABLE

    def test_every_installed_entry_deleted(self, setup):
        manager, binding, _, engine, record = setup
        engine.install(record)
        manager.begin_removal(record.program_id)
        engine.remove(record)
        assert sorted(binding.deletes) == sorted(record.installed_handles)

    def test_memory_reset_issued(self, setup):
        manager, binding, _, engine, record = setup
        engine.install(record)
        manager.begin_removal(record.program_id)
        engine.remove(record)
        alloc = record.memory["mem1"]
        assert binding.resets == [(alloc.phys_rpb, alloc.base, alloc.size)]

    def test_remove_delay_includes_memory_reset(self, setup):
        manager, _, _, engine, record = setup
        engine.install(record)
        manager.begin_removal(record.program_id)
        report = engine.remove(record)
        bare = engine.timing.delete_delay_ms(len(record.batch))
        assert report.update_delay_ms > bare


class TestRecirculatingProgram:
    def test_recirc_entries_installed_before_init(self):
        manager = ResourceManager()
        binding = RecordingBinding()
        engine = UpdateEngine(binding)
        compiled = compile_source(HH_SOURCE, view=manager)
        record = manager.admit(compiled)
        engine.install(record)
        tables = [e.table for e in binding.inserts]
        assert dp.RECIRC_TABLE in tables
        assert tables.index(dp.RECIRC_TABLE) < tables.index(dp.INIT_TABLE)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance_ms(500)
        assert clock.now == pytest.approx(2.0)

    def test_no_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
