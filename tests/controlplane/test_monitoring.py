"""Program-monitoring API tests (entry counters + memory snapshots)."""

import pytest

from repro.controlplane import Controller, NullBinding
from repro.lang.errors import P4runproError
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_udp


@pytest.fixture
def env():
    ctl, dataplane = Controller.with_simulator()
    handle = ctl.deploy(PROGRAMS["cache"].source)
    return ctl, dataplane, handle


class TestProgramStats:
    def test_no_traffic_no_hits(self, env):
        ctl, _, handle = env
        stats = ctl.program_stats(handle)
        assert stats["matched_packets"] == 0
        assert stats["total_entry_hits"] == 0
        assert stats["entries"] == 17

    def test_matched_packets_counts_owned_traffic(self, env):
        ctl, dataplane, handle = env
        for _ in range(5):
            dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert ctl.program_stats(handle)["matched_packets"] == 5

    def test_foreign_traffic_not_counted(self, env):
        ctl, dataplane, handle = env
        for _ in range(5):
            dataplane.process(make_udp(1, 2, 3, 9999))
        assert ctl.program_stats(handle)["matched_packets"] == 0

    def test_total_hits_reflect_executed_operations(self, env):
        ctl, dataplane, handle = env
        dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        stats = ctl.program_stats(handle)
        # One packet executes: init + 3 EXTRACT + BRANCH case + RETURN +
        # LOADI + NOP-skipped + OFFSET + MEMREAD + MODIFY.
        assert stats["total_entry_hits"] >= 9

    def test_per_program_isolation(self, env):
        ctl, dataplane, cache = env
        lb = ctl.deploy(PROGRAMS["lb"].source)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=1))
        assert ctl.program_stats(cache)["matched_packets"] == 1
        assert ctl.program_stats(lb)["matched_packets"] == 0

    def test_null_binding_rejected(self):
        ctl = Controller(NullBinding())
        handle = ctl.deploy(PROGRAMS["cache"].source)
        with pytest.raises(P4runproError, match="entry counters"):
            ctl.program_stats(handle)


class TestMemorySnapshot:
    def test_snapshot_size_matches_declaration(self, env):
        ctl, _, handle = env
        snapshot = ctl.snapshot_memory(handle, "mem1")
        assert len(snapshot) == 256
        assert all(v == 0 for v in snapshot)

    def test_snapshot_sees_dataplane_writes(self, env):
        ctl, dataplane, handle = env
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=777))
        snapshot = ctl.snapshot_memory(handle, "mem1")
        assert snapshot[128] == 777
        assert sum(1 for v in snapshot if v) == 1

    def test_unknown_memory(self, env):
        ctl, _, handle = env
        with pytest.raises(P4runproError, match="no memory"):
            ctl.snapshot_memory(handle, "ghost")

    def test_snapshot_respects_virtual_base(self, env):
        """Two co-resident caches: snapshots never alias."""
        ctl, dataplane, first = env
        second = ctl.deploy(PROGRAMS["cache"].source)
        ctl.write_memory(first, "mem1", 0, 1)
        ctl.write_memory(second, "mem1", 0, 2)
        assert ctl.snapshot_memory(first, "mem1")[0] == 1
        assert ctl.snapshot_memory(second, "mem1")[0] == 2
