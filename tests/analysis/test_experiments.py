"""Experiment-runner tests (reduced-scale versions of the §6.2 engines)."""

import random

import pytest

from repro.analysis.experiments import (
    compare_objectives,
    continuous_deployment,
    pick_program,
    program_capacity,
)
from repro.compiler.objectives import f1, f2


class TestPickProgram:
    def test_named_workloads(self):
        rng = random.Random(0)
        assert pick_program("cache", rng) == "cache"
        assert pick_program("hll", rng) == "hll"

    def test_mixed_draws_from_three(self):
        rng = random.Random(0)
        picks = {pick_program("mixed", rng) for _ in range(60)}
        assert picks == {"cache", "lb", "hh"}

    def test_all_mixed_draws_widely(self):
        rng = random.Random(0)
        picks = {pick_program("all-mixed", rng) for _ in range(300)}
        assert len(picks) == 15

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            pick_program("bogus", random.Random(0))


class TestContinuousDeployment:
    def test_epochs_recorded(self):
        results = continuous_deployment("lb", 5)
        assert len(results) == 5
        assert all(r.success for r in results)
        assert all(r.program == "lb" for r in results)

    def test_utilization_monotonic_while_successful(self):
        results = continuous_deployment("cache", 8)
        memory = [r.memory_utilization for r in results]
        assert memory == sorted(memory)

    def test_allocation_delay_measured(self):
        results = continuous_deployment("hh", 3)
        assert all(r.allocation_ms > 0 for r in results)

    def test_snapshot_rpbs(self):
        results = continuous_deployment("lb", 2, snapshot_rpbs=True)
        assert len(results[0].per_rpb_memory) == 22
        assert len(results[0].per_rpb_entries) == 22

    def test_memory_buckets_respected(self):
        small = continuous_deployment("cache", 3, memory_buckets=128)
        large = continuous_deployment("cache", 3, memory_buckets=1024)
        assert large[-1].memory_utilization > small[-1].memory_utilization

    def test_reproducible_with_seed(self):
        a = continuous_deployment("mixed", 6, seed=3)
        b = continuous_deployment("mixed", 6, seed=3)
        assert [r.program for r in a] == [r.program for r in b]


class TestCapacity:
    def test_capacity_stops_at_failure(self):
        # A tiny target makes exhaustion quick: max_epochs bounds the scan.
        result = program_capacity("hh", max_epochs=12)
        assert result.capacity == 12  # far from exhaustion at this scale

    def test_elastic_blocks_reduce_capacity(self):
        few = program_capacity("cache", elastic_blocks=2, max_epochs=40)
        many = program_capacity("cache", elastic_blocks=64, max_epochs=40)
        # At 40 epochs neither fails, but utilization must differ.
        assert many.entry_utilization > few.entry_utilization


class TestCompareObjectives:
    def test_rows_per_objective(self):
        rows = compare_objectives(
            {"f1": f1(), "f2": f2()}, workload="lb", max_epochs=5
        )
        assert [r.objective for r in rows] == ["f1", "f2"]
        for row in rows:
            assert row.capacity == 5
            assert row.mean_allocation_ms > 0


class TestCustomController:
    def test_continuous_deployment_on_chain(self):
        """The experiment engine drives any controller, incl. a chain."""
        from repro.controlplane import Controller

        ctl, _chain = Controller.with_chain(2)
        results = continuous_deployment("lb", 4, controller=ctl)
        assert all(r.success for r in results)
        assert len(ctl.running_programs()) == 4

    def test_failures_recorded_not_raised(self):
        """hh revisits no memory, but a chain rejects programs that do;
        the engine records the failure and keeps going."""
        from repro.controlplane import Controller

        ctl, _ = Controller.with_chain(2)
        # Exhaust epochs with a workload mixing deployable programs; engine
        # must never raise even when some epochs fail.
        results = continuous_deployment("all-mixed", 12, controller=ctl, seed=4)
        assert len(results) == 12
        assert any(r.success for r in results)
