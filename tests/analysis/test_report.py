"""Report-generator tests (tiny scale)."""

import pytest

from repro.analysis.report import ReportBuilder, SCALES, generate_report, main


@pytest.fixture(scope="module")
def report_text():
    return generate_report("tiny")


class TestBuilder:
    def test_table_rendering(self):
        builder = ReportBuilder()
        builder.table(["a", "b"], [[1, 2], [3, 4]])
        text = builder.render()
        assert "| a | b |" in text
        assert "| 1 | 2 |" in text
        assert "|---|---|" in text

    def test_heading_levels(self):
        builder = ReportBuilder()
        builder.heading("top", level=1)
        builder.heading("sub")
        text = builder.render()
        assert "# top" in text
        assert "## sub" in text


class TestGeneratedReport:
    def test_all_sections_present(self, report_text):
        for section in (
            "Table 1",
            "Table 2",
            "Fig. 7(a)",
            "Fig. 11",
            "Fig. 12",
            "Prior-work",
            "Recirculation census",
        ):
            assert section in report_text

    def test_every_program_row_present(self, report_text):
        from repro.programs import ALL_PROGRAM_NAMES

        for name in ALL_PROGRAM_NAMES:
            assert f"| {name} |" in report_text

    def test_table2_paper_row(self, report_text):
        assert "306/316/622" in report_text

    def test_recirculation_census(self, report_text):
        assert "'hh'" in report_text and "'nc'" in report_text
        assert "13 of 15" in report_text

    def test_scales_registered(self):
        assert set(SCALES) == {"tiny", "quick"}


class TestCLI:
    def test_main_writes_file(self, tmp_path):
        out = tmp_path / "REPORT.md"
        assert main(["--scale", "tiny", "--out", str(out)]) == 0
        assert out.read_text().startswith("# P4runpro reproduction report")
