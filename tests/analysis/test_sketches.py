"""Sketch decoder tests, driven end to end through the data plane."""

import pytest

from repro.analysis.sketches import (
    bf_contains,
    bf_false_positive_rate,
    cms_error_bound,
    cms_estimate,
    hll_estimate,
    hll_standard_error,
    sumax_query,
)
from repro.controlplane import Controller
from repro.programs import PROGRAMS, source_with_memory
from repro.rmt.packet import PROTO_UDP, make_tcp, make_udp
from repro.traffic import make_population


def replay_flows(dataplane, flows, counts):
    for flow, count in zip(flows, counts):
        maker = make_udp if flow.proto == PROTO_UDP else make_tcp
        for _ in range(count):
            dataplane.process(
                maker(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port)
            )


class TestCMSEndToEnd:
    @pytest.fixture
    def state(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(source_with_memory("cms", 1024))
        population = make_population(num_flows=64, heavy_flows=0, seed=3)
        flows = population.flows[:20]
        counts = [3 * (i + 1) for i in range(20)]
        replay_flows(dataplane, flows, counts)
        rows = [
            ctl.snapshot_memory(handle, "cms_row1"),
            ctl.snapshot_memory(handle, "cms_row2"),
        ]
        return rows, flows, counts

    def test_estimates_never_underestimate(self, state):
        rows, flows, counts = state
        for flow, count in zip(flows, counts):
            assert cms_estimate(rows, flow.five_tuple) >= count

    def test_estimates_exact_without_collisions(self, state):
        """With 1,024 buckets and 20 flows, collisions are unlikely: most
        estimates are exact."""
        rows, flows, counts = state
        exact = sum(
            cms_estimate(rows, flow.five_tuple) == count
            for flow, count in zip(flows, counts)
        )
        assert exact >= 18

    def test_absent_flow_usually_zero(self, state):
        rows, _flows, _counts = state
        absent = make_udp(0x7F000001, 0x7F000002, 9999, 9998).five_tuple()
        assert cms_estimate(rows, absent) <= cms_error_bound(rows)

    def test_error_bound_positive(self, state):
        rows, _, _ = state
        assert cms_error_bound(rows) > 0

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            cms_estimate([], (1, 2, 3, 4, 5))


class TestBloomEndToEnd:
    @pytest.fixture
    def state(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(source_with_memory("bf", 1024))
        population = make_population(num_flows=128, heavy_flows=0, seed=5)
        inserted = population.flows[:40]
        replay_flows(dataplane, inserted, [1] * 40)
        rows = [
            ctl.snapshot_memory(handle, "bf_row1"),
            ctl.snapshot_memory(handle, "bf_row2"),
        ]
        return rows, inserted, population.flows[40:80]

    def test_no_false_negatives(self, state):
        rows, inserted, _absent = state
        assert all(bf_contains(rows, flow.five_tuple) for flow in inserted)

    def test_few_false_positives(self, state):
        rows, _inserted, absent = state
        false_positives = sum(bf_contains(rows, f.five_tuple) for f in absent)
        assert false_positives <= 2  # fill ~4% per row -> FPR ~0.15%

    def test_fpr_estimate_small(self, state):
        rows, _, _ = state
        assert bf_false_positive_rate(rows) < 0.01


class TestSuMaxEndToEnd:
    def test_query_matches_stored_max(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(source_with_memory("sumax", 1024))
        flow = make_population(num_flows=4, heavy_flows=0, seed=7).flows[0]
        for size in (100, 700, 300):
            dataplane.process(
                make_udp(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, size=size)
            )
        rows = [
            ctl.snapshot_memory(handle, "sumax_row1"),
            ctl.snapshot_memory(handle, "sumax_row2"),
        ]
        assert sumax_query(rows, flow.five_tuple) == 700 - 14  # ip len


class TestHLL:
    def test_alpha_values(self):
        assert hll_estimate([1] * 64) > 0
        assert hll_standard_error(64) == pytest.approx(0.13, abs=0.01)

    def test_empty_registers_estimate_zero_ish(self):
        assert hll_estimate([0] * 64) == 0.0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            hll_estimate([0] * 60)

    @staticmethod
    def _random_flow_packets(count, seed):
        """High-entropy 5-tuples.  CRC-16 is linear, so *structured* inputs
        (e.g. sequential source IPs) skew the leading-zero statistics HLL
        depends on — realistic, mixed-entropy tuples behave like the
        uniform hashes the estimator assumes.  (CMS/BF indexing only
        truncates low bits and tolerates structure fine — the property the
        paper's §6.4 heavy-hitter study relies on.)"""
        import random

        rng = random.Random(seed)
        return [
            make_udp(
                rng.getrandbits(32),
                rng.getrandbits(32),
                rng.randrange(1024, 65536),
                rng.randrange(1, 65536),
            )
            for _ in range(count)
        ]

    @pytest.mark.parametrize("cardinality", [200, 1000, 3000])
    def test_end_to_end_accuracy(self, cardinality):
        """The hll program's registers estimate distinct-flow counts within
        a few standard errors (sigma = 13% at m=64)."""
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["hll"].source)
        for pkt in self._random_flow_packets(cardinality, seed=cardinality):
            dataplane.process(pkt)
        registers = ctl.snapshot_memory(handle, "hll_regs")
        estimate = hll_estimate(registers)
        sigma = hll_standard_error(64)
        assert abs(estimate - cardinality) / cardinality < 4 * sigma

    def test_duplicates_do_not_inflate(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["hll"].source)
        packets = self._random_flow_packets(100, seed=9)
        for _ in range(50):
            for pkt in packets:
                dataplane.process(pkt.clone())
        estimate = hll_estimate(ctl.snapshot_memory(handle, "hll_regs"))
        assert abs(estimate - 100) / 100 < 0.55  # duplicates ignored
