"""Metric helper tests."""

import pytest

from repro.analysis.metrics import f1_score, moving_average, precision_recall


class TestMovingAverage:
    def test_constant_series_unchanged(self):
        assert moving_average([5.0] * 10, window=3) == [5.0] * 10

    def test_smooths_spike(self):
        series = [0.0] * 5 + [10.0] + [0.0] * 5
        smoothed = moving_average(series, window=5)
        assert max(smoothed) < 10.0
        assert max(smoothed) == pytest.approx(2.0)

    def test_edges_shrink(self):
        smoothed = moving_average([1.0, 2.0, 3.0], window=31)
        assert smoothed == [2.0, 2.0, 2.0]

    def test_window_one_identity(self):
        series = [3.0, 1.0, 4.0]
        assert moving_average(series, window=1) == series

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    def test_length_preserved(self):
        assert len(moving_average(list(range(100)), window=31)) == 100


class TestF1:
    def test_perfect(self):
        assert f1_score(10, 0, 0) == 1.0

    def test_nothing_detected(self):
        assert f1_score(0, 0, 10) == 0.0

    def test_undefined_is_zero(self):
        assert f1_score(0, 0, 0) == 0.0

    def test_known_value(self):
        assert f1_score(8, 2, 2) == pytest.approx(0.8)


class TestPrecisionRecall:
    def test_sets(self):
        precision, recall, f1 = precision_recall({1, 2, 3}, {2, 3, 4})
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_empty_detection(self):
        precision, recall, f1 = precision_recall(set(), {1})
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)

    def test_perfect_detection(self):
        assert precision_recall({1, 2}, {1, 2}) == (1.0, 1.0, 1.0)
