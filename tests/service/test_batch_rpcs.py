"""Multi-op batch RPCs: atomicity, per-op status, and replay exactness.

``deploy_many`` is all-or-nothing (one admission ticket, reverse-order
rollback on failure); ``add_cases``/``write_mems``/``batch`` are
best-effort with per-op status.  Every batch lands as ONE audit record,
and replaying the journal must reproduce ``state_fingerprint()`` exactly
— including the program ids burned by rolled-back or failed sub-deploys.
"""

import asyncio

import pytest

from repro.programs import PROGRAMS
from repro.service import (
    ControlService,
    Request,
    ServerThread,
    ServiceClient,
    TenantQuota,
    TenantRegistry,
    replay,
)

CACHE = PROGRAMS["cache"].source
LB = PROGRAMS["lb"].source
HH = PROGRAMS["hh"].source


def run(service, method, params=None, tenant="default"):
    request = Request(id=1, method=method, params=params or {}, tenant=tenant)
    return asyncio.run(service.handle_request(request))


def result_of(response):
    assert response["ok"], response
    return response["result"]


def fingerprints_match(service):
    fresh = replay(service.audit)
    return (
        fresh.manager.state_fingerprint()
        == service.controller.manager.state_fingerprint()
    )


def unlimited():
    return ControlService(tenants=TenantRegistry(TenantQuota.unlimited()))


class TestDeployMany:
    def test_commit_assigns_sequential_ids(self):
        service = unlimited()
        report = result_of(
            run(service, "deploy_many", {"sources": [CACHE, LB, HH]})
        )
        assert report["committed"] is True
        assert [sub["program_id"] for sub in report["results"]] == [1, 2, 3]
        assert all(sub["ok"] for sub in report["results"])
        # One audit record for the whole batch.
        (record,) = service.audit.records()
        assert record.method == "deploy_many"
        assert fingerprints_match(service)

    def test_params_objects_and_bare_strings_mix(self):
        service = unlimited()
        report = result_of(
            run(service, "deploy_many", {"sources": [CACHE, {"source": LB}]})
        )
        assert [sub["name"] for sub in report["results"]] == ["cache", "lb"]

    def test_rollback_unwinds_everything(self):
        # Three programs fit the entry quota; the fourth trips it and the
        # whole batch must unwind — nothing deployed, quota unharmed.
        service = ControlService(
            tenants=TenantRegistry(TenantQuota(max_table_entries=60))
        )
        before = service.controller.manager.state_fingerprint()
        report = result_of(
            run(service, "deploy_many", {"sources": [CACHE, CACHE, CACHE, CACHE]})
        )
        assert report["committed"] is False
        assert report["error"]["code"] == "QUOTA_EXCEEDED"
        ok_subs = [sub for sub in report["results"] if sub.get("rolled_back")]
        assert len(ok_subs) == 3 and all(not sub["ok"] for sub in ok_subs)
        assert result_of(run(service, "list"))["programs"] == []
        assert service.controller.manager.state_fingerprint() == before

    def test_rollback_replay_is_exact(self):
        """The rolled-back batch burned ids 1-3; the next live deploy gets
        4 — replay must reproduce that (a naive replay would hand out 1)."""
        service = ControlService(
            tenants=TenantRegistry(TenantQuota(max_table_entries=60))
        )
        report = result_of(
            run(service, "deploy_many", {"sources": [CACHE, CACHE, CACHE, CACHE]})
        )
        assert not report["committed"]
        after = result_of(run(service, "deploy", {"source": LB}))
        assert after["program_id"] == 4
        assert fingerprints_match(service)

    def test_commit_then_more_ops_replay(self):
        service = unlimited()
        report = result_of(run(service, "deploy_many", {"sources": [CACHE, LB]}))
        result_of(
            run(
                service,
                "write_mem",
                {"program_id": 1, "mid": "mem1", "vaddr": 3, "value": 7},
            )
        )
        result_of(run(service, "revoke", {"program_id": report["results"][1]["program_id"]}))
        assert fingerprints_match(service)

    def test_empty_and_malformed_rejected(self):
        service = unlimited()
        assert not run(service, "deploy_many", {"sources": []})["ok"]
        assert not run(service, "deploy_many", {})["ok"]
        # A non-string, non-object source is a per-op failure: the batch
        # reports it (and rolls back) rather than failing the envelope.
        report = result_of(run(service, "deploy_many", {"sources": [42]}))
        assert report["committed"] is False
        assert report["error"]["code"] == "BAD_REQUEST"


class TestAddCases:
    def test_per_op_status(self):
        service = unlimited()
        deployed = result_of(run(service, "deploy", {"source": CACHE}))
        pid = deployed["program_id"]
        good = {
            "conditions": [
                ["har", 1, 0xFF],
                ["sar", 0, 0xFFFFFFFF],
                ["mar", 0x77, 0xFFFFFFFF],
            ],
            "template_case": 0,
            "loadi_values": [32],
        }
        bad = {"conditions": [["no_such_field", 1, 1]], "template_case": 0}
        report = result_of(
            run(service, "add_cases", {"program_id": pid, "cases": [good, bad]})
        )
        assert report["ok_count"] == 1
        first, second = report["results"]
        assert first["ok"] and "case_id" in first
        assert not second["ok"] and "error" in second
        # The successful case is individually removable afterwards.
        result_of(
            run(
                service,
                "remove_case",
                {"program_id": pid, "case_id": first["case_id"]},
            )
        )
        assert fingerprints_match(service)

    def test_unknown_program_rejected(self):
        service = unlimited()
        response = run(service, "add_cases", {"program_id": 9, "cases": [{}]})
        assert response["error"]["code"] == "NOT_FOUND"


class TestWriteMems:
    def test_per_op_status_and_replay(self):
        service = unlimited()
        deployed = result_of(run(service, "deploy", {"source": CACHE}))
        pid = deployed["program_id"]
        report = result_of(
            run(
                service,
                "write_mems",
                {
                    "writes": [
                        {"program_id": pid, "mid": "mem1", "vaddr": 1, "value": 10},
                        {"program_id": pid, "mid": "mem1", "vaddr": 2, "value": 20},
                        {"program_id": pid, "mid": "nope", "vaddr": 0, "value": 1},
                    ]
                },
            )
        )
        assert report["ok_count"] == 2
        assert [sub["ok"] for sub in report["results"]] == [True, True, False]
        read = result_of(
            run(service, "read_mem", {"program_id": pid, "mid": "mem1", "vaddr": 2})
        )
        assert read["value"] == 20
        assert fingerprints_match(service)


class TestBatchEnvelope:
    def test_mixed_ops_per_op_status(self):
        service = unlimited()
        report = result_of(
            run(
                service,
                "batch",
                {
                    "ops": [
                        {"method": "deploy", "params": {"source": CACHE}},
                        {
                            "method": "write_mem",
                            "params": {
                                "program_id": 1,
                                "mid": "mem1",
                                "vaddr": 0,
                                "value": 5,
                            },
                        },
                        {"method": "revoke", "params": {"program_id": 1}},
                        {"method": "revoke", "params": {"program_id": 1}},
                    ]
                },
            )
        )
        assert report["ok_count"] == 3
        assert [sub["ok"] for sub in report["results"]] == [True, True, True, False]
        assert report["results"][3]["error"]["code"] == "NOT_FOUND"
        assert fingerprints_match(service)

    def test_failed_sub_deploy_burns_id_in_replay(self):
        service = ControlService(
            tenants=TenantRegistry(TenantQuota(max_table_entries=17))
        )
        report = result_of(
            run(
                service,
                "batch",
                {
                    "ops": [
                        {"method": "deploy", "params": {"source": CACHE}},
                        {"method": "deploy", "params": {"source": CACHE}},  # over quota
                    ]
                },
            )
        )
        assert report["ok_count"] == 1
        assert not report["results"][1]["ok"]
        follow = result_of(run(service, "deploy", {"source": LB}, tenant="other"))
        assert fingerprints_match(service)
        assert follow["program_id"] >= 2

    def test_disallowed_method_rejected_per_op(self):
        # No nesting (deploy_many/batch inside batch) and no non-batch
        # methods; each lands as a per-op BAD_REQUEST, not an envelope
        # failure — the other ops in the frame still execute.
        service = unlimited()
        for method in ("deploy_many", "batch", "inject", "frobnicate"):
            report = result_of(
                run(service, "batch", {"ops": [{"method": method, "params": {}}]})
            )
            assert report["ok_count"] == 0, method
            assert report["results"][0]["error"]["code"] == "BAD_REQUEST"

    def test_malformed_ops(self):
        service = unlimited()
        assert not run(service, "batch", {"ops": []})["ok"]
        assert not run(service, "batch", {})["ok"]
        # A non-object op is a per-op failure with the rest unaffected.
        report = result_of(
            run(service, "batch", {"ops": ["deploy", {"method": "revoke", "params": {"program_id": 1}}]})
        )
        assert [sub["ok"] for sub in report["results"]] == [False, False]
        assert report["results"][0]["error"]["code"] == "BAD_REQUEST"


class TestBatchOverTcp:
    def test_deploy_many_over_both_codecs(self):
        service = ControlService(
            tenants=TenantRegistry(TenantQuota.unlimited())
        )
        with ServerThread(service) as server:
            for codec in ("ndjson", "binary"):
                with ServiceClient(port=server.port, codec=codec) as client:
                    report = client.deploy_many([CACHE, LB])
                    assert report["committed"], codec
                    revoked = client.batch(
                        [
                            {
                                "method": "revoke",
                                "params": {"program_id": sub["program_id"]},
                            }
                            for sub in reversed(report["results"])
                        ]
                    )
                    assert revoked["ok_count"] == 2
        assert fingerprints_match(service)
