"""The ``inject`` RPC: batched traffic through the service's data plane."""

import asyncio

from repro.programs import PROGRAMS
from repro.service import ControlService, Request
from repro.service.audit import STATE_CHANGING_METHODS, replay

CACHE = PROGRAMS["cache"].source


def run(service, method, params=None, tenant="default"):
    request = Request(id=1, method=method, params=params or {}, tenant=tenant)
    return asyncio.run(service.handle_request(request))


def result_of(response):
    assert response["ok"], response
    return response["result"]


def error_of(response):
    assert not response["ok"], response
    return response["error"]["code"]


class TestInject:
    def test_basic_udp_batch(self):
        service = ControlService()
        result = result_of(
            run(service, "inject", {"packets": [{"kind": "udp", "count": 10}]})
        )
        assert result["processed"] == 10
        assert result["verdicts"] == {"forward": 10}
        assert result["pps"] > 0

    def test_mixed_kinds(self):
        service = ControlService()
        result = result_of(
            run(
                service,
                "inject",
                {
                    "packets": [
                        {"kind": "cache", "op": "read", "key": 7, "count": 3},
                        {"kind": "cache", "op": "write", "key": 7, "value": 9},
                        {"kind": "tcp", "count": 2},
                        {"kind": "calc", "op": 1, "a": 2, "b": 3},
                        {"kind": "l2"},
                    ]
                },
            )
        )
        assert result["processed"] == 8

    def test_program_sees_injected_traffic(self):
        service = ControlService()
        deployed = result_of(run(service, "deploy", {"source": CACHE}))
        program_id = deployed["program_id"]
        result = result_of(
            run(
                service,
                "inject",
                {"packets": [{"kind": "cache", "op": "read", "key": 1, "count": 20}]},
            )
        )
        assert result["processed"] == 20
        # The cache program reflects hits back to the sender.
        assert result["verdicts"].get("reflect", 0) + result["verdicts"].get(
            "forward", 0
        ) == 20
        stats = result_of(run(service, "stats", {"program_id": program_id}))
        assert stats  # program still healthy after traffic

    def test_missing_packets_param(self):
        service = ControlService()
        assert error_of(run(service, "inject", {})) == "BAD_REQUEST"

    def test_empty_list_rejected(self):
        service = ControlService()
        assert error_of(run(service, "inject", {"packets": []})) == "BAD_REQUEST"

    def test_unknown_kind_rejected(self):
        service = ControlService()
        response = run(service, "inject", {"packets": [{"kind": "quic"}]})
        assert error_of(response) == "BAD_REQUEST"

    def test_batch_size_cap(self):
        service = ControlService()
        response = run(
            service,
            "inject",
            {"packets": [{"kind": "udp", "count": ControlService.MAX_INJECT_PACKETS + 1}]},
        )
        assert error_of(response) == "BAD_REQUEST"

    def test_no_dataplane_rejected(self):
        from repro.controlplane import Controller

        ctl, _ = Controller.with_simulator()
        service = ControlService(ctl, None)
        response = run(service, "inject", {"packets": [{"kind": "udp"}]})
        assert error_of(response) == "BAD_REQUEST"


class TestInjectAuditInteraction:
    def test_inject_is_audited_but_not_replayed(self):
        service = ControlService()
        result_of(run(service, "deploy", {"source": CACHE}))
        result_of(run(service, "inject", {"packets": [{"kind": "udp", "count": 5}]}))
        methods = [record.method for record in service.audit.records()]
        assert "inject" in methods
        assert "inject" not in STATE_CHANGING_METHODS
        # Replay restores control-plane state and must skip traffic records.
        restored = replay(service.audit)
        assert (
            restored.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )

    def test_inject_serialized_with_writes(self):
        """inject goes through the admission lock: during a drain it is
        refused like any other write."""
        service = ControlService()
        asyncio.run(service.drain())
        response = run(service, "inject", {"packets": [{"kind": "udp"}]})
        assert error_of(response) == "SHUTTING_DOWN"
