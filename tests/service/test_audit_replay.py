"""Audit journal: JSONL round-trip and state reconstruction by replay."""

import asyncio

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.service import AuditLog, ControlService, Request, TenantQuota, TenantRegistry, replay

CACHE = PROGRAMS["cache"].source
LB = PROGRAMS["lb"].source


def drive(service, script):
    """Run a list of (method, params, tenant) writes/reads in order."""

    async def go():
        responses = []
        for method, params, tenant in script:
            responses.append(
                await service.handle_request(
                    Request(id=len(responses), method=method, params=params, tenant=tenant)
                )
            )
        return responses

    return asyncio.run(go())


class TestJournal:
    def test_jsonl_roundtrip(self):
        log = AuditLog()
        log.append("alice", "deploy", {"source": "..."}, "ok", {"program_id": 1})
        log.append("bob", "revoke", {"program_id": 9}, "error:NOT_FOUND")
        text = log.to_jsonl()
        back = AuditLog.from_jsonl(text)
        assert [r.as_dict() for r in back.records()] == [
            r.as_dict() for r in log.records()
        ]

    def test_sequence_numbers_monotone(self):
        log = AuditLog()
        for _ in range(5):
            log.append("t", "deploy", {}, "ok")
        assert [r.seq for r in log.records()] == [1, 2, 3, 4, 5]


class TestReplay:
    def test_replay_reproduces_fingerprint(self):
        service = ControlService()
        responses = drive(
            service,
            [
                ("deploy", {"source": CACHE}, "alice"),
                ("deploy", {"source": LB}, "bob"),
                ("write_mem", {"program_id": 1, "mid": "mem1", "vaddr": 4, "value": 99}, "alice"),
                ("revoke", {"program_id": 2}, "bob"),
                ("deploy", {"source": CACHE}, "bob"),
            ],
        )
        assert all(r["ok"] for r in responses)
        fresh = replay(service.audit)
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )

    def test_replay_skips_failed_records(self):
        """Failed writes are journaled but not replayed; replay still
        reproduces the final state exactly.  (The id-burning variant —
        a southbound failure after admission — is covered by the
        multi-tenant integration test.)"""
        service = ControlService(
            tenants=TenantRegistry(TenantQuota(max_table_entries=17))
        )
        responses = drive(
            service,
            [
                ("deploy", {"source": CACHE}, "alice"),  # 17 entries: fits
                ("deploy", {"source": CACHE}, "alice"),  # over entry quota
                ("deploy", {"source": CACHE}, "bob"),  # id 2 on the live run
            ],
        )
        assert responses[0]["ok"] and responses[2]["ok"]
        assert not responses[1]["ok"]
        fresh = replay(service.audit)
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )

    def test_replay_from_serialized_journal(self):
        """Replay works from the JSONL export, not just live records."""
        service = ControlService()
        drive(service, [("deploy", {"source": CACHE}, "a")])
        journal = AuditLog.from_jsonl(service.audit.to_jsonl())
        fresh = replay(journal)
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )

    def test_replay_applies_memory_writes(self):
        service = ControlService()
        drive(
            service,
            [
                ("deploy", {"source": CACHE}, "a"),
                ("write_mem", {"program_id": 1, "mid": "mem1", "vaddr": 0, "value": 5}, "a"),
            ],
        )
        fresh = replay(service.audit)
        assert fresh.read_memory(1, "mem1", 0) == 5

    def test_replay_onto_supplied_controller(self):
        service = ControlService()
        drive(service, [("deploy", {"source": CACHE}, "a")])
        target = Controller.with_simulator()[0]
        returned = replay(service.audit, target)
        assert returned is target
        assert [r.name for r in target.running_programs()] == ["cache"]
