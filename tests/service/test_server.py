"""Control-service behaviour: dispatch, quotas, deadlines, drain, TCP."""

import asyncio
import itertools
import json
import socket

import pytest

from repro.programs import PROGRAMS
from repro.service import (
    ControlService,
    Request,
    ServerThread,
    ServiceClient,
    ServiceError,
    TenantQuota,
    TenantRegistry,
)

CACHE = PROGRAMS["cache"].source
LB = PROGRAMS["lb"].source


def run(service, method, params=None, tenant="default", deadline_ms=None):
    """Execute one request against a service on a private event loop."""
    request = Request(
        id=1, method=method, params=params or {}, tenant=tenant, deadline_ms=deadline_ms
    )
    return asyncio.run(service.handle_request(request))


def result_of(response):
    assert response["ok"], response
    return response["result"]


def error_of(response):
    assert not response["ok"], response
    return response["error"]["code"]


class TestDispatch:
    def test_unknown_method(self):
        service = ControlService()
        assert error_of(run(service, "frobnicate")) == "UNKNOWN_METHOD"

    def test_ping(self):
        service = ControlService()
        result = result_of(run(service, "ping"))
        assert result["version"] == 1
        assert result["draining"] is False

    def test_deploy_then_scoped_list(self):
        service = ControlService()
        deployed = result_of(run(service, "deploy", {"source": CACHE}, tenant="alice"))
        assert deployed["name"] == "cache"
        mine = result_of(run(service, "list", tenant="alice"))["programs"]
        assert [p["program_id"] for p in mine] == [deployed["program_id"]]
        # another namespace sees nothing
        assert result_of(run(service, "list", tenant="bob"))["programs"] == []
        # but the admin view names the owner
        all_programs = result_of(run(service, "list", {"all": True}, tenant="bob"))
        assert all_programs["programs"][0]["tenant"] == "alice"

    def test_compile_error_is_structured(self):
        service = ControlService()
        response = run(service, "deploy", {"source": "program p { THIS IS NOT"})
        assert error_of(response) == "COMPILE_ERROR"

    def test_missing_param(self):
        service = ControlService()
        assert error_of(run(service, "deploy", {})) == "BAD_REQUEST"

    def test_cross_tenant_revoke_denied(self):
        service = ControlService()
        deployed = result_of(run(service, "deploy", {"source": CACHE}, tenant="alice"))
        response = run(
            service, "revoke", {"program_id": deployed["program_id"]}, tenant="bob"
        )
        assert error_of(response) == "NOT_FOUND"
        # alice still owns a running program
        assert len(result_of(run(service, "list", tenant="alice"))["programs"]) == 1

    def test_memory_roundtrip_and_snapshot(self):
        service = ControlService()
        pid = result_of(run(service, "deploy", {"source": CACHE}, tenant="a"))[
            "program_id"
        ]
        run(service, "write_mem", {"program_id": pid, "mid": "mem1", "vaddr": 3, "value": 9}, tenant="a")
        value = result_of(
            run(service, "read_mem", {"program_id": pid, "mid": "mem1", "vaddr": 3}, tenant="a")
        )["value"]
        assert value == 9
        values = result_of(
            run(service, "snapshot", {"program_id": pid, "mid": "mem1"}, tenant="a")
        )["values"]
        assert values[3] == 9


class TestQuotas:
    def make_service(self, **quota):
        return ControlService(tenants=TenantRegistry(TenantQuota(**quota)))

    def test_program_quota_rejects_structured(self):
        service = self.make_service(max_programs=1)
        result_of(run(service, "deploy", {"source": CACHE}, tenant="alice"))
        response = run(service, "deploy", {"source": LB}, tenant="alice")
        assert error_of(response) == "QUOTA_EXCEEDED"
        # a different tenant is unaffected
        result_of(run(service, "deploy", {"source": LB}, tenant="bob"))

    def test_entry_quota_uses_actual_footprint(self):
        service = self.make_service(max_table_entries=10)  # cache needs 17
        response = run(service, "deploy", {"source": CACHE}, tenant="alice")
        assert error_of(response) == "QUOTA_EXCEEDED"
        assert result_of(run(service, "list", tenant="alice"))["programs"] == []

    def test_revoke_returns_quota(self):
        service = self.make_service(max_programs=1)
        pid = result_of(run(service, "deploy", {"source": CACHE}, tenant="a"))[
            "program_id"
        ]
        result_of(run(service, "revoke", {"program_id": pid}, tenant="a"))
        result_of(run(service, "deploy", {"source": CACHE}, tenant="a"))  # fits again

    def test_set_quota_rpc(self):
        service = ControlService()
        result_of(
            run(service, "set_quota", {"tenant": "alice", "max_programs": 0})
        )
        response = run(service, "deploy", {"source": CACHE}, tenant="alice")
        assert error_of(response) == "QUOTA_EXCEEDED"


class TestDeadlinesAndDrain:
    def test_write_deadline_enforced_at_admission(self):
        # Every clock() call advances simulated time by 1 s, so by the time
        # the write is admitted its 100 ms budget has long expired.
        ticker = itertools.count()
        service = ControlService(clock=lambda: float(next(ticker)))
        response = run(service, "deploy", {"source": CACHE}, deadline_ms=100)
        assert error_of(response) == "DEADLINE_EXCEEDED"
        # the rejection is audited with its queue time
        record = service.audit.records()[-1]
        assert record.outcome == "error:DEADLINE_EXCEEDED"
        assert record.queue_ms >= 100

    def test_no_deadline_means_no_rejection(self):
        ticker = itertools.count()
        service = ControlService(clock=lambda: float(next(ticker)))
        result_of(run(service, "deploy", {"source": CACHE}))

    def test_drain_refuses_writes_allows_reads(self):
        service = ControlService()

        async def scenario():
            deploy = Request(id=1, method="deploy", params={"source": CACHE})
            response = await service.handle_request(deploy)
            assert response["ok"]
            await service.drain()
            refused = await service.handle_request(
                Request(id=2, method="deploy", params={"source": LB})
            )
            assert refused["error"]["code"] == "SHUTTING_DOWN"
            listing = await service.handle_request(
                Request(id=3, method="list", params={})
            )
            assert listing["ok"]

        asyncio.run(scenario())


class TestAuditAndMetrics:
    def test_audit_records_writes_not_reads(self):
        service = ControlService()
        run(service, "deploy", {"source": CACHE}, tenant="a")
        run(service, "list", tenant="a")
        run(service, "utilization", tenant="a")
        methods = [r.method for r in service.audit.records()]
        assert methods == ["deploy"]

    def test_audit_has_timing_breakdown(self):
        service = ControlService()
        run(service, "deploy", {"source": CACHE}, tenant="a")
        record = service.audit.records()[0]
        assert record.ok
        assert record.execute_ms > 0
        assert record.total_ms == record.queue_ms + record.execute_ms
        assert record.result["program_id"] == 1

    def test_metrics_rpc_reports_counters_and_latency(self):
        service = ControlService()
        run(service, "deploy", {"source": CACHE}, tenant="a")
        run(service, "deploy", {"source": "garbage ("}, tenant="a")
        snap = result_of(run(service, "metrics", tenant="a"))
        assert snap["counters"]["rpc.deploy.ok"] == 1
        assert snap["counters"]["rpc.deploy.error"] == 1
        assert snap["counters"]["rpc.deploy.error.COMPILE_ERROR"] == 1
        assert snap["histograms"]["rpc.deploy.latency_ms"]["count"] == 2
        assert "southbound_retries" in snap


class TestTCPTransport:
    def test_full_session_over_tcp(self):
        with ServerThread(ControlService()) as server:
            with ServiceClient(port=server.port, tenant="alice") as client:
                info = client.deploy(CACHE)
                assert client.stats(info["program_id"])["entries"] == 17
                assert len(client.list_programs()) == 1
                client.revoke(info["program_id"])
                assert client.list_programs() == []

    def test_error_surfaces_as_service_error(self):
        with ServerThread(ControlService()) as server:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError) as exc:
                    client.revoke(12345)
                assert exc.value.code.value == "NOT_FOUND"

    def test_malformed_frame_gets_parse_error_response(self):
        with ServerThread(ControlService()) as server:
            with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
                sock.sendall(b"this is not json\n")
                line = sock.makefile("rb").readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert response["error"]["code"] == "PARSE_ERROR"

    def test_pipelined_requests_one_connection(self):
        with ServerThread(ControlService()) as server:
            with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
                frames = b"".join(
                    json.dumps({"id": i, "method": "ping"}).encode() + b"\n"
                    for i in range(5)
                )
                sock.sendall(frames)
                reader = sock.makefile("rb")
                ids = [json.loads(reader.readline())["id"] for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]  # responses in request order

    def test_stop_drains(self):
        server = ServerThread(ControlService()).start()
        client = ServiceClient(port=server.port)
        client.deploy(CACHE)
        client.close()
        server.stop()
        assert server.service.draining
