"""The control service over a sharded engine (``serve --workers N``).

Every northbound RPC must behave exactly as in single-process mode: the
engine's coordinator controller handles control-plane calls (fanning
them out to the shards) and ``inject`` routes batches through the
worker processes.
"""

import asyncio

import pytest

from repro.engine import ShardedEngine
from repro.programs import PROGRAMS
from repro.service import ControlService, Request

CMS = PROGRAMS["cms"].source
CACHE = PROGRAMS["cache"].source


def run(service, method, params=None, tenant="default"):
    request = Request(id=1, method=method, params=params or {}, tenant=tenant)
    return asyncio.run(service.handle_request(request))


def result_of(response):
    assert response["ok"], response
    return response["result"]


@pytest.fixture()
def service():
    with ShardedEngine(2) as engine:
        yield ControlService(engine=engine)


def test_engine_excludes_explicit_controller():
    from repro.controlplane import Controller

    ctl, dataplane = Controller.with_simulator()
    with ShardedEngine(1) as engine:
        with pytest.raises(ValueError):
            ControlService(ctl, dataplane, engine=engine)


def test_ping_reports_workers(service):
    assert result_of(run(service, "ping"))["workers"] == 2


def test_inject_routes_through_shards(service):
    result_of(run(service, "deploy", {"source": CMS}))
    result = result_of(
        run(service, "inject", {"packets": [{"kind": "udp", "count": 32}]})
    )
    assert result["processed"] == 32
    assert result["verdicts"] == {"forward": 32}
    assert result["workers"] == 2
    # The single-flow template batch lands on one shard; counts add up.
    assert sum(result["shard_counts"]) == 32


def test_deploy_inject_read_cycle(service):
    deployed = result_of(run(service, "deploy", {"source": CMS}))
    program_id = deployed["program_id"]
    result_of(
        run(service, "inject", {"packets": [{"kind": "udp", "count": 12}]})
    )
    snapshot = result_of(
        run(service, "snapshot", {"program_id": program_id, "mid": "cms_row1"})
    )
    assert sum(snapshot["values"]) == 12
    stats = result_of(run(service, "stats", {"program_id": program_id}))
    assert stats["matched_packets"] == 12


def test_cache_traffic_served_from_owning_shard(service):
    deployed = result_of(run(service, "deploy", {"source": CACHE}))
    result_of(
        run(
            service,
            "write_mem",
            {
                "program_id": deployed["program_id"],
                "mid": "mem1",
                "vaddr": 128,
                "value": 5,
            },
        )
    )
    result = result_of(
        run(
            service,
            "inject",
            {"packets": [{"kind": "cache", "op": "read", "key": 0x8888, "count": 4}]},
        )
    )
    assert result["verdicts"] == {"reflect": 4}


def test_revoke_fans_out(service):
    deployed = result_of(run(service, "deploy", {"source": CACHE}))
    result_of(
        run(
            service,
            "write_mem",
            {
                "program_id": deployed["program_id"],
                "mid": "mem1",
                "vaddr": 128,
                "value": 5,
            },
        )
    )
    result_of(run(service, "revoke", {"program_id": deployed["program_id"]}))
    result = result_of(
        run(
            service,
            "inject",
            {"packets": [{"kind": "cache", "op": "read", "key": 0x8888}]},
        )
    )
    assert result["verdicts"] == {"forward": 1}
