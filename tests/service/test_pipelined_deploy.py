"""The pipelined deploy path: solve/install split at the service layer.

With ``pipelined_install`` on (the default), a deploy's solve half runs
under the admission lock and its install half under a separate FIFO
lock, so tenant B's compile/solve overlaps tenant A's entry writes.
These tests pin the contract:

* results and final state are identical to the serialized reference path;
* the overlap actually happens (B's solve completes inside A's install
  window);
* the audit journal replays byte-identically, including a deploy whose
  install failed halfway (admission + abort are both re-enacted);
* a program cannot be mutated while still INSTALLING;
* ``drain`` waits for in-flight installs;
* the ``metrics`` RPC exposes the deploy/solver cache counters.
"""

import asyncio

from repro.controlplane import Controller, FaultPlan, NullBinding
from repro.controlplane.manager import ProgramState
from repro.programs import PROGRAMS
from repro.service import (
    ControlService,
    Request,
    TenantQuota,
    TenantRegistry,
    replay,
)


def make_service(**kwargs):
    kwargs.setdefault("tenants", TenantRegistry(TenantQuota.unlimited()))
    kwargs.setdefault("retry_sleep", lambda _s: None)
    return ControlService(Controller(NullBinding()), **kwargs)


def rpc(rid, method, **params):
    return Request(id=rid, method=method, params=params)


async def must(service, request):
    response = await service.handle_request(request)
    assert response["ok"], response
    return response["result"]


class TestEquivalenceWithReferencePath:
    def test_same_results_and_state_as_serialized_deploys(self):
        fast = make_service()
        slow = make_service(pipelined_install=False)

        async def run(service):
            out = []
            for i, name in enumerate(("cache", "lb", "cms", "lb")):
                out.append(
                    await must(service, rpc(i, "deploy", source=PROGRAMS[name].source))
                )
            await must(service, rpc(90, "revoke", program_id=out[1]["program_id"]))
            out.append(
                await must(service, rpc(91, "deploy", source=PROGRAMS["hh"].source))
            )
            return out

        a = asyncio.run(run(fast))
        b = asyncio.run(run(slow))
        timing = {"parse_ms", "allocation_ms", "update_ms"}
        for x, y in zip(a, b):
            assert {k: v for k, v in x.items() if k not in timing} == {
                k: v for k, v in y.items() if k not in timing
            }
        assert (
            fast.controller.manager.state_fingerprint()
            == slow.controller.manager.state_fingerprint()
        )
        # Both journals replay to the same state.
        for service in (fast, slow):
            fresh = replay(service.audit, Controller(NullBinding()))
            assert (
                fresh.manager.state_fingerprint()
                == service.controller.manager.state_fingerprint()
            )

    def test_concurrent_deploys_from_two_tenants(self):
        service = make_service()

        async def run():
            requests = [
                Request(
                    id=i,
                    method="deploy",
                    params={"source": PROGRAMS[name].source},
                    tenant=f"tenant{i}",
                )
                for i, name in enumerate(("cache", "lb", "cms", "hh"))
            ]
            return await asyncio.gather(
                *(service.handle_request(r) for r in requests)
            )

        responses = asyncio.run(run())
        assert all(r["ok"] for r in responses)
        ids = [r["result"]["program_id"] for r in responses]
        assert len(set(ids)) == len(ids)
        fresh = replay(service.audit, Controller(NullBinding()))
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )


class TestOverlap:
    def test_solve_of_b_runs_inside_install_window_of_a(self):
        service = make_service()
        events = []

        inner_prepare = service.controller.prepare_deploy
        inner_install = service.controller.install_steps

        def prepare(*args, **kwargs):
            prepared = inner_prepare(*args, **kwargs)
            events.append(("prepared", prepared.program_id))
            return prepared

        def install(prepared):
            events.append(("install_start", prepared.program_id))
            yield from inner_install(prepared)
            events.append(("install_end", prepared.program_id))

        service.controller.prepare_deploy = prepare
        service.controller.install_steps = install

        async def run():
            a = service.handle_request(rpc(1, "deploy", source=PROGRAMS["lb"].source))
            b = service.handle_request(rpc(2, "deploy", source=PROGRAMS["cms"].source))
            return await asyncio.gather(a, b)

        responses = asyncio.run(run())
        assert all(r["ok"] for r in responses)
        start_a = events.index(("install_start", 1))
        end_a = events.index(("install_end", 1))
        prepared_b = events.index(("prepared", 2))
        assert start_a < prepared_b < end_a, events
        # Installs stay serialized in admission order behind the overlap.
        assert events.index(("install_start", 2)) > end_a


class TestFailedInstall:
    def test_abort_is_audited_and_replayable(self):
        service = make_service()
        plan = FaultPlan(every_k=1, ops=frozenset({"insert"}))

        async def run():
            ok = await must(
                service, rpc(1, "deploy", source=PROGRAMS["cache"].source)
            )
            before = service.controller.manager.state_fingerprint()
            service.controller.updater.binding.inner.fault_plan = plan
            failed = await service.handle_request(
                rpc(2, "deploy", source=PROGRAMS["lb"].source)
            )
            service.controller.updater.binding.inner.fault_plan = None
            return ok, before, failed

        ok, before, failed = asyncio.run(run())
        assert not failed["ok"]
        assert failed["error"]["code"] == "SOUTHBOUND_FAILURE"
        # The failed install rolled everything back.
        assert service.controller.manager.state_fingerprint() == before
        # Journal shape: deploy ok, deploy error (with the minted id), abort.
        methods = [(r.method, r.ok) for r in service.audit.records()]
        assert methods == [("deploy", True), ("deploy", False), ("abort_deploy", True)]
        error_record = service.audit.records()[1]
        assert error_record.result["program_id"] > ok["program_id"]
        assert error_record.outcome.startswith("error:SOUTHBOUND_FAILURE")
        # The tenant's charge was released with the abort.
        usage = service.tenants.get("default").usage()
        assert usage["programs"] == 1
        # Replay re-enacts the admission and the abort at their recorded
        # positions, landing on the live fingerprint.
        fresh = replay(service.audit, Controller(NullBinding()))
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )


class TestInstallingGuard:
    def test_revoke_during_install_is_refused(self):
        service = make_service()

        async def run():
            deploy = asyncio.ensure_future(
                service.handle_request(rpc(1, "deploy", source=PROGRAMS["lb"].source))
            )
            installing_id = None
            for _ in range(10_000):
                await asyncio.sleep(0)
                for record in service.controller.manager.programs():
                    if record.state is ProgramState.INSTALLING:
                        installing_id = record.program_id
                        break
                if installing_id is not None:
                    break
            assert installing_id is not None, "never observed an INSTALLING program"
            refused = await service.handle_request(
                rpc(2, "revoke", program_id=installing_id)
            )
            deployed = await deploy
            accepted = await service.handle_request(
                rpc(3, "revoke", program_id=installing_id)
            )
            return refused, deployed, accepted

        refused, deployed, accepted = asyncio.run(run())
        assert deployed["ok"]
        assert not refused["ok"]
        assert "still installing" in refused["error"]["message"]
        assert accepted["ok"]


class TestDrain:
    def test_drain_waits_for_inflight_install(self):
        service = make_service()

        async def run():
            deploy = asyncio.ensure_future(
                service.handle_request(rpc(1, "deploy", source=PROGRAMS["lb"].source))
            )
            await asyncio.sleep(0)  # let the deploy reach its install half
            await service.drain()
            states = [r.state for r in service.controller.manager.programs()]
            refused = await service.handle_request(
                rpc(2, "deploy", source=PROGRAMS["cms"].source)
            )
            return await deploy, states, refused

        deployed, states, refused = asyncio.run(run())
        assert deployed["ok"]
        assert all(state is ProgramState.RUNNING for state in states)
        assert not refused["ok"]
        assert refused["error"]["code"] == "SHUTTING_DOWN"


class TestMetricsCaches:
    def test_metrics_exposes_cache_counters(self):
        service = make_service()

        async def run():
            await must(service, rpc(1, "deploy", source=PROGRAMS["cms"].source))
            return await must(service, rpc(2, "metrics"))

        snapshot = asyncio.run(run())
        caches = snapshot["caches"]
        deploy_cache = caches["deploy_cache"]
        assert deploy_cache["enabled"] is True
        assert deploy_cache["frontend_entries"] == 1
        assert deploy_cache["shape_entries"] == 1
        solver = caches["solver"]
        assert {"feasibility_shapes", "sorted_pair_orders", "warm_start_hints"} <= set(
            solver
        )
