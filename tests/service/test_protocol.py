"""Wire-protocol framing and envelope validation."""

import pytest

from repro.service.protocol import (
    ErrorCode,
    Request,
    ServiceError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
)


class TestFraming:
    def test_roundtrip(self):
        payload = {"id": 7, "method": "ping", "params": {}}
        frame = encode_frame(payload)
        assert frame.endswith(b"\n")
        assert decode_frame(frame) == payload

    def test_garbage_is_parse_error(self):
        with pytest.raises(ServiceError) as exc:
            decode_frame(b"{not json}\n")
        assert exc.value.code is ErrorCode.PARSE_ERROR

    def test_non_object_frame_rejected(self):
        with pytest.raises(ServiceError) as exc:
            decode_frame(b"[1, 2, 3]\n")
        assert exc.value.code is ErrorCode.PARSE_ERROR


class TestRequestEnvelope:
    def test_defaults(self):
        request = Request.from_wire({"id": 1, "method": "list"})
        assert request.tenant == "default"
        assert request.params == {}
        assert request.deadline_ms is None

    def test_missing_method(self):
        with pytest.raises(ServiceError) as exc:
            Request.from_wire({"id": 1})
        assert exc.value.code is ErrorCode.BAD_REQUEST

    @pytest.mark.parametrize(
        "payload",
        [
            {"method": "x", "params": [1]},
            {"method": "x", "tenant": ""},
            {"method": "x", "deadline_ms": -5},
            {"method": "x", "deadline_ms": "soon"},
        ],
    )
    def test_malformed_fields(self, payload):
        with pytest.raises(ServiceError):
            Request.from_wire(payload)


class TestErrorsOnTheWire:
    def test_error_roundtrip(self):
        error = ServiceError(ErrorCode.QUOTA_EXCEEDED, "too many programs")
        response = error_response(3, error)
        assert response["ok"] is False
        back = ServiceError.from_wire(response["error"])
        assert back.code is ErrorCode.QUOTA_EXCEEDED
        assert back.message == "too many programs"

    def test_ok_response_shape(self):
        assert ok_response(9, {"x": 1}) == {"id": 9, "ok": True, "result": {"x": 1}}
