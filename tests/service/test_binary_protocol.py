"""Binary framing over TCP: negotiation, limits, and malformed frames.

The server sniffs the first byte of every connection — these tests drive
one server with both codecs at once, then poke the binary framing layer
with a raw socket: wrong preamble version, oversized frame headers,
frames that stop mid-payload.  The framing layer must answer protocol
errors with a structured PARSE_ERROR response where it still can, and
drop the connection (rather than hang or spin) where it cannot.
"""

import socket
import struct

import pytest

from repro.programs import PROGRAMS
from repro.service import (
    ControlService,
    ServerThread,
    ServiceClient,
    ServiceError,
    TenantQuota,
    TenantRegistry,
)
from repro.service.protocol import MAX_FRAME_BYTES
from repro.service.wire import (
    FRAME_HEADER,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    MAGIC,
    PREAMBLE,
    decode_wire_frame,
    encode_wire_frame,
)

CACHE = PROGRAMS["cache"].source


@pytest.fixture()
def server():
    service = ControlService(
        tenants=TenantRegistry(TenantQuota.unlimited())
    )
    with ServerThread(service) as running:
        yield running


def read_frame(sock):
    """Read one binary frame off a raw socket; returns (kind, payload)."""
    reader = sock.makefile("rb")
    header = reader.read(FRAME_HEADER.size)
    if len(header) < FRAME_HEADER.size:
        return None
    kind, length = FRAME_HEADER.unpack(header)
    body = reader.read(length)
    return decode_wire_frame(header + body)


class TestNegotiation:
    def test_binary_client_end_to_end(self, server):
        with ServiceClient(port=server.port, codec="binary") as client:
            assert client.ping()["version"] == 1
            deployed = client.deploy(CACHE)
            assert deployed["name"] == "cache"
            programs = client.list_programs()
            assert [p["program_id"] for p in programs] == [deployed["program_id"]]
            client.revoke(deployed["program_id"])

    def test_both_codecs_on_one_server(self, server):
        # Negotiation is per-connection: a line-protocol client and a
        # binary client interleave against the same service state.
        with ServiceClient(port=server.port, codec="ndjson") as ndjson:
            with ServiceClient(port=server.port, codec="binary") as binary:
                deployed = binary.deploy(CACHE)
                seen = ndjson.list_programs()
                assert [p["program_id"] for p in seen] == [deployed["program_id"]]
                ndjson.revoke(deployed["program_id"])
                assert binary.list_programs() == []

    def test_identical_results_across_codecs(self, server):
        with ServiceClient(port=server.port, codec="ndjson") as ndjson:
            with ServiceClient(port=server.port, codec="binary") as binary:
                a = ndjson.deploy(CACHE)
                ndjson.revoke(a["program_id"])
                b = binary.deploy(CACHE)
                binary.revoke(b["program_id"])
                # Same RPC surface, same result shape; only ids differ
                # (and timings, which are measurements not payloads).
                volatile = {"program_id", "parse_ms", "allocation_ms", "update_ms", "cache_hit"}
                assert {k: v for k, v in a.items() if k not in volatile} == {
                    k: v for k, v in b.items() if k not in volatile
                }

    def test_structured_errors_cross_the_binary_codec(self, server):
        with ServiceClient(port=server.port, codec="binary") as client:
            with pytest.raises(ServiceError) as info:
                client.revoke(999)
            assert info.value.code == "NOT_FOUND"


class TestFramingEdges:
    def test_bad_preamble_version_rejected(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(MAGIC + bytes([99]))
            kind, payload = read_frame(sock)
            assert kind == FRAME_RESPONSE
            assert payload["ok"] is False
            assert payload["error"]["code"] == "PARSE_ERROR"
            # The server hangs up after the rejection.
            assert sock.makefile("rb").read(1) == b""

    def test_oversized_frame_rejected_without_reading_it(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(PREAMBLE)
            # A header claiming a payload over the limit: the server must
            # refuse from the header alone (it never buffers the body).
            sock.sendall(FRAME_HEADER.pack(FRAME_REQUEST, MAX_FRAME_BYTES + 1))
            kind, payload = read_frame(sock)
            assert kind == FRAME_RESPONSE
            assert payload["error"]["code"] == "PARSE_ERROR"
            assert sock.makefile("rb").read(1) == b""

    def test_wrong_frame_kind_rejected(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(PREAMBLE)
            sock.sendall(bytes(encode_wire_frame(FRAME_RESPONSE, {"id": 1})))
            kind, payload = read_frame(sock)
            assert kind == FRAME_RESPONSE
            assert payload["error"]["code"] == "PARSE_ERROR"

    def test_truncated_frame_drops_connection(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(PREAMBLE)
            frame = bytes(
                encode_wire_frame(
                    FRAME_REQUEST,
                    {"id": 1, "method": "ping", "params": {}, "tenant": "default"},
                )
            )
            # Ship the header plus half the payload, then half-close: the
            # server sees EOF mid-frame and must drop the connection
            # without hanging or answering garbage.
            sock.sendall(frame[: FRAME_HEADER.size + (len(frame) - FRAME_HEADER.size) // 2])
            sock.shutdown(socket.SHUT_WR)
            assert sock.makefile("rb").read(1) == b""

    def test_garbage_payload_gets_parse_error(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(PREAMBLE)
            sock.sendall(FRAME_HEADER.pack(FRAME_REQUEST, 1) + b"\xc1")
            kind, payload = read_frame(sock)
            assert kind == FRAME_RESPONSE
            assert payload["error"]["code"] == "PARSE_ERROR"

    def test_server_survives_a_bad_connection(self, server):
        # A protocol error on one connection must not poison the next.
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(MAGIC + bytes([99]))
            read_frame(sock)
        with ServiceClient(port=server.port, codec="binary") as client:
            assert client.ping()["version"] == 1
