"""Counters and latency histograms."""

from repro.service.metrics import Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.snapshot()["counters"]["x"] == 5


class TestHistogram:
    def test_empty(self):
        h = Histogram("lat")
        assert h.quantile(0.5) is None
        assert h.mean is None

    def test_stats(self):
        h = Histogram("lat")
        for v in [1, 2, 3, 4, 100]:
            h.observe(v)
        assert h.total == 5
        assert h.min == 1
        assert h.max == 100
        assert h.mean == 22

    def test_quantiles_monotone_and_bracketed(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        p50, p90, p99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert p50 <= p90 <= p99 <= h.max
        # p50 of uniform 1..100 should land well inside the middle buckets
        assert 25 <= p50 <= 100

    def test_overflow_bucket(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        h.observe(5000.0)
        assert h.counts[-1] == 1
        # overflow-bucket quantiles interpolate between the last bound and
        # the observed max — bracketed, never beyond max
        assert 10.0 < h.quantile(0.99) <= 5000.0


class TestRegistrySnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("rpc.deploy.ok").inc()
        registry.histogram("rpc.deploy.latency_ms").observe(3.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"rpc.deploy.ok": 1}
        hist = snap["histograms"]["rpc.deploy.latency_ms"]
        assert hist["count"] == 1
        assert hist["p50"] is not None
