"""Tenant namespace and quota accounting."""

import pytest

from repro.service.protocol import ErrorCode, ServiceError
from repro.service.tenants import (
    QuotaExceededError,
    TenantProgram,
    TenantQuota,
    TenantRegistry,
)


@pytest.fixture
def registry():
    return TenantRegistry(TenantQuota(max_programs=2, max_memory_buckets=100, max_table_entries=30))


class TestQuotas:
    def test_program_count_quota(self, registry):
        tenant = registry.get("alice")
        tenant.charge(TenantProgram(1, "a", 5, 10))
        tenant.charge(TenantProgram(2, "b", 5, 10))
        with pytest.raises(QuotaExceededError) as exc:
            tenant.check_admission(entries=1, memory_buckets=1)
        assert exc.value.code is ErrorCode.QUOTA_EXCEEDED
        assert exc.value.dimension == "program"

    def test_memory_quota(self, registry):
        tenant = registry.get("alice")
        tenant.charge(TenantProgram(1, "a", 5, 90))
        with pytest.raises(QuotaExceededError) as exc:
            tenant.check_admission(entries=1, memory_buckets=20)
        assert exc.value.dimension == "memory-bucket"

    def test_entry_quota(self, registry):
        tenant = registry.get("alice")
        tenant.charge(TenantProgram(1, "a", 25, 1))
        with pytest.raises(QuotaExceededError) as exc:
            tenant.check_admission(entries=10, memory_buckets=0)
        assert exc.value.dimension == "table-entry"

    def test_release_frees_quota(self, registry):
        tenant = registry.get("alice")
        tenant.charge(TenantProgram(1, "a", 25, 90))
        tenant.release(1)
        tenant.check_admission(entries=30, memory_buckets=100)  # fits again

    def test_unlimited_quota(self):
        tenant = TenantRegistry(TenantQuota.unlimited()).get("big")
        for i in range(50):
            tenant.charge(TenantProgram(i, "p", 10_000, 10_000))
        tenant.check_admission(entries=10**6, memory_buckets=10**6)


class TestNamespaces:
    def test_tenants_isolated(self, registry):
        registry.get("alice").charge(TenantProgram(1, "a", 1, 1))
        bob = registry.get("bob")
        assert not bob.owns(1)
        with pytest.raises(ServiceError) as exc:
            bob.require(1)
        assert exc.value.code is ErrorCode.NOT_FOUND

    def test_owner_lookup(self, registry):
        registry.get("alice").charge(TenantProgram(7, "a", 1, 1))
        assert registry.owner_of(7) == "alice"
        assert registry.owner_of(8) is None

    def test_set_quota_pins_tenant(self, registry):
        registry.set_quota("vip", TenantQuota(max_programs=99))
        assert registry.get("vip").quota.max_programs == 99
        # other tenants keep the default
        assert registry.get("pleb").quota.max_programs == 2

    def test_usage_snapshot(self, registry):
        tenant = registry.get("alice")
        tenant.charge(TenantProgram(1, "a", 7, 32))
        assert tenant.usage() == {
            "programs": 1,
            "memory_buckets": 32,
            "table_entries": 7,
        }
