"""Streaming subscriptions: push-mode stats/metrics/audit channels.

``subscribe`` flips a connection into push mode — the server emits
periodic event frames (binary FRAME_EVENT or NDJSON lines carrying an
``event`` key) until ``unsubscribe`` or disconnect.  These tests pin the
event envelope (stream name, monotonically increasing ``seq``), the
audit stream's tail-only semantics (only records appended *after* the
subscribe), and that unsubscribe actually stops the flow.
"""

import itertools
import time

import pytest

from repro.programs import PROGRAMS
from repro.service import (
    ControlService,
    ServerThread,
    ServiceClient,
    ServiceError,
    TenantQuota,
    TenantRegistry,
)

CACHE = PROGRAMS["cache"].source


@pytest.fixture()
def server():
    service = ControlService(
        tenants=TenantRegistry(TenantQuota.unlimited())
    )
    with ServerThread(service) as running:
        yield running


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestSubscribe:
    @pytest.mark.parametrize("codec", ["ndjson", "binary"])
    def test_stats_stream(self, server, codec):
        with ServiceClient(port=server.port, codec=codec, timeout=10) as client:
            ack = client.subscribe(["stats"], interval_ms=20)
            assert ack["streams"] == ["stats"]
            assert ack["push"] == codec
            events = take(client.events(), 3)
            assert [e["event"] for e in events] == ["stats", "stats", "stats"]
            assert [e["seq"] for e in events] == sorted({e["seq"] for e in events})
            assert all("programs" in e["data"] for e in events)

    @pytest.mark.parametrize("codec", ["ndjson", "binary"])
    def test_metrics_stream_carries_deltas(self, server, codec):
        with ServiceClient(port=server.port, codec=codec, timeout=10) as client:
            client.subscribe(["metrics"], interval_ms=20)
            event = take(client.events(), 1)[0]
            assert event["event"] == "metrics"
            data = event["data"]
            assert set(data) == {"counters_delta", "gauges", "audit_records"}

    def test_audit_stream_tails_new_records_only(self, server):
        # A deploy before the subscribe is history, not a push; one after
        # it must arrive as an audit event.
        with ServiceClient(port=server.port, tenant="ops", timeout=10) as writer:
            before = writer.deploy(CACHE)
            with ServiceClient(port=server.port, codec="binary", timeout=10) as watcher:
                watcher.subscribe(["audit"], interval_ms=20)
                after = writer.deploy(CACHE)
                event = take(watcher.events(), 1)[0]
                assert event["event"] == "audit"
                methods = [r["method"] for r in event["data"]["records"]]
                assert methods == ["deploy"]
                ids = [r["result"]["program_id"] for r in event["data"]["records"]]
                assert ids == [after["program_id"]]
                assert before["program_id"] not in ids

    def test_seq_increases_across_streams(self, server):
        with ServiceClient(port=server.port, codec="binary", timeout=10) as client:
            client.subscribe(["stats", "metrics"], interval_ms=20)
            events = take(client.events(), 6)
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            assert {e["event"] for e in events} == {"stats", "metrics"}

    def test_unsubscribe_stops_pushes(self, server):
        with ServiceClient(port=server.port, codec="binary", timeout=10) as client:
            client.subscribe(["stats"], interval_ms=20)
            take(client.events(), 2)
            ack = client.unsubscribe()
            assert ack["unsubscribed"] is True
            # Any event raced in before the ack is already buffered; after
            # a few would-be intervals no NEW pushes may show up.
            client.ping()
            buffered = len(client._events)
            time.sleep(0.1)
            client.ping()
            assert len(client._events) == buffered

    def test_interval_floor_enforced(self, server):
        with ServiceClient(port=server.port, codec="binary", timeout=10) as client:
            with pytest.raises(ServiceError) as info:
                client.subscribe(["stats"], interval_ms=1)
            assert info.value.code == "BAD_REQUEST"

    def test_unknown_stream_rejected(self, server):
        with ServiceClient(port=server.port, timeout=10) as client:
            with pytest.raises(ServiceError) as info:
                client.subscribe(["nonsense"])
            assert info.value.code == "BAD_REQUEST"

    def test_rpcs_still_work_while_subscribed(self, server):
        # Push mode does not steal the connection: a request interleaved
        # with pushes gets its response (events buffer on the client).
        with ServiceClient(port=server.port, codec="binary", timeout=10) as client:
            client.subscribe(["stats"], interval_ms=20)
            time.sleep(0.06)  # let a few pushes queue up
            deployed = client.deploy(CACHE)
            assert deployed["name"] == "cache"
            assert take(client.events(), 1)[0]["event"] == "stats"
