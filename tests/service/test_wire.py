"""Binary wire codec: tag round-trips, malformed-data rejection, buffers.

The codec is the substrate under both the northbound binary framing and
the southbound fan-out pipes, so these tests pin the encoding itself —
every tag, the int64/bigint split, tuple preservation, the pickle
extension's opt-in gate — plus the property that any JSON-model value
survives a round trip bit-exactly.
"""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.wire import (
    FRAME_EVENT,
    FRAME_HEADER,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    PREAMBLE,
    WireError,
    decode_payload,
    decode_wire_frame,
    encode_payload,
    encode_wire_frame,
)


def round_trip(obj, **kwargs):
    return decode_payload(bytes(encode_payload(obj, **kwargs)), **{
        k: v for k, v in kwargs.items() if k == "allow_pickle"
    })


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            1.5,
            -0.0,
            "",
            "héllo ☃",
            b"",
            b"\x00\xff" * 17,
        ],
    )
    def test_round_trip(self, value):
        assert round_trip(value) == value

    def test_bigint_beyond_int64(self):
        for value in (2**63, -(2**63) - 1, 2**200, -(2**200)):
            decoded = round_trip(value)
            assert decoded == value and isinstance(decoded, int)

    def test_int64_boundaries_stay_fixed_width(self):
        # Exactly-representable int64s use the 9-byte fixed encoding.
        assert len(encode_payload(2**63 - 1)) == 9
        assert len(encode_payload(-(2**63))) == 9
        assert len(encode_payload(2**63)) > 9  # first bigint

    def test_bool_is_not_int(self):
        # bool subclasses int; the codec must keep identity.
        assert round_trip(True) is True
        assert round_trip([0, 1, True]) == [0, 1, True]
        assert [type(v) for v in round_trip([0, True])] == [int, bool]


class TestContainers:
    def test_nested_structures(self):
        obj = {
            "a": [1, {"b": None}, "x"],
            "n": {"deep": [[], {}, [b"raw"]]},
            "f": 3.25,
        }
        assert round_trip(obj) == obj

    def test_tuples_become_lists_by_default(self):
        assert round_trip((1, 2, (3,))) == [1, 2, [3]]

    def test_preserve_tuples(self):
        obj = ("ctl_run", 7, ((1, 2), [3, (4,)]))
        decoded = round_trip(obj, preserve_tuples=True)
        assert decoded == obj
        assert isinstance(decoded, tuple) and isinstance(decoded[2][0], tuple)

    def test_non_string_dict_keys(self):
        assert round_trip({1: "one", (2, 3): "pair"}, preserve_tuples=True) == {
            1: "one",
            (2, 3): "pair",
        }


class TestMalformed:
    def test_trailing_bytes_rejected(self):
        data = bytes(encode_payload(42)) + b"\x00"
        with pytest.raises(WireError, match="trailing"):
            decode_payload(data)

    @pytest.mark.parametrize("cut", [1, 4, 8])
    def test_truncation_rejected(self, cut):
        data = bytes(encode_payload({"key": [1, 2.5, "value"]}))
        with pytest.raises(WireError, match="truncated"):
            decode_payload(data[:-cut])

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError, match="unknown wire tag"):
            decode_payload(b"\xc1")

    def test_empty_payload_rejected(self):
        with pytest.raises(WireError, match="truncated"):
            decode_payload(b"")

    def test_unencodable_without_pickle(self):
        with pytest.raises(WireError, match="cannot encode"):
            encode_payload(object())

    def test_pickle_refused_on_decode_by_default(self):
        data = bytes(encode_payload(object(), allow_pickle=True))
        with pytest.raises(WireError, match="pickle extension not allowed"):
            decode_payload(data)

    def test_pickle_round_trip_when_enabled(self):
        decoded = round_trip({3, 1, 4}, allow_pickle=True)
        assert decoded == {3, 1, 4}


class TestFrames:
    def test_frame_round_trip(self):
        for kind in (FRAME_REQUEST, FRAME_RESPONSE, FRAME_EVENT):
            frame = bytes(encode_wire_frame(kind, {"id": 1}))
            assert decode_wire_frame(frame) == (kind, {"id": 1})

    def test_header_length_matches_payload(self):
        frame = bytes(encode_wire_frame(FRAME_REQUEST, [1, 2, 3]))
        kind, length = FRAME_HEADER.unpack_from(frame, 0)
        assert kind == FRAME_REQUEST
        assert length == len(frame) - FRAME_HEADER.size

    def test_unknown_kind_rejected(self):
        frame = bytearray(encode_wire_frame(FRAME_REQUEST, None))
        frame[0] = 99
        with pytest.raises(WireError, match="unknown frame kind"):
            decode_wire_frame(bytes(frame))

    def test_oversized_frame_rejected(self):
        frame = bytes(encode_wire_frame(FRAME_REQUEST, "x" * 100))
        with pytest.raises(WireError, match="exceeds limit"):
            decode_wire_frame(frame, max_frame_bytes=50)

    def test_length_mismatch_rejected(self):
        frame = bytes(encode_wire_frame(FRAME_REQUEST, "abc"))
        with pytest.raises(WireError, match="length mismatch"):
            decode_wire_frame(frame + b"\x00")

    def test_preamble_first_byte_is_not_json(self):
        # Negotiation invariant: the sniffed first byte must never
        # collide with NDJSON, whose frames always start with "{".
        assert PREAMBLE[:1] != b"{"
        assert PREAMBLE[0] == 0x50


class TestBufferReuse:
    def test_out_buffer_is_cleared_and_reused(self):
        buf = bytearray(b"stale leftovers")
        first = encode_payload({"a": 1}, out=buf)
        assert first is buf
        snapshot = bytes(buf)
        encode_payload([2, 3], out=buf)
        assert bytes(buf) != snapshot
        assert decode_payload(bytes(buf)) == [2, 3]

    def test_frame_out_buffer(self):
        buf = bytearray()
        frame = encode_wire_frame(FRAME_EVENT, {"seq": 1}, out=buf)
        assert frame is buf
        assert decode_wire_frame(bytes(buf)) == (FRAME_EVENT, {"seq": 1})


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=25,
)


@given(json_values)
def test_round_trip_property(obj):
    """Any JSON-model value (plus bytes) survives encode/decode exactly."""
    assert round_trip(obj) == obj


@given(json_values)
def test_frame_round_trip_property(obj):
    kind, decoded = decode_wire_frame(bytes(encode_wire_frame(FRAME_RESPONSE, obj)))
    assert kind == FRAME_RESPONSE and decoded == obj
