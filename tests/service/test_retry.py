"""Southbound retry with exponential backoff, driven by injected faults."""

import pytest

from repro.controlplane import (
    Controller,
    FaultPlan,
    NullBinding,
    SouthboundError,
)
from repro.programs import PROGRAMS
from repro.service.robustness import RetryingBinding, RetryPolicy


def make_binding(every_k, max_faults=None, **policy_kwargs):
    sleeps = []
    inner = NullBinding(FaultPlan(every_k=every_k, max_faults=max_faults))
    binding = RetryingBinding(
        inner, RetryPolicy(**policy_kwargs), sleep=sleeps.append
    )
    return binding, sleeps


class TestRetryingBinding:
    def test_transient_fault_is_retried(self):
        binding, sleeps = make_binding(every_k=2)
        # Every even-numbered southbound call fails.  Each top-level insert
        # after the first lands on an even call, fails once, and succeeds on
        # its (odd-numbered) retry: 5 retries across 6 inserts.
        for _ in range(6):
            binding.insert_entry(object())
        assert binding.stats.retries == 5
        assert binding.stats.gave_up == 0
        assert len(sleeps) == 5

    def test_backoff_is_exponential_and_capped(self):
        binding, sleeps = make_binding(
            every_k=1,
            max_faults=3,
            base_delay_s=0.01,
            multiplier=2.0,
            max_delay_s=0.015,
        )
        binding.insert_entry(object())
        assert sleeps == [0.01, 0.015, 0.015]  # 0.02 and 0.04 capped

    def test_gives_up_after_max_attempts(self):
        binding, sleeps = make_binding(every_k=1, max_attempts=3)
        with pytest.raises(SouthboundError):
            binding.insert_entry(object())
        assert binding.stats.gave_up == 1
        assert len(sleeps) == 2  # two backoffs, third attempt raises

    def test_non_transient_error_propagates_immediately(self):
        class Broken:
            def insert_entry(self, entry):
                raise RuntimeError("semantic bug")

        binding = RetryingBinding(Broken(), RetryPolicy(), sleep=lambda s: None)
        with pytest.raises(RuntimeError):
            binding.insert_entry(object())
        assert binding.stats.attempts == 1

    def test_reads_delegate_untouched(self):
        inner = NullBinding()
        inner.read_bucket = lambda rpb, addr: 42
        binding = RetryingBinding(inner, sleep=lambda s: None)
        assert binding.read_bucket(1, 0) == 42


class TestControllerThroughRetries:
    def test_deploy_survives_intermittent_faults(self):
        """Every 5th southbound update fails transiently; the retry layer
        makes the whole deploy/revoke cycle succeed anyway."""
        inner = NullBinding(FaultPlan(every_k=5))
        binding = RetryingBinding(inner, RetryPolicy(), sleep=lambda s: None)
        ctl = Controller(binding)
        handle = ctl.deploy(PROGRAMS["cache"].source)
        assert [r.name for r in ctl.running_programs()] == ["cache"]
        ctl.revoke(handle)
        assert ctl.running_programs() == []
        assert binding.stats.retries > 0
        assert binding.stats.gave_up == 0

    def test_dead_link_degrades_to_clean_failed_deploy(self):
        """When retries are exhausted the install rollback still runs and
        the manager fingerprint is untouched."""
        inner = NullBinding(FaultPlan(every_k=1))  # every call fails
        binding = RetryingBinding(
            inner, RetryPolicy(max_attempts=2), sleep=lambda s: None
        )
        ctl = Controller(binding)
        before = ctl.manager.state_fingerprint()
        with pytest.raises(SouthboundError):
            ctl.deploy(PROGRAMS["cache"].source)
        assert ctl.manager.state_fingerprint() == before
