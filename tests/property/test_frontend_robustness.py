"""Fuzzing the language front end: arbitrary input must fail *cleanly*.

Whatever bytes arrive, the toolchain may only raise its own typed errors
(LexError / ParseError / SemanticError) — never IndexError, KeyError,
RecursionError, or the like.  Runtime-CLI robustness rides on this.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.lang.diagnostics import check_source
from repro.lang.errors import P4runproError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_source
from repro.lang.semantics import check_unit

printable_text = st.text(alphabet=string.printable, max_size=300)

token_soup = st.lists(
    st.sampled_from(
        [
            "program", "case", "BRANCH", "DROP;", "LOADI", "har", "sar",
            "mar", "@", "(", ")", "{", "}", "<", ">", ",", ";", ":", "0x10",
            "42", "10.0.0.0", "hdr.ipv4.src", "meta.queue_depth", "mem1",
            "EXTRACT", "MEMADD", "FORWARD", "//x\n", "/*y*/",
        ]
    ),
    max_size=40,
).map(" ".join)


class TestLexerRobustness:
    @given(printable_text)
    @settings(max_examples=200)
    def test_tokenize_raises_only_typed_errors(self, text):
        try:
            tokens = tokenize(text)
        except P4runproError:
            return
        assert tokens[-1].value == ""  # EOF terminated

    @given(st.binary(max_size=100))
    @settings(max_examples=50)
    def test_binary_garbage(self, blob):
        try:
            tokenize(blob.decode("latin-1"))
        except P4runproError:
            pass


class TestParserRobustness:
    @given(printable_text)
    @settings(max_examples=200)
    def test_parse_raises_only_typed_errors(self, text):
        try:
            unit = parse_source(text)
        except P4runproError:
            return
        assert unit.programs  # grammatical input yields programs

    @given(token_soup)
    @settings(max_examples=300)
    def test_token_soup(self, text):
        try:
            unit = parse_source(text)
            check_unit(unit)
        except P4runproError:
            pass

    @given(token_soup)
    @settings(max_examples=100)
    def test_diagnostics_never_crash(self, text):
        diagnostics = check_source(text)
        assert isinstance(diagnostics, list)


class TestDeepNesting:
    def test_deeply_nested_branches_parse(self):
        depth = 60
        body = "DROP;"
        for _ in range(depth):
            body = f"BRANCH: case(<har, 1, 0xff>) {{ {body} }}"
        unit = parse_source(f"program p(<hdr.ipv4.ttl, 0, 0x0>) {{ {body} }}")
        check_unit(unit)

    def test_long_statement_list(self):
        body = "LOADI(har, 1);" * 2000
        unit = parse_source(f"program p(<hdr.ipv4.ttl, 0, 0x0>) {{ {body} }}")
        assert len(unit.programs[0].body) == 2000
