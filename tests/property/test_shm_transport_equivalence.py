"""Shm-ring transport vs pipe transport: bit-identical under churn.

The shared-memory data path replaces pickle-over-pipe with a wire-native
codec, chunked streaming, and an order-preserving pipe fallback — none of
which may change a single observable bit.  Two engines run the same
randomized schedule (deploys, revokes, ``add_case`` growth, register
writes, traffic bursts, and worker add/remove rescales applied in
lockstep), one over shm rings and one with ``use_shm=False``.  After
every burst the per-packet verdicts, egress ports, recirculation counts,
egress fan-out, and bridge state must match; at the end merged register
snapshots, per-program entry/table counters, and aggregate TM totals
must match bit for bit.  A third schedule squeezes the rings (tiny
capacity, zero stall budget) so the very fallbacks being relied on —
ring-full and oversize reroutes to ``batch_rest`` — are exercised while
equivalence holds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ShardedEngine
from repro.lang.errors import P4runproError
from repro.programs import PROGRAMS

from .test_codegen_equivalence import NAMES, _burst, _churn, _outcome

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("deploy"), st.sampled_from(NAMES)),
        st.tuples(st.just("revoke"), st.integers(0, 7)),
        st.tuples(st.just("add_case"), st.integers(0, 0xFFFF)),
        st.tuples(st.just("write_mem"), st.integers(0, 31)),
        st.tuples(st.just("traffic"), st.integers(0, 2**16)),
    ),
    min_size=3,
    max_size=12,
)

rescale_ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("deploy"), st.sampled_from(NAMES)),
        st.tuples(st.just("revoke"), st.integers(0, 7)),
        st.tuples(st.just("traffic"), st.integers(0, 2**16)),
        st.tuples(st.just("add_worker"), st.just(0)),
        st.tuples(st.just("remove_worker"), st.just(0)),
    ),
    min_size=4,
    max_size=10,
)


def _assert_final_state(subject, ref, live):
    for name, a, b in live:
        for mid in PROGRAMS[name].memories:
            assert subject.controller.snapshot_memory(
                a, mid
            ) == ref.controller.snapshot_memory(b, mid), (name, mid)
        assert subject.controller.program_stats(
            a
        ) == ref.controller.program_stats(b), name
    got, want = subject.stats()["totals"], ref.stats()["totals"]
    for attr in ("packets_in", "pipeline_passes", "forwarded", "dropped",
                 "reflected", "to_cpu", "multicast"):
        assert got[attr] == want[attr], attr


@settings(max_examples=5, deadline=None)
@given(ops=ops_strategy)
def test_shm_transport_is_observationally_identical(ops):
    """2-worker engines, shm rings vs pipes, same churn schedule."""
    with ShardedEngine(2) as subject, ShardedEngine(2, use_shm=False) as ref:
        assert subject.transport_stats()["enabled"]
        assert not ref.transport_stats()["enabled"]
        live = _churn(
            ops, subject.controller, subject.inject, ref.controller, ref.inject
        )
        _assert_final_state(subject, ref, live)
        # The subject never regressed to classic pipe batches, and the
        # reference never touched a ring.
        assert subject.transport_stats()["pipe_batches"] == 0
        assert ref.transport_stats()["ring_batches"] == 0


@settings(max_examples=3, deadline=None)
@given(ops=rescale_ops_strategy)
def test_shm_transport_equivalent_under_rescale(ops):
    """Worker add/remove churn in lockstep: ring allocation/retirement
    and live migration must not perturb results relative to pipes."""
    with ShardedEngine(2) as subject, ShardedEngine(2, use_shm=False) as ref:
        live = []
        for op, arg in ops:
            if op == "deploy":
                try:
                    a = subject.controller.deploy(PROGRAMS[arg].source)
                except P4runproError:
                    continue
                b = ref.controller.deploy(PROGRAMS[arg].source)
                live.append((arg, a, b))
            elif op == "revoke":
                if not live:
                    continue
                _name, a, b = live.pop(arg % len(live))
                subject.controller.revoke(a.program_id)
                ref.controller.revoke(b.program_id)
            elif op == "add_worker":
                if subject.num_workers < 4:
                    subject.add_worker()
                    ref.add_worker()
                assert (
                    subject.transport_stats()["workers_with_rings"]
                    == subject.num_workers
                )
            elif op == "remove_worker":
                if subject.num_workers > 1:
                    subject.remove_worker()
                    ref.remove_worker()
                assert (
                    subject.transport_stats()["workers_with_rings"]
                    == subject.num_workers
                )
            else:  # traffic
                burst = _burst(arg)
                got = subject.inject([p.clone() for p in burst])
                want = ref.inject([p.clone() for p in burst])
                assert [_outcome(r) for r in got] == [
                    _outcome(r) for r in want
                ]
        assert subject.num_workers == ref.num_workers
        _assert_final_state(subject, ref, live)


@settings(max_examples=3, deadline=None)
@given(ops=ops_strategy)
def test_shm_transport_equivalent_under_forced_fallback(ops):
    """Starved rings (tiny capacity, zero stall budget) force the
    oversize/ring-full reroutes; outcomes must still match pipes."""
    with ShardedEngine(
        2, ring_bytes=2048, chunk_packets=64, ring_stall_timeout_s=0.0
    ) as subject, ShardedEngine(2, use_shm=False) as ref:
        live = _churn(
            ops, subject.controller, subject.inject, ref.controller, ref.inject
        )
        _assert_final_state(subject, ref, live)
