"""Property test: random alloc/free churn on the control-plane free list.

Invariants (satellite task):

* no two live blocks (allocated or locked) ever overlap, and none
  escapes ``[0, capacity)``;
* frees coalesce: once everything is freed the free list returns to the
  initial single-run state and the free-byte total equals the capacity;
* accounting identity: free + allocated + locked == capacity after every
  operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.controlplane.freelist import FreeList, OutOfMemoryError

CAPACITY = 1024


def _blocks_overlap(blocks):
    ordered = sorted(blocks)
    for (base_a, size_a), (base_b, _size_b) in zip(ordered, ordered[1:]):
        if base_a + size_a > base_b:
            return True
    return False


class FreeListChurn(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.freelist = FreeList(CAPACITY)
        self.live: dict[int, int] = {}  # base -> size (allocated)
        self.locked: dict[int, int] = {}  # base -> size (lock/reset protocol)

    @rule(size=st.integers(min_value=1, max_value=CAPACITY))
    def allocate(self, size):
        try:
            base = self.freelist.allocate(size)
        except OutOfMemoryError:
            # only acceptable when no contiguous run fits
            assert self.freelist.largest_free_run() < size
            return
        assert 0 <= base and base + size <= CAPACITY
        self.live[base] = size

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free_one(self, data):
        base = data.draw(st.sampled_from(sorted(self.live)))
        self.freelist.free(base)
        del self.live[base]

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def lock_then_release(self, data):
        """Exercise the lock/reset/unlock protocol used during removal."""
        base = data.draw(st.sampled_from(sorted(self.live)))
        self.freelist.lock(base)
        self.locked[base] = self.live.pop(base)

    @precondition(lambda self: self.locked)
    @rule(data=st.data())
    def unlock(self, data):
        base = data.draw(st.sampled_from(sorted(self.locked)))
        self.freelist.unlock_and_free(base)
        del self.locked[base]

    @rule(size=st.integers(min_value=1, max_value=64), max_fragments=st.integers(1, 8))
    def allocate_fragmented(self, size, max_fragments):
        """Direct-mapping fragment allocation must obey the same invariants."""
        try:
            fragments = self.freelist.allocate_fragments(size, max_fragments)
        except OutOfMemoryError:
            return
        assert sum(fragment_size for _b, fragment_size in fragments) == size
        for base, fragment_size in fragments:
            assert 0 <= base and base + fragment_size <= CAPACITY
            self.live[base] = fragment_size

    @invariant()
    def no_overlaps(self):
        blocks = list(self.live.items()) + list(self.locked.items())
        assert not _blocks_overlap(blocks)

    @invariant()
    def accounting_identity(self):
        used = sum(self.live.values()) + sum(self.locked.values())
        assert self.freelist.free_total() == CAPACITY - used
        assert self.freelist.allocated_total() == used

    @invariant()
    def free_runs_disjoint_from_live(self):
        blocks = list(self.live.items()) + list(self.locked.items())
        assert not _blocks_overlap(blocks + self.freelist.free_runs())

    def teardown(self):
        """Drain everything: frees must coalesce back to one full run."""
        for base in sorted(self.locked):
            self.freelist.unlock_and_free(base)
        for base in sorted(self.live):
            self.freelist.free(base)
        assert self.freelist.free_total() == CAPACITY
        assert self.freelist.free_runs() == [(0, CAPACITY)]
        assert self.freelist.allocated_total() == 0


TestFreeListChurn = FreeListChurn.TestCase
TestFreeListChurn.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=30)
)
@settings(max_examples=100, deadline=None)
def test_alloc_all_free_all_coalesces(sizes):
    """Allocate a batch, free in a scrambled (reversed) order: the list
    must coalesce to the single initial run regardless of order."""
    freelist = FreeList(4096)
    bases = []
    for size in sizes:
        try:
            bases.append(freelist.allocate(size))
        except OutOfMemoryError:
            break
    for base in reversed(bases):
        freelist.free(base)
    assert freelist.free_runs() == [(0, 4096)]
    assert freelist.free_total() == 4096
