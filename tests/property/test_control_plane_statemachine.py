"""Model-based stateful testing of the control plane.

A hypothesis rule-based state machine drives random interleavings of
deploy / revoke / add-case / remove-case / memory writes against the real
simulator, checking global invariants after every step:

* the data plane's installed entries exactly equal the sum of every live
  program's batch plus its live dynamic cases;
* memory reservations equal the sum of live programs' blocks, and free
  lists conserve capacity;
* every live cache program still answers its built-in key correctly
  (state is never corrupted by unrelated operations);
* after revoking everything, the switch is pristine.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.controlplane import Controller
from repro.lang.errors import AllocationError, P4runproError
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache
from repro.rmt.pipeline import Verdict

DEPLOYABLE = ("cache", "lb", "cms", "bf", "l3route", "calc")


class ControlPlaneMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.controller, self.dataplane = Controller.with_simulator()
        self.live = {}  # program_id -> name
        self.cases = {}  # program_id -> list of case handles
        self.cache_values = {}  # program_id -> expected value at 0x8888

    # -- operations ----------------------------------------------------------
    @rule(name=st.sampled_from(DEPLOYABLE))
    def deploy(self, name):
        try:
            handle = self.controller.deploy(PROGRAMS[name].source)
        except (AllocationError, P4runproError):
            return
        self.live[handle.program_id] = name
        self.cases[handle.program_id] = []

    @rule(index=st.integers(0, 1000))
    def revoke(self, index):
        if not self.live:
            return
        program_id = sorted(self.live)[index % len(self.live)]
        self.controller.revoke(program_id)
        del self.live[program_id]
        del self.cases[program_id]
        self.cache_values.pop(program_id, None)

    @rule(index=st.integers(0, 1000), key=st.integers(1, 0xFFFF), bucket=st.integers(0, 255))
    def add_case(self, index, key, bucket):
        caches = [pid for pid, name in self.live.items() if name == "cache"]
        if not caches:
            return
        program_id = caches[index % len(caches)]
        try:
            handle = self.controller.add_case(
                program_id,
                [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", key, 0xFFFFFFFF)],
                template_case=0,
                loadi_values=[bucket],
            )
        except P4runproError:
            return
        self.cases[program_id].append(handle)

    @rule(index=st.integers(0, 1000))
    def remove_case(self, index):
        populated = [pid for pid, handles in self.cases.items() if handles]
        if not populated:
            return
        program_id = populated[index % len(populated)]
        handle = self.cases[program_id].pop()
        self.controller.remove_case(program_id, handle)

    @rule(index=st.integers(0, 1000), value=st.integers(1, 0xFFFF))
    def write_cache_value(self, index, value):
        caches = [pid for pid, name in self.live.items() if name == "cache"]
        if not caches:
            return
        program_id = caches[index % len(caches)]
        self.controller.write_memory(program_id, "mem1", 128, value)
        self.cache_values[program_id] = value

    # -- invariants --------------------------------------------------------------
    @invariant()
    def entries_balance(self):
        if not hasattr(self, "controller"):
            return
        expected = 0
        for record in self.controller.manager.programs():
            expected += len(record.installed_handles)
        for handles in self.cases.values():
            for case in handles:
                expected += len(case.body_entries) + 1
        installed = sum(t.occupancy for t in self.dataplane.tables.values())
        assert installed == expected, (installed, expected)

    @invariant()
    def memory_conserved(self):
        if not hasattr(self, "controller"):
            return
        for freelist in self.controller.manager._freelists.values():
            assert freelist.free_total() + freelist.allocated_total() == freelist.capacity

    @invariant()
    def owning_cache_still_answers(self):
        """Whichever live program the init table hands cache traffic to
        (first match — possibly a catch-all like cms), if it is a cache it
        must answer with exactly its stored value."""
        if not hasattr(self, "controller"):
            return
        if not any(name == "cache" for name in self.live.values()):
            return
        before = {
            pid: self.controller.program_stats(pid)["matched_packets"]
            for pid in self.live
        }
        result = self.dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        owners = [
            pid
            for pid in self.live
            if self.controller.program_stats(pid)["matched_packets"] == before[pid] + 1
        ]
        assert len(owners) <= 1
        if not owners or self.live[owners[0]] != "cache":
            return  # a non-cache program owns UDP:7777 right now
        expected = self.cache_values.get(owners[0], 0)
        assert result.verdict is Verdict.REFLECT
        assert result.packet.get_field("hdr.nc.val") == expected

    def teardown(self):
        if not hasattr(self, "controller"):
            return
        for program_id in list(self.live):
            self.controller.revoke(program_id)
        for table in self.dataplane.tables.values():
            assert table.occupancy == 0
        assert self.controller.manager.memory_utilization() == 0.0
        assert self.controller.manager.entry_utilization() == 0.0


ControlPlaneMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestControlPlaneStateMachine = ControlPlaneMachine.TestCase
