"""Flow cache vs full pipeline walk: observational equivalence under churn.

Two data planes run the same randomized schedule — deploys, revokes,
dynamic ``add_case`` growth, control-plane register writes, and traffic
bursts drawn from skewed flow templates — one with the two-tier flow
cache enabled, one with it disabled (the reference walks every packet
through the full pipeline).  After every burst the per-packet verdicts,
egress ports, recirculation counts, and bridge state must be identical;
at the end the register arrays, traffic-manager counters, and per-table
lookup/hit counters must match bit for bit.  The cache is only allowed
to make forwarding *faster*, never *different* — including for stateful
programs whose SALU ops must re-execute live on every hit, and across
mid-stream invalidation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import Controller
from repro.dataplane.runpro import P4runproDataPlane
from repro.lang.errors import P4runproError
from repro.programs import PROGRAMS
from repro.rmt.packet import make_cache, make_l2, make_tcp, make_udp

#: deployable mix: stateless forwarding, stateful aggregation, a
#: recirculating program, and an uncacheable register-branching one
NAMES = ("l2fwd", "dqacc", "cache", "firewall", "hh")

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("deploy"), st.sampled_from(NAMES)),
        st.tuples(st.just("revoke"), st.integers(0, 7)),
        st.tuples(st.just("add_case"), st.integers(0, 0xFFFF)),
        st.tuples(st.just("write_mem"), st.integers(0, 31)),
        st.tuples(st.just("traffic"), st.integers(0, 2**16)),
    ),
    min_size=3,
    max_size=14,
)


def _burst(seed: int):
    """A deterministic skewed packet burst: few hot flows, some cold."""
    packets = []
    for i in range(10):
        flow = (seed + i * i) % 5  # repeats within the burst: cache hits
        packets.append(make_udp(0x0A000000 + flow, 2, 1000 + flow, 80))
        packets.append(make_tcp(0x0A000000 + flow, 3, 2000 + flow, 443))
        packets.append(make_l2(dst=flow))
        packets.append(make_cache(1, 2, op=1 + flow % 2, key=flow % 3))
    return packets


def _outcomes(dataplane, seed: int):
    return [
        (r.verdict, r.egress_port, r.recirculations, r.egress_ports,
         sorted(r.bridge.items()))
        for r in dataplane.process_many([p.clone() for p in _burst(seed)])
    ]


@settings(max_examples=20, deadline=None)
@given(ops=ops_strategy)
def test_cached_forwarding_is_observationally_identical(ops):
    cached_ctl, cached = Controller.with_simulator()
    # Codegen off on BOTH sides: this suite isolates cache-vs-interpreter
    # (the codegen tier has its own churn suite in
    # test_codegen_equivalence.py).
    cached.codegen.enabled = False
    reference = P4runproDataPlane(flow_cache=False, codegen=False)
    ref_ctl = Controller(reference)
    assert cached.flow_cache.enabled
    assert not reference.flow_cache.enabled

    live = []  # (name, cached handle, reference handle)
    for op, arg in ops:
        if op == "deploy":
            try:
                a = cached_ctl.deploy(PROGRAMS[arg].source)
            except P4runproError:
                try:
                    ref_ctl.deploy(PROGRAMS[arg].source)
                except P4runproError:
                    continue
                raise AssertionError("only the cached side failed to deploy")
            b = ref_ctl.deploy(PROGRAMS[arg].source)
            live.append((arg, a, b))
        elif op == "revoke":
            if not live:
                continue
            _name, a, b = live.pop(arg % len(live))
            cached_ctl.revoke(a.program_id)
            ref_ctl.revoke(b.program_id)
        elif op == "add_case":
            targets = [(a, b) for name, a, b in live if name == "cache"]
            if not targets:
                continue
            a, b = targets[0]
            conditions = lambda: [
                ("har", 1, 0xFF),
                ("sar", 0, 0xFFFFFFFF),
                ("mar", arg, 0xFFFFFFFF),
            ]
            try:
                cached_ctl.add_case(
                    a, conditions(), template_case=0, loadi_values=[arg % 256]
                )
            except P4runproError:
                try:
                    ref_ctl.add_case(
                        b, conditions(), template_case=0, loadi_values=[arg % 256]
                    )
                except P4runproError:
                    continue
                raise AssertionError("only the cached side failed add_case")
            ref_ctl.add_case(
                b, conditions(), template_case=0, loadi_values=[arg % 256]
            )
        elif op == "write_mem":
            targets = [
                (name, a, b) for name, a, b in live if PROGRAMS[name].memories
            ]
            if not targets:
                continue
            name, a, b = targets[0]
            mid = PROGRAMS[name].memories[0]
            cached_ctl.write_memory(a, mid, arg, 0xBEEF ^ arg)
            ref_ctl.write_memory(b, mid, arg, 0xBEEF ^ arg)
        else:  # traffic
            assert _outcomes(cached, arg) == _outcomes(reference, arg)

    # Final state: registers, TM counters, and table counters bit-identical.
    for phys in range(1, 23):
        assert (
            cached._array(phys).snapshot() == reference._array(phys).snapshot()
        ), f"rpb{phys} register state diverged"
    for attr in ("forwarded", "dropped", "reflected", "to_cpu", "multicast"):
        assert getattr(cached.switch.tm, attr) == getattr(
            reference.switch.tm, attr
        ), attr
    assert cached.switch.packets_in == reference.switch.packets_in
    assert cached.switch.pipeline_passes == reference.switch.pipeline_passes
    for name in cached.tables:
        ct, rt = cached.tables[name], reference.tables[name]
        assert (ct.lookups, ct.hits) == (rt.lookups, rt.hits), name
