"""Fast-path / reference-path equivalence for ternary lookup.

Random entry sets (random keys, masks, priorities), random interleaved
deletes, and random probe packets are driven through both lookup paths of
:class:`~repro.rmt.table.MatchActionTable`:

* the compiled fast path (``lookup_entry``): pre-sorted pools, slot
  triples, generation-keyed caches;
* the reference oracle (``lookup_reference_entry``): a naive full scan
  implemented directly from the documented TCAM rules.

For every probe the two must agree on the winning entry — hence on
``(action, action_data)`` — and the fast path's counters (table lookups /
table hits / per-entry direct counters) must equal what the oracle's
outcomes predict.  Both the indexed (program-ID-bucketed) and unindexed
table configurations are covered by the same operation stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rmt.packet import make_udp
from repro.rmt.phv import PHV, PHVLayout
from repro.rmt.table import MatchActionTable, TableEntry, TernaryKey

FIELDS = ("ud.pid", "ud.alpha", "ud.beta")
WIDTH = 8
MASKS = (0x00, 0x0F, 0xF0, 0xFF)


def _layout() -> PHVLayout:
    layout = PHVLayout()
    for name in FIELDS:
        layout.declare(name, WIDTH)
    return layout


keys_strategy = st.lists(
    st.tuples(
        st.sampled_from(FIELDS),
        st.integers(0, 2**WIDTH - 1),
        st.sampled_from(MASKS),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda k: k[0],
)

#: one operation: insert an entry, delete an earlier one, or probe a packet
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            keys_strategy,
            st.integers(0, 3),  # priority: few distinct values -> many ties
        ),
        st.tuples(st.just("delete"), st.integers(0, 30)),
        st.tuples(
            st.just("probe"),
            st.tuples(*[st.integers(0, 2**WIDTH - 1) for _ in FIELDS]),
        ),
    ),
    min_size=1,
    max_size=60,
)


def _probe_phv(layout: PHVLayout, values) -> PHV:
    phv = PHV(layout, make_udp(1, 2, 3, 4))
    for name, value in zip(FIELDS, values):
        phv.set(name, value)
    return phv


@pytest.mark.parametrize(
    "index_field,index_mask",
    [(None, 0), ("ud.pid", 0xFF), ("ud.pid", 0x0F)],
    ids=["unindexed", "indexed-full-mask", "indexed-partial-mask"],
)
@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_fast_path_matches_reference(index_field, index_mask, ops):
    layout = _layout()
    table = MatchActionTable(
        "t", 1000, index_field=index_field, index_mask=index_mask
    )
    handles: list[int] = []
    serial = 0
    expected_lookups = 0
    expected_table_hits = 0
    expected_entry_hits: dict[int, int] = {}

    for op in ops:
        if op[0] == "insert":
            _, keys, priority = op
            serial += 1
            handle = table.insert(
                TableEntry(
                    tuple(TernaryKey(*k) for k in keys),
                    action=f"act{serial}",
                    action_data={"n": serial},
                    priority=priority,
                )
            )
            handles.append(handle)
            expected_entry_hits[handle] = 0
        elif op[0] == "delete":
            if not handles:
                continue
            handle = handles.pop(op[1] % len(handles))
            table.delete(handle)
        else:
            phv = _probe_phv(layout, op[1])
            oracle = table.lookup_reference_entry(phv)
            fast = table.lookup_entry(phv)
            expected_lookups += 1
            if oracle is None:
                assert fast is None
            else:
                assert fast is not None
                assert fast.handle == oracle.handle
                assert (fast.action, fast.action_data) == (
                    oracle.action,
                    oracle.action_data,
                )
                expected_table_hits += 1
                expected_entry_hits[oracle.handle] += 1

    assert table.lookups == expected_lookups
    assert table.hits == expected_table_hits
    for handle in handles:
        assert table.get(handle).hits == expected_entry_hits[handle]


@settings(max_examples=30, deadline=None)
@given(ops=ops_strategy)
def test_indexed_and_unindexed_tables_agree(ops):
    """The index is purely an optimization: an indexed and an unindexed
    table fed the same operation stream return identical results."""
    layout = _layout()
    plain = MatchActionTable("plain", 1000)
    indexed = MatchActionTable("idx", 1000, index_field="ud.pid", index_mask=0xFF)
    handle_pairs: list[tuple[int, int]] = []
    serial = 0

    for op in ops:
        if op[0] == "insert":
            _, keys, priority = op
            serial += 1

            def make_entry():
                return TableEntry(
                    tuple(TernaryKey(*k) for k in keys),
                    action=f"act{serial}",
                    action_data={"n": serial},
                    priority=priority,
                )

            handle_pairs.append((plain.insert(make_entry()), indexed.insert(make_entry())))
        elif op[0] == "delete":
            if not handle_pairs:
                continue
            hp, hi = handle_pairs.pop(op[1] % len(handle_pairs))
            plain.delete(hp)
            indexed.delete(hi)
        else:
            phv = _probe_phv(layout, op[1])
            a = plain.lookup_entry(phv)
            b = indexed.lookup_entry(phv)
            assert (a is None) == (b is None)
            if a is not None:
                # Handles differ across tables; the action carries identity.
                assert (a.action, a.action_data) == (b.action, b.action_data)
