"""Property: parse -> print -> parse is the identity on random programs,
and the whole toolchain (check, compile, P4 emission) accepts the printed
form identically."""

from hypothesis import given, settings

from repro.compiler import compile_source
from repro.compiler.p4gen import check_structure, emit_p4
from repro.lang.parser import parse_source
from repro.lang.printer import format_unit
from repro.lang.semantics import check_unit

from .strategies import programs
from ..lang.test_printer import unit_equal


class TestPrinterRoundTrip:
    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_identity(self, source):
        unit = parse_source(source)
        check_unit(unit)
        printed = format_unit(unit)
        reparsed = parse_source(printed)
        assert unit_equal(unit, reparsed), printed

    @given(programs(max_stmts=3))
    @settings(max_examples=30, deadline=None)
    def test_printed_form_compiles_identically(self, source):
        """The printed form must compile to the same result — including
        identical *infeasibility* (e.g. three sequential accesses to one
        memory need R=2 and are rightly rejected at the default R=1)."""
        from repro.lang.errors import AllocationError

        def outcome(text):
            try:
                compiled = compile_source(text)
            except AllocationError:
                return ("infeasible",)
            return (
                compiled.problem.num_depths,
                compiled.problem.te_req,
                compiled.allocation.x,
            )

        printed = format_unit(parse_source(source))
        assert outcome(printed) == outcome(source)

    @given(programs(max_stmts=3))
    @settings(max_examples=30, deadline=None)
    def test_generated_p4_always_well_formed(self, source):
        unit = parse_source(source)
        check_unit(unit)
        text = emit_p4(unit, unit.programs[0])
        assert check_structure(text) == []
