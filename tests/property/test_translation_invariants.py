"""Property tests over the compiler's translation invariants, driven by
randomly generated (valid) P4runpro programs."""

from hypothesis import given, settings, strategies as st

from repro.compiler.allocation import build_problem
from repro.compiler.translate import translate
from repro.lang.parser import parse_source
from repro.lang.primitives import MEMORY_PRIMITIVES, PSEUDO_PRIMITIVES
from repro.lang.semantics import check_unit

_SIMPLE = [
    "LOADI(har, {i});",
    "LOADI(sar, {i});",
    "LOADI(mar, {i});",
    "ADD(har, sar);",
    "XOR(sar, mar);",
    "MIN(har, sar);",
    "MOVE(har, mar);",
    "ADDI(sar, {i});",
    "SUBI(har, {i});",
    "NOT(mar);",
    "EXTRACT(hdr.ipv4.src, har);",
    "MODIFY(hdr.ipv4.ttl, sar);",
    "HASH_5_TUPLE;",
    "DROP;",
    "RETURN;",
]
_MEMORY = [
    "HASH_5_TUPLE_MEM(m{j});",
    "MEMADD(m{j});",
    "MEMREAD(m{j});",
    "MEMWRITE(m{j});",
    "MEMOR(m{j});",
]


@st.composite
def programs(draw):
    """Random valid programs: a prefix, a BRANCH with 1-3 cases, a suffix."""
    num_mems = draw(st.integers(1, 3))
    decls = "".join(f"@ m{j} 64\n" for j in range(num_mems))

    def stmts(depth_budget):
        count = draw(st.integers(0, depth_budget))
        out = []
        for _ in range(count):
            if draw(st.booleans()):
                template = draw(st.sampled_from(_SIMPLE))
            else:
                template = draw(st.sampled_from(_MEMORY))
            out.append(
                template.format(i=draw(st.integers(0, 1000)), j=draw(st.integers(0, num_mems - 1)))
            )
        return out

    prefix = stmts(3)
    cases = []
    for index in range(draw(st.integers(1, 3))):
        body = stmts(3) or ["DROP;"]
        cases.append(
            f"case(<har, {index}, 0xff>) {{ {' '.join(body)} }}"
        )
    suffix = stmts(2)
    body = " ".join(prefix) + " BRANCH: " + " ".join(cases) + " " + " ".join(suffix)
    return f"{decls}program p(<hdr.ipv4.ttl, 0, 0x0>) {{ {body} }}"


class TestTranslationInvariants:
    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold(self, source):
        unit = parse_source(source)
        check_unit(unit)
        result = translate(unit.programs[0])
        ir = result.ir

        # 1. No pseudo primitives survive expansion.
        for op in ir.walk_ops():
            assert op.name not in PSEUDO_PRIMITIVES

        # 2. Depths contiguous from 1 along every path; strictly +1 steps.
        for path in ir.walk_paths():
            for first, second in zip(path.ops, path.ops[1:]):
                if not first.is_branch:
                    assert second.depth == first.depth + 1

        # 3. Every memory primitive is immediately preceded by its OFFSET.
        for path in ir.walk_paths():
            for i, op in enumerate(path.ops):
                if op.name in MEMORY_PRIMITIVES:
                    assert i > 0
                    prev = path.ops[i - 1]
                    assert prev.name == "OFFSET"
                    assert prev.memory_id() == op.memory_id()

        # 4. The aligner's contract: every parallel component it processes
        #    (connected, dominance-free) shares one depth — unless
        #    cross-ordered accesses forced the unaligned fallback.
        #    Components contaminated by an internal sequential pair are
        #    intentionally skipped; the allocator still pins every access
        #    of a memory to one physical RPB (checked in 6).
        from repro.compiler.translate import _dominance_index, _parallel_components

        dominators = _dominance_index(ir)
        by_mid = {}
        for op in ir.walk_ops():
            if op.name in MEMORY_PRIMITIVES:
                by_mid.setdefault(op.memory_id(), []).append(op)
        if result.aligned:
            for ops in by_mid.values():
                for component in _parallel_components(ops, dominators):
                    assert len({op.depth for op in component}) == 1

        # 5. The allocation problem is internally consistent.
        prob = build_problem(unit, result)
        assert prob.num_depths == ir.max_depth()
        assert set(prob.te_req) == set(range(1, prob.num_depths + 1))
        for mid, depths in prob.memory_depths.items():
            assert mid in prob.memory_sizes
            assert all(1 <= d <= prob.num_depths for d in depths)
        for i, j in prob.sequential_pairs:
            assert i < j

        # 6. End to end: when an allocation exists, every access to one
        #    virtual memory lands on a single physical RPB (the hardware
        #    cannot reach a register array from two stages).
        from repro.compiler.objectives import f1
        from repro.compiler.solver import AllocationSolver
        from repro.compiler.target import TargetSpec, UnlimitedResources
        from repro.lang.errors import AllocationError

        spec = TargetSpec()
        solver = AllocationSolver(spec, UnlimitedResources(spec))
        try:
            allocation = solver.solve(prob, f1())
        except AllocationError:
            return
        for mid, depths in prob.memory_depths.items():
            physical = {spec.physical_rpb(allocation.x[d - 1]) for d in depths}
            assert len(physical) == 1
            assert physical == {allocation.memory_placement[mid]}
