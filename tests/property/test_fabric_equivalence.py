"""A 1-switch fabric vs a bare switch: observational equivalence under churn.

The degenerate fabric — one leaf, zero spines — must be a transparent
wrapper: the same randomized schedule of fabric-wide deploys, revokes,
incremental ``add_case`` growth, control-plane register writes, and
traffic bursts produces, on the fabric's single node, exactly the
pipeline results and final switch state a bare data plane plus
controller produce.  Every packet stays on the leaf (no spine to cross),
so the fabric layer may add accounting but never behavior: per-packet
verdicts, egress ports, recirculations, bridge state, register arrays,
TM counters, and per-table lookup/hit counters must match bit for bit,
and every burst must conserve packets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import Controller
from repro.fabric import FabricController, Topology
from repro.lang.errors import P4runproError
from repro.programs import PROGRAMS
from repro.rmt.packet import make_cache, make_l2, make_tcp, make_udp

#: deployable mix: stateless forwarding, stateful aggregation, a
#: recirculating program, and an uncacheable register-branching one
NAMES = ("l2fwd", "dqacc", "cache", "firewall", "hh")

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("deploy"), st.sampled_from(NAMES)),
        st.tuples(st.just("revoke"), st.integers(0, 7)),
        st.tuples(st.just("add_case"), st.integers(0, 0xFFFF)),
        st.tuples(st.just("write_mem"), st.integers(0, 31)),
        st.tuples(st.just("traffic"), st.integers(0, 2**16)),
    ),
    min_size=3,
    max_size=14,
)


def _burst(seed: int):
    """A deterministic skewed packet burst: few hot flows, some cold."""
    packets = []
    for i in range(10):
        flow = (seed + i * i) % 5  # repeats within the burst: cache hits
        packets.append(make_udp(0x0A000000 + flow, 2, 1000 + flow, 80))
        packets.append(make_tcp(0x0A000000 + flow, 3, 2000 + flow, 443))
        packets.append(make_l2(dst=flow))
        packets.append(make_cache(1, 2, op=1 + flow % 2, key=flow % 3))
    return packets


def _observed(result):
    return (
        result.verdict,
        result.egress_port,
        result.recirculations,
        result.egress_ports,
        sorted(result.bridge.items()),
    )


def _fabric_outcomes(fabric_ctl, seed: int):
    """Run a burst through the 1-leaf fabric; packets never cross links."""
    assignments = [("leaf0", p.clone()) for p in _burst(seed)]
    report = fabric_ctl.fabric.run(assignments)
    assert report.conservation_ok()
    # the only legal drop on a linkless fabric is the pipeline's own
    assert set(report.drops) <= {"pipeline"}
    return [_observed(o.result) for o in report.outcomes]


def _reference_outcomes(dataplane, seed: int):
    return [
        _observed(r)
        for r in dataplane.process_many([p.clone() for p in _burst(seed)])
    ]


@settings(max_examples=20, deadline=None)
@given(ops=ops_strategy)
def test_single_switch_fabric_is_observationally_identical(ops):
    with Topology.leaf_spine(1, 0) as topo:
        fabric_ctl = FabricController(topo)
        node = topo.nodes["leaf0"].dataplane
        reference = Controller.with_simulator()
        ref_ctl, ref_dp = reference

        live = []  # (name, fabric handle, reference handle)
        for op, arg in ops:
            if op == "deploy":
                try:
                    a = fabric_ctl.deploy(PROGRAMS[arg].source)
                except P4runproError:
                    try:
                        ref_ctl.deploy(PROGRAMS[arg].source)
                    except P4runproError:
                        continue
                    raise AssertionError("only the fabric side failed to deploy")
                b = ref_ctl.deploy(PROGRAMS[arg].source)
                live.append((arg, a, b))
            elif op == "revoke":
                if not live:
                    continue
                _name, a, b = live.pop(arg % len(live))
                fabric_ctl.revoke(a)
                ref_ctl.revoke(b.program_id)
            elif op == "add_case":
                targets = [(a, b) for name, a, b in live if name == "cache"]
                if not targets:
                    continue
                a, b = targets[0]
                conditions = lambda: [
                    ("har", 1, 0xFF),
                    ("sar", 0, 0xFFFFFFFF),
                    ("mar", arg, 0xFFFFFFFF),
                ]
                try:
                    fabric_ctl.add_case(
                        a, conditions(), template_case=0,
                        loadi_values=[arg % 256],
                    )
                except P4runproError:
                    try:
                        ref_ctl.add_case(
                            b, conditions(), template_case=0,
                            loadi_values=[arg % 256],
                        )
                    except P4runproError:
                        continue
                    raise AssertionError("only the fabric side failed add_case")
                ref_ctl.add_case(
                    b, conditions(), template_case=0, loadi_values=[arg % 256]
                )
            elif op == "write_mem":
                targets = [
                    (name, a, b)
                    for name, a, b in live
                    if PROGRAMS[name].memories
                ]
                if not targets:
                    continue
                name, a, b = targets[0]
                mid = PROGRAMS[name].memories[0]
                fabric_ctl.write_memory(a, mid, arg, 0xBEEF ^ arg)
                ref_ctl.write_memory(b, mid, arg, 0xBEEF ^ arg)
            else:  # traffic
                assert _fabric_outcomes(fabric_ctl, arg) == _reference_outcomes(
                    ref_dp, arg
                )

        # Final state: registers, TM counters, table counters bit-identical.
        for phys in range(1, 23):
            assert (
                node._array(phys).snapshot() == ref_dp._array(phys).snapshot()
            ), f"rpb{phys} register state diverged"
        for attr in ("forwarded", "dropped", "reflected", "to_cpu", "multicast"):
            assert getattr(node.switch.tm, attr) == getattr(
                ref_dp.switch.tm, attr
            ), attr
        assert node.switch.packets_in == ref_dp.switch.packets_in
        assert node.switch.pipeline_passes == ref_dp.switch.pipeline_passes
        for name in node.tables:
            ft, rt = node.tables[name], ref_dp.tables[name]
            assert (ft.lookups, ft.hits) == (rt.lookups, rt.hits), name
