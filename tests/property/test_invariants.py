"""Property-based invariants on core data structures.

Covers the free-list allocator (conservation, non-overlap, coalescing),
the allocation solver (every returned vector satisfies every model
constraint), ternary table index equivalence, and elastic expansion.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.compiler.allocation import AllocationProblem
from repro.compiler.objectives import f1, f2, f3
from repro.compiler.solver import AllocationSolver
from repro.compiler.target import TargetSpec, UnlimitedResources
from repro.controlplane.freelist import FreeList, OutOfMemoryError
from repro.lang.errors import AllocationError


# ---------------------------------------------------------------------------
# FreeList invariants under random operation sequences
# ---------------------------------------------------------------------------
class TestFreeListProperties:
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 200)),
                st.tuples(st.just("free"), st.integers(0, 30)),
                st.tuples(st.just("lock"), st.integers(0, 30)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_random_sequences_preserve_invariants(self, ops):
        fl = FreeList(1024)
        live: list[int] = []
        locked: list[int] = []
        for kind, value in ops:
            if kind == "alloc":
                try:
                    base = fl.allocate(value)
                    live.append(base)
                except OutOfMemoryError:
                    pass
            elif kind == "free" and live:
                base = live.pop(value % len(live))
                fl.free(base)
            elif kind == "lock" and live:
                base = live.pop(value % len(live))
                fl.lock(base)
                locked.append(base)
        # Conservation: free + allocated(+locked) == capacity.
        assert fl.free_total() + fl.allocated_total() == 1024
        # Free runs sorted, non-overlapping, non-adjacent (fully coalesced).
        runs = fl.free_runs()
        for (s1, z1), (s2, _z2) in zip(runs, runs[1:]):
            assert s1 + z1 < s2
        # Unlock everything; then free all -> one run covering the arena.
        for base in locked:
            fl.unlock_and_free(base)
        for base in live:
            fl.free(base)
        assert fl.free_runs() == [(0, 1024)]

    @given(st.lists(st.integers(1, 400), min_size=1, max_size=10))
    @settings(max_examples=100)
    def test_can_allocate_is_consistent_with_allocate(self, sizes):
        fl = FreeList(1024)
        if fl.can_allocate(sizes):
            # Largest-first must succeed exactly as predicted.
            for size in sorted(sizes, reverse=True):
                fl.allocate(size)


# ---------------------------------------------------------------------------
# Solver: returned vectors always satisfy the model
# ---------------------------------------------------------------------------
def random_problems():
    return st.builds(
        _make_problem,
        depths=st.integers(1, 16),
        fwd_seed=st.integers(0, 1000),
        te=st.integers(1, 8),
        mem=st.booleans(),
    )


def _make_problem(depths, fwd_seed, te, mem):
    import random

    rng = random.Random(fwd_seed)
    forwarding = {d for d in range(1, depths + 1) if rng.random() < 0.2}
    memory_sizes = {}
    memory_depths = {}
    if mem and depths >= 2:
        d = rng.randrange(2, depths + 1)
        memory_sizes["m"] = 256
        memory_depths["m"] = [d]
    return AllocationProblem(
        program="prop",
        num_depths=depths,
        te_req={d: te for d in range(1, depths + 1)},
        forwarding_depths=forwarding,
        memory_sizes=memory_sizes,
        memory_depths=memory_depths,
        sequential_pairs=[],
    )


SPEC = TargetSpec()


class TestSolverProperties:
    @given(random_problems(), st.sampled_from(["f1", "f2", "f3"]))
    @settings(max_examples=60, deadline=None)
    def test_solution_satisfies_constraints(self, prob, objective_name):
        objective = {"f1": f1, "f2": f2, "f3": f3}[objective_name]()
        solver = AllocationSolver(SPEC, UnlimitedResources(SPEC))
        try:
            result = solver.solve(prob, objective)
        except AllocationError:
            return  # infeasible is acceptable; we check feasible outputs
        x = result.x
        assert len(x) == prob.num_depths
        assert all(1 <= v <= SPEC.num_logic_rpbs for v in x)
        assert all(a < b for a, b in zip(x, x[1:]))
        for depth in prob.forwarding_depths:
            assert SPEC.physical_rpb(x[depth - 1]) <= SPEC.num_ingress_rpbs

    @given(st.integers(1, 12), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_linear_optimum_matches_bruteforce_on_small_spec(self, depths, seed):
        """On a tiny target, the solver's f1 optimum equals brute force."""
        import itertools
        import random

        spec = TargetSpec(num_ingress_rpbs=3, num_egress_rpbs=3, max_recirculations=1)
        assume(depths <= spec.num_logic_rpbs)
        rng = random.Random(seed)
        forwarding = {d for d in range(1, depths + 1) if rng.random() < 0.25}
        prob = AllocationProblem(
            program="brute",
            num_depths=depths,
            te_req={d: 1 for d in range(1, depths + 1)},
            forwarding_depths=forwarding,
            memory_sizes={},
            memory_depths={},
            sequential_pairs=[],
        )
        objective = f1()
        solver = AllocationSolver(spec, UnlimitedResources(spec))
        try:
            result = solver.solve(prob, objective)
        except AllocationError:
            result = None
        best = None
        for combo in itertools.combinations(range(1, spec.num_logic_rpbs + 1), depths):
            if any(
                spec.physical_rpb(combo[d - 1]) > spec.num_ingress_rpbs
                for d in forwarding
            ):
                continue
            value = objective.value(combo[0], combo[-1])
            if best is None or value < best:
                best = value
        if best is None:
            assert result is None
        else:
            assert result is not None
            assert result.objective_value <= best + 1e-9


# ---------------------------------------------------------------------------
# Ternary table: indexed lookup == linear scan
# ---------------------------------------------------------------------------
class TestTableIndexEquivalence:
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 3), st.booleans()),
            min_size=1,
            max_size=30,
        ),
        st.integers(0, 7),
        st.integers(0, 3),
    )
    @settings(max_examples=100)
    def test_lookup_equivalence(self, entries, lookup_pid, lookup_port):
        from repro.rmt.packet import make_udp
        from repro.rmt.phv import PHV, PHVLayout
        from repro.rmt.table import MatchActionTable, TableEntry, TernaryKey

        plain = MatchActionTable("plain", 100)
        indexed = MatchActionTable("indexed", 100, index_field="ud.pid", index_mask=0xFFFF)
        for i, (pid, port, full_mask) in enumerate(entries):
            keys = (
                TernaryKey("ud.pid", pid, 0xFFFF if full_mask else 0x00FF),
                TernaryKey("hdr.udp.dst_port", port, 0xFFFF),
            )
            plain.insert(TableEntry(keys, f"a{i}", {}, priority=i))
            indexed.insert(TableEntry(keys, f"a{i}", {}, priority=i))
        layout = PHVLayout()
        layout.declare("ud.pid", 16)
        phv = PHV(layout, make_udp(1, 2, 3, lookup_port))
        phv.load_header("udp")
        phv.set("ud.pid", lookup_pid)
        assert plain.lookup(phv) == indexed.lookup(phv)
