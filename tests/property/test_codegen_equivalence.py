"""Codegen tier vs interpreter: observational equivalence under churn.

Two data planes run the same randomized schedule — deploys, revokes,
dynamic ``add_case`` growth, control-plane register writes, and traffic
bursts drawn from skewed flow templates — one serving packets through
trace-to-source generated functions, the reference walking every packet
through the interpreted pipeline.  After every burst the per-packet
verdicts, egress ports, recirculation counts, and bridge state must be
identical; at the end the register arrays, traffic-manager counters, and
per-table lookup/hit counters must match bit for bit.  Generated code is
only allowed to make forwarding *faster*, never *different* — including
for stateful programs whose SALU ops re-execute on every packet, for
register-branching programs the megaflow cache refuses, and across
mid-stream invalidation (every mutation bumps the generation counters,
so a stale function must never run).

Three configurations are proven:

* codegen alone (flow cache off) against the bare interpreter;
* the full three-tier stack (EMC/megaflow -> codegen -> interpreter)
  against the bare interpreter — this exercises the ``_process_miss``
  hand-off where negative megaflow entries route to generated code;
* a 2-worker sharded engine with per-worker codegen caches against an
  identical engine with codegen disabled.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import Controller
from repro.dataplane.runpro import P4runproDataPlane
from repro.lang.errors import P4runproError
from repro.programs import PROGRAMS
from repro.rmt.packet import make_cache, make_l2, make_tcp, make_udp

#: deployable mix: stateless forwarding, stateful aggregation, a
#: recirculating program, and a register-branching one (uncacheable for
#: the megaflow tier but fully codegen-servable)
NAMES = ("l2fwd", "dqacc", "cache", "firewall", "hh")

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("deploy"), st.sampled_from(NAMES)),
        st.tuples(st.just("revoke"), st.integers(0, 7)),
        st.tuples(st.just("add_case"), st.integers(0, 0xFFFF)),
        st.tuples(st.just("write_mem"), st.integers(0, 31)),
        st.tuples(st.just("traffic"), st.integers(0, 2**16)),
    ),
    min_size=3,
    max_size=14,
)


def _burst(seed: int):
    """A deterministic skewed packet burst: few hot flows, some cold."""
    packets = []
    for i in range(10):
        flow = (seed + i * i) % 5  # repeats within the burst: codegen hits
        packets.append(make_udp(0x0A000000 + flow, 2, 1000 + flow, 80))
        packets.append(make_tcp(0x0A000000 + flow, 3, 2000 + flow, 443))
        packets.append(make_l2(dst=flow))
        packets.append(make_cache(1, 2, op=1 + flow % 2, key=flow % 3))
    return packets


def _outcome(r):
    return (r.verdict, r.egress_port, r.recirculations, r.egress_ports,
            sorted(r.bridge.items()))


def _churn(ops, subject_ctl, process_subject, reference_ctl, process_reference):
    """Drive both controllers through the schedule, comparing per-burst
    outcomes; mutations apply to both sides in lockstep so mid-stream
    invalidation is exercised between (and, via batching, within) bursts.
    ``process_*`` take a packet list and return the per-packet results.
    """
    live = []  # (name, subject handle, reference handle)
    for op, arg in ops:
        if op == "deploy":
            try:
                a = subject_ctl.deploy(PROGRAMS[arg].source)
            except P4runproError:
                try:
                    reference_ctl.deploy(PROGRAMS[arg].source)
                except P4runproError:
                    continue
                raise AssertionError("only the codegen side failed to deploy")
            b = reference_ctl.deploy(PROGRAMS[arg].source)
            live.append((arg, a, b))
        elif op == "revoke":
            if not live:
                continue
            _name, a, b = live.pop(arg % len(live))
            subject_ctl.revoke(a.program_id)
            reference_ctl.revoke(b.program_id)
        elif op == "add_case":
            targets = [(a, b) for name, a, b in live if name == "cache"]
            if not targets:
                continue
            a, b = targets[0]
            conditions = lambda: [
                ("har", 1, 0xFF),
                ("sar", 0, 0xFFFFFFFF),
                ("mar", arg, 0xFFFFFFFF),
            ]
            try:
                subject_ctl.add_case(
                    a, conditions(), template_case=0, loadi_values=[arg % 256]
                )
            except P4runproError:
                try:
                    reference_ctl.add_case(
                        b, conditions(), template_case=0, loadi_values=[arg % 256]
                    )
                except P4runproError:
                    continue
                raise AssertionError("only the codegen side failed add_case")
            reference_ctl.add_case(
                b, conditions(), template_case=0, loadi_values=[arg % 256]
            )
        elif op == "write_mem":
            targets = [
                (name, a, b) for name, a, b in live if PROGRAMS[name].memories
            ]
            if not targets:
                continue
            name, a, b = targets[0]
            mid = PROGRAMS[name].memories[0]
            subject_ctl.write_memory(a, mid, arg, 0xBEEF ^ arg)
            reference_ctl.write_memory(b, mid, arg, 0xBEEF ^ arg)
        else:  # traffic
            burst = _burst(arg)
            got = process_subject([p.clone() for p in burst])
            want = process_reference([p.clone() for p in burst])
            assert [_outcome(r) for r in got] == [_outcome(r) for r in want]
    return live


def _assert_final_state(subject, reference):
    for phys in range(1, 23):
        assert (
            subject._array(phys).snapshot() == reference._array(phys).snapshot()
        ), f"rpb{phys} register state diverged"
    for attr in ("forwarded", "dropped", "reflected", "to_cpu", "multicast"):
        assert getattr(subject.switch.tm, attr) == getattr(
            reference.switch.tm, attr
        ), attr
    assert subject.switch.packets_in == reference.switch.packets_in
    assert subject.switch.pipeline_passes == reference.switch.pipeline_passes
    for name in subject.tables:
        st_, rt = subject.tables[name], reference.tables[name]
        assert (st_.lookups, st_.hits) == (rt.lookups, rt.hits), name


@settings(max_examples=20, deadline=None)
@given(ops=ops_strategy)
def test_codegen_forwarding_is_observationally_identical(ops):
    """Codegen tier alone (flow cache off) vs the bare interpreter."""
    subject = P4runproDataPlane(flow_cache=False)
    subject_ctl = Controller(subject)
    reference = P4runproDataPlane(flow_cache=False, codegen=False)
    reference_ctl = Controller(reference)
    assert subject.codegen.enabled
    assert not reference.codegen.enabled

    _churn(
        ops, subject_ctl, subject.process_many, reference_ctl,
        reference.process_many,
    )
    _assert_final_state(subject, reference)


@settings(max_examples=15, deadline=None)
@given(ops=ops_strategy)
def test_three_tier_stack_is_observationally_identical(ops):
    """The full stack — EMC/megaflow cache over codegen over interpreter
    — vs the bare interpreter.  Register-branching programs (firewall)
    get negative megaflow entries, so this drives the cache-miss
    ``_process_miss`` hand-off into generated code under churn."""
    subject_ctl, subject = Controller.with_simulator()
    reference = P4runproDataPlane(flow_cache=False, codegen=False)
    reference_ctl = Controller(reference)
    assert subject.flow_cache.enabled and subject.codegen.enabled

    _churn(
        ops, subject_ctl, subject.process_many, reference_ctl,
        reference.process_many,
    )
    _assert_final_state(subject, reference)


@settings(max_examples=5, deadline=None)
@given(ops=ops_strategy)
def test_sharded_engine_codegen_equivalence(ops):
    """2-worker engines, codegen on vs off: per-packet results, merged
    register snapshots, per-program entry counters, and aggregate TM
    totals all identical under the same churn schedule."""
    from repro.engine import ShardedEngine

    with ShardedEngine(2) as subject, ShardedEngine(2, codegen=False) as ref:
        live = _churn(
            ops, subject.controller, subject.inject, ref.controller, ref.inject
        )
        # Merged register state per surviving program, byte-identical.
        for name, a, b in live:
            for mid in PROGRAMS[name].memories:
                assert subject.controller.snapshot_memory(
                    a, mid
                ) == ref.controller.snapshot_memory(b, mid), (name, mid)
            assert subject.controller.program_stats(
                a
            ) == ref.controller.program_stats(b), name
        got, want = subject.stats()["totals"], ref.stats()["totals"]
        for attr in ("packets_in", "pipeline_passes", "forwarded", "dropped",
                     "reflected", "to_cpu", "multicast"):
            assert got[attr] == want[attr], attr
        # The codegen side actually served traffic from generated code.
        assert "codegen" in got
