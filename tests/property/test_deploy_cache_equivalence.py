"""Deploy fast path vs reference path: observational equivalence.

Two controllers run the same randomized deploy/revoke sequence against
their own simulators — one with the relocatable allocation cache enabled
(front-end reuse, trace rebinding, entry-template relocation), one with
it disabled (every deploy re-parses and re-solves from scratch).  After
every operation the managers' state fingerprints must match, and at the
end the installed table entries and the per-packet verdicts of a traffic
mix must be identical.  The cache is only allowed to make deploys
*faster*, never *different* — whatever the prior occupancy the sequence
produced.

A separate regression pins the paper's churn case: deploy → revoke →
deploy of the same program must hit the cache and still replay correctly
from the audit journal.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import Controller
from repro.lang.errors import P4runproError
from repro.programs import PROGRAMS
from repro.rmt.packet import make_cache, make_udp

NAMES = ("cache", "lb", "cms", "bf", "l3route", "calc", "hh")

#: a deploy of one of NAMES, or a revoke of the i-th oldest live program
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("deploy"), st.sampled_from(NAMES)),
        st.tuples(st.just("revoke"), st.integers(0, 7)),
    ),
    min_size=2,
    max_size=12,
)


def _table_dump(dataplane):
    """Canonical, order-independent view of every installed entry."""
    dump = {}
    for name, table in sorted(dataplane.tables.items()):
        dump[name] = sorted(
            (
                tuple((k.field, k.value, k.mask) for k in entry.keys),
                entry.priority,
                entry.action,
                tuple(sorted(entry.action_data.items())),
            )
            for entry in table.entries()
        )
    return dump


def _traffic():
    packets = [make_udp(i + 1, 2, 1000 + i, 80) for i in range(24)]
    packets += [make_cache(1, 2, op=1, key=i % 6) for i in range(24)]
    return packets


def _verdicts(dataplane):
    return [
        (r.verdict, r.egress_port, r.recirculations, sorted(r.bridge.items()))
        for r in dataplane.process_many([p.clone() for p in _traffic()])
    ]


@settings(max_examples=25, deadline=None)
@given(ops=ops_strategy)
def test_cached_deploys_are_observationally_identical(ops):
    warm, warm_dp = Controller.with_simulator()
    cold, cold_dp = Controller.with_simulator()
    cold.deploy_cache.enabled = False
    live = []  # program ids, same on both sides by construction
    for op, arg in ops:
        if op == "deploy":
            try:
                a = warm.deploy(PROGRAMS[arg].source)
            except P4runproError as exc:
                # The reference controller must refuse identically.
                try:
                    cold.deploy(PROGRAMS[arg].source)
                except P4runproError:
                    continue
                raise AssertionError(f"only the cached path failed: {exc}")
            b = cold.deploy(PROGRAMS[arg].source)
            assert a.program_id == b.program_id
            assert a.stats.logic_rpbs == b.stats.logic_rpbs
            assert a.stats.entries == b.stats.entries
            live.append(a.program_id)
        elif live:
            program_id = live.pop(arg % len(live))
            warm.revoke(program_id)
            cold.revoke(program_id)
        assert warm.manager.state_fingerprint() == cold.manager.state_fingerprint()
    assert _table_dump(warm_dp) == _table_dump(cold_dp)
    assert _verdicts(warm_dp) == _verdicts(cold_dp)


def test_deploy_revoke_deploy_replays_from_audit():
    """Churn regression: the second deploy of a shape must come from the
    cache (rebound allocation), and the audit journal must still replay
    the full history onto a fresh controller byte-identically — the
    fast path may not leak into the recorded state."""
    import asyncio

    from repro.controlplane import NullBinding
    from repro.service import ControlService, Request, TenantQuota, TenantRegistry, replay

    service = ControlService(
        Controller(NullBinding()), tenants=TenantRegistry(TenantQuota.unlimited())
    )

    async def rpc(rid, method, params):
        response = await service.handle_request(
            Request(id=rid, method=method, params=params)
        )
        assert response["ok"], response
        return response["result"]

    async def churn():
        source = PROGRAMS["cms"].source
        first = await rpc(1, "deploy", {"source": source})
        await rpc(2, "revoke", {"program_id": first["program_id"]})
        second = await rpc(3, "deploy", {"source": source})
        return first, second

    first, second = asyncio.run(churn())
    assert not first["cache_hit"]
    assert second["cache_hit"]
    assert second["logic_rpbs"] == first["logic_rpbs"]
    assert second["entries"] == first["entries"]

    replayed = replay(service.audit, Controller(NullBinding()))
    assert (
        replayed.manager.state_fingerprint()
        == service.controller.manager.state_fingerprint()
    )
