"""Elastic engine vs static switch: observational equivalence under churn.

A 3-worker sharded engine runs a randomized schedule of control-plane
churn (deploys, revokes, dynamic ``add_case`` growth, register writes)
and traffic bursts — with *topology* churn interleaved: workers added
and retired mid-schedule, pinned programs live-migrated between shards.
The reference is a static single-process switch that never rescales.

Per burst, the per-packet verdicts, egress ports, recirculation counts,
and bridge state must be identical; at the end, every surviving
program's register snapshots and per-entry hit counters plus the
engine's aggregated traffic-manager totals must match the reference bit
for bit.  Rescaling and migration are allowed to change *where* a packet
is processed, never *what* happens to it — including counters harvested
from workers that no longer exist.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import Controller
from repro.engine import ShardedEngine
from repro.programs import PROGRAMS
from tests.property.test_codegen_equivalence import NAMES, _churn

MAX_WORKERS = 5

#: the control/traffic churn of the codegen suite, plus topology ops;
#: integer args are reduced modulo whatever is live when the op runs
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("deploy"), st.sampled_from(NAMES)),
        st.tuples(st.just("revoke"), st.integers(0, 7)),
        st.tuples(st.just("add_case"), st.integers(0, 0xFFFF)),
        st.tuples(st.just("write_mem"), st.integers(0, 31)),
        st.tuples(st.just("traffic"), st.integers(0, 2**16)),
        st.tuples(st.just("add_worker"), st.just(0)),
        st.tuples(st.just("remove_worker"), st.integers(0, 7)),
        st.tuples(st.just("migrate"), st.integers(0, 7)),
    ),
    min_size=4,
    max_size=16,
)


def _apply_topology(engine, op, arg):
    if op == "add_worker":
        if engine.num_workers < MAX_WORKERS:
            engine.add_worker()
    elif op == "remove_worker":
        if engine.num_workers > 1:
            ids = engine.worker_ids
            engine.remove_worker(ids[arg % len(ids)])
    else:  # migrate
        pinned = sorted(engine.placement)
        if pinned and engine.num_workers > 1:
            engine.migrate(pinned[arg % len(pinned)])


@settings(max_examples=5, deadline=None)
@given(ops=ops_strategy)
def test_elastic_engine_is_observationally_identical(ops):
    reference_ctl, reference = Controller.with_simulator()
    with ShardedEngine(3) as engine:
        # Interleave: run the shared-churn prefix up to each topology op,
        # apply the topology op to the engine only, continue.
        live = []
        pending = []
        for op, arg in ops:
            if op in ("add_worker", "remove_worker", "migrate"):
                live += _churn(pending, engine.controller, engine.inject,
                               reference_ctl, reference.process_many)
                pending = []
                _apply_topology(engine, op, arg)
            else:
                pending.append((op, arg))
        live += _churn(pending, engine.controller, engine.inject,
                       reference_ctl, reference.process_many)

        # Bit-identical end state: registers and per-entry counters per
        # surviving program, TM totals across the whole fleet (including
        # stats harvested from retired workers).
        for name, a, b in live:
            for mid in PROGRAMS[name].memories:
                assert engine.controller.snapshot_memory(
                    a, mid
                ) == reference_ctl.snapshot_memory(b, mid), (name, mid)
            assert engine.controller.program_stats(
                a
            ) == reference_ctl.program_stats(b), name
        totals = engine.stats()["totals"]
        assert totals["packets_in"] == reference.switch.packets_in
        assert totals["pipeline_passes"] == reference.switch.pipeline_passes
        for attr in ("forwarded", "dropped", "reflected", "to_cpu",
                     "multicast"):
            assert totals[attr] == getattr(reference.switch.tm, attr), attr
        assert engine.num_workers >= 1


@settings(max_examples=3, deadline=None)
@given(ops=ops_strategy)
def test_elastic_engine_matches_static_engine(ops):
    """Same schedule against a 2-worker engine that never rescales: the
    merged controller view (memory snapshots + stats) is topology-blind.
    Exercises ``_assert_final_state``-grade checks at the engine level
    via the coordinator's own mirrored data plane."""
    with ShardedEngine(3) as elastic, ShardedEngine(2) as static:
        live = []
        pending = []
        for op, arg in ops:
            if op in ("add_worker", "remove_worker", "migrate"):
                live += _churn(pending, elastic.controller, elastic.inject,
                               static.controller, static.inject)
                pending = []
                _apply_topology(elastic, op, arg)
            else:
                pending.append((op, arg))
        live += _churn(pending, elastic.controller, elastic.inject,
                       static.controller, static.inject)
        for name, a, b in live:
            for mid in PROGRAMS[name].memories:
                assert elastic.controller.snapshot_memory(
                    a, mid
                ) == static.controller.snapshot_memory(b, mid), (name, mid)
        got, want = elastic.stats()["totals"], static.stats()["totals"]
        for attr in ("packets_in", "forwarded", "dropped", "to_cpu"):
            assert got[attr] == want[attr], attr
