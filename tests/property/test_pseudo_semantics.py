"""Property-based equivalence of pseudo-primitive expansions.

For arbitrary register states, executing a pseudo primitive's expansion
(the real primitives the compiler emits, Fig. 14 + our SUB erratum fix)
must produce the same architectural state as the pseudo primitive's
documented semantics from Table 3 — including preservation of the
supportive register via BACKUP/RESTORE.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.ir import build_ir
from repro.compiler.translate import expand_pseudo
from repro.lang.ast import ArgKind
from repro.lang.parser import parse_source

MASK = 0xFFFFFFFF

reg_values = st.integers(min_value=0, max_value=MASK)
two_regs = st.sampled_from(
    [("har", "sar"), ("har", "mar"), ("sar", "har"), ("sar", "mar"), ("mar", "har"), ("mar", "sar")]
)
one_reg = st.sampled_from(["har", "sar", "mar"])
immediates = st.integers(min_value=0, max_value=MASK)


def run_expansion(body: str, state: dict[str, int]) -> dict[str, int]:
    """Expand the one-statement program and interpret the real primitives
    over a software register file (with a backup slot)."""
    unit = parse_source(f"program p(<hdr.ipv4.ttl, 0, 0x0>) {{ {body} }}")
    ir = build_ir(unit.programs[0])
    expand_pseudo(ir)
    regs = dict(state)
    backup = 0
    for op in ir.root.ops:
        name = op.name
        args = [str(a.value) if a.kind is not ArgKind.IMMEDIATE else int(a.value) for a in op.args]
        if name == "LOADI":
            regs[args[0]] = args[1] & MASK
        elif name == "ADD":
            regs[args[0]] = (regs[args[0]] + regs[args[1]]) & MASK
        elif name == "AND":
            regs[args[0]] &= regs[args[1]]
        elif name == "OR":
            regs[args[0]] |= regs[args[1]]
        elif name == "XOR":
            regs[args[0]] ^= regs[args[1]]
        elif name == "MAX":
            regs[args[0]] = max(regs[args[0]], regs[args[1]])
        elif name == "MIN":
            regs[args[0]] = min(regs[args[0]], regs[args[1]])
        elif name == "BACKUP":
            backup = regs[args[0]]
        elif name == "RESTORE":
            regs[args[0]] = backup
        else:
            raise AssertionError(f"unexpected op {name} in expansion")
    return regs


def fresh_state(a=0, b=0, c=0):
    return {"har": a, "sar": b, "mar": c}


class TestTwoRegisterPseudo:
    @given(two_regs, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_move(self, regs, a, b, c):
        r0, r1 = regs
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"MOVE({r0}, {r1});", state)
        assert out[r0] == state[r1]
        assert out[r1] == state[r1]

    @given(two_regs, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_sub(self, regs, a, b, c):
        r0, r1 = regs
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"SUB({r0}, {r1});", state)
        assert out[r0] == (state[r0] - state[r1]) & MASK
        # the subtrahend must be restored (Fig. 14's XOR trick)
        assert out[r1] == state[r1]

    @given(two_regs, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_equal(self, regs, a, b, c):
        r0, r1 = regs
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"EQUAL({r0}, {r1});", state)
        assert (out[r0] == 0) == (state[r0] == state[r1])

    @given(two_regs, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_sgt(self, regs, a, b, c):
        """SGT: reg0 == 0 iff reg0 >= reg1 (Table 3)."""
        r0, r1 = regs
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"SGT({r0}, {r1});", state)
        assert (out[r0] == 0) == (state[r0] >= state[r1])

    @given(two_regs, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_slt(self, regs, a, b, c):
        r0, r1 = regs
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"SLT({r0}, {r1});", state)
        assert (out[r0] == 0) == (state[r0] <= state[r1])


class TestImmediatePseudo:
    @given(one_reg, immediates, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_addi(self, r, i, a, b, c):
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"ADDI({r}, {i});", state)
        assert out[r] == (state[r] + i) & MASK

    @given(one_reg, immediates, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_subi(self, r, i, a, b, c):
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"SUBI({r}, {i});", state)
        assert out[r] == (state[r] - i) & MASK

    @given(one_reg, immediates, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_andi(self, r, i, a, b, c):
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"ANDI({r}, {i});", state)
        assert out[r] == state[r] & i

    @given(one_reg, immediates, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_xori(self, r, i, a, b, c):
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"XORI({r}, {i});", state)
        assert out[r] == state[r] ^ i

    @given(one_reg, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_not(self, r, a, b, c):
        state = {"har": a, "sar": b, "mar": c}
        out = run_expansion(f"NOT({r});", state)
        assert out[r] == (~state[r]) & MASK


class TestSupportiveRegisterPreservation:
    @given(one_reg, immediates, reg_values, reg_values, reg_values)
    @settings(max_examples=60)
    def test_live_supportive_register_preserved(self, r, i, a, b, c):
        """When every register is read later, the expansion must not leak
        the supportive register's clobbering."""
        state = {"har": a, "sar": b, "mar": c}
        body = (
            f"ADDI({r}, {i});"
            " MODIFY(hdr.ipv4.src, har); MODIFY(hdr.ipv4.dst, sar);"
            " MODIFY(hdr.ipv4.id, mar);"
        )
        unit = parse_source(f"program p(<hdr.ipv4.ttl, 0, 0x0>) {{ {body} }}")
        ir = build_ir(unit.programs[0])
        expand_pseudo(ir)
        regs = dict(state)
        backup = 0
        for op in ir.root.ops:
            if op.name == "MODIFY":
                continue
            name = op.name
            args = [
                str(arg.value) if arg.kind is not ArgKind.IMMEDIATE else int(arg.value)
                for arg in op.args
            ]
            if name == "LOADI":
                regs[args[0]] = args[1] & MASK
            elif name == "ADD":
                regs[args[0]] = (regs[args[0]] + regs[args[1]]) & MASK
            elif name == "AND":
                regs[args[0]] &= regs[args[1]]
            elif name == "XOR":
                regs[args[0]] ^= regs[args[1]]
            elif name == "BACKUP":
                backup = regs[args[0]]
            elif name == "RESTORE":
                regs[args[0]] = backup
        for other in ("har", "sar", "mar"):
            if other == r:
                assert regs[r] == (state[r] + i) & MASK
            else:
                assert regs[other] == state[other], f"{other} clobbered"
