"""Shared hypothesis strategies for generating valid P4runpro programs."""

from hypothesis import strategies as st

SIMPLE_TEMPLATES = [
    "LOADI(har, {i});",
    "LOADI(sar, {i});",
    "LOADI(mar, {i});",
    "ADD(har, sar);",
    "XOR(sar, mar);",
    "MIN(har, sar);",
    "MAX(mar, har);",
    "MOVE(har, mar);",
    "ADDI(sar, {i});",
    "SUBI(har, {i});",
    "ANDI(mar, {i});",
    "NOT(mar);",
    "SUB(har, sar);",
    "EQUAL(sar, mar);",
    "SGT(har, mar);",
    "EXTRACT(hdr.ipv4.src, har);",
    "EXTRACT(hdr.ipv4.dst, sar);",
    "MODIFY(hdr.ipv4.ttl, sar);",
    "MODIFY(hdr.ipv4.id, mar);",
    "HASH_5_TUPLE;",
    "HASH;",
    "DROP;",
    "RETURN;",
    "REPORT;",
]

MEMORY_TEMPLATES = [
    "HASH_5_TUPLE_MEM(m{j});",
    "HASH_MEM(m{j});",
    "MEMADD(m{j});",
    "MEMREAD(m{j});",
    "MEMWRITE(m{j});",
    "MEMOR(m{j});",
    "MEMMAX(m{j});",
]


@st.composite
def programs(draw, max_mems: int = 3, max_stmts: int = 4, max_cases: int = 3):
    """Random valid programs: a prefix, a BRANCH with 1-N cases, a suffix."""
    num_mems = draw(st.integers(1, max_mems))
    decls = "".join(f"@ m{j} 64\n" for j in range(num_mems))

    def stmts(budget):
        count = draw(st.integers(0, budget))
        out = []
        for _ in range(count):
            if draw(st.booleans()):
                template = draw(st.sampled_from(SIMPLE_TEMPLATES))
            else:
                template = draw(st.sampled_from(MEMORY_TEMPLATES))
            out.append(
                template.format(
                    i=draw(st.integers(0, 1000)),
                    j=draw(st.integers(0, num_mems - 1)),
                )
            )
        return out

    prefix = stmts(max_stmts)
    cases = []
    for index in range(draw(st.integers(1, max_cases))):
        body = stmts(max_stmts) or ["DROP;"]
        cases.append(f"case(<har, {index}, 0xff>) {{ {' '.join(body)} }}")
    suffix = stmts(2)
    body = " ".join(prefix) + " BRANCH: " + " ".join(cases) + " " + " ".join(suffix)
    return f"{decls}program p(<hdr.ipv4.ttl, 0, 0x0>) {{ {body} }}"
