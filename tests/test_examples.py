"""Smoke tests: every example script runs to completion.

Each example carries its own assertions; this suite runs them in-process
(fast — no interpreter startup per script) with stdout captured.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        spec.loader.exec_module(module)
        module.main()
    return buffer.getvalue()


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"example {name} produced no output"


def test_example_inventory_matches_readme():
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    for name in EXAMPLES:
        assert f"`{name}.py`" in readme, f"{name}.py missing from README"


def test_quickstart_output_shape():
    output = run_example("quickstart")
    assert "deployed 'cache'" in output
    assert "cache read   -> reflect" in output
    assert "revoked in" in output
