"""Library metadata + compilation tests for the 15 Table-1 programs."""

import pytest

from repro.compiler import compile_source
from repro.programs import (
    ALL_PROGRAM_NAMES,
    PROGRAMS,
    get,
    source_loc,
    source_with_memory,
)


class TestRegistry:
    def test_fifteen_programs(self):
        assert len(PROGRAMS) == 15

    def test_expected_names(self):
        assert set(ALL_PROGRAM_NAMES) == {
            "cache",
            "lb",
            "hh",
            "nc",
            "dqacc",
            "firewall",
            "l2fwd",
            "l3route",
            "tunnel",
            "calc",
            "ecn",
            "cms",
            "bf",
            "sumax",
            "hll",
        }

    def test_get_unknown(self):
        with pytest.raises(KeyError, match="unknown program"):
            get("nonesuch")

    def test_paper_metadata_present(self):
        for info in PROGRAMS.values():
            assert info.paper_runpro_loc > 0
            assert info.paper_p4_loc > info.paper_runpro_loc * 0  # present
            assert info.paper_update_ms > 0

    def test_prior_work_annotations(self):
        assert PROGRAMS["cache"].prior_system == "ActiveRMT"
        assert PROGRAMS["cms"].prior_system == "FlyMon"
        assert PROGRAMS["nc"].prior_system is None


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAM_NAMES))
    def test_compiles(self, name):
        compiled = compile_source(PROGRAMS[name].source)
        assert compiled.name == name
        assert compiled.problem.num_depths >= 1

    def test_exactly_two_programs_recirculate(self):
        """Paper §6.3: 13 of 15 run without recirculation."""
        recirculating = {
            name
            for name in ALL_PROGRAM_NAMES
            if compile_source(PROGRAMS[name].source).allocation.max_iteration > 0
        }
        assert recirculating == {"hh", "nc"}

    def test_hll_has_most_entries(self):
        """HLL's inelastic case blocks dominate (Table 1's worst update)."""
        entries = {
            name: compile_source(PROGRAMS[name].source).problem.entries_total()
            for name in ALL_PROGRAM_NAMES
        }
        assert max(entries, key=entries.get) == "hll"

    def test_loc_within_factor_of_paper(self):
        """Our sources track the paper's P4runpro LoC within ~2x."""
        for info in PROGRAMS.values():
            ours = source_loc(info.source)
            assert ours <= info.paper_runpro_loc * 2
            assert ours >= info.paper_runpro_loc / 2.5

    def test_runpro_loc_below_p4_loc(self):
        """The expressiveness claim: P4runpro programs are shorter than
        their conventional-P4 control blocks (Table 1)."""
        for info in PROGRAMS.values():
            assert source_loc(info.source) < info.paper_p4_loc


class TestMemoryRewrite:
    def test_rewrite_changes_all_decls(self):
        source = source_with_memory("hh", 1024)
        compiled = compile_source(source)
        assert all(size == 1024 for size in compiled.problem.memory_sizes.values())

    def test_rewrite_preserves_program(self):
        source = source_with_memory("cache", 512)
        compiled = compile_source(source)
        assert compiled.name == "cache"
        assert compiled.problem.memory_sizes == {"mem1": 512}

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            source_with_memory("cache", 300)

    def test_program_without_memory_unchanged(self):
        assert source_with_memory("l2fwd", 1024) == PROGRAMS["l2fwd"].source
