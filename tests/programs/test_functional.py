"""Functional tests: each Table-1 program deployed on the simulator and
driven with packets — the reproduction's equivalent of the paper's claim
that P4runpro programs behave like their conventional-P4 counterparts.
"""

import pytest

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.hashing import HashUnit
from repro.rmt.packet import (
    NC_READ,
    NC_WRITE,
    Packet,
    make_cache,
    make_calc,
    make_l2,
    make_tcp,
    make_udp,
)
from repro.rmt.pipeline import Verdict


@pytest.fixture
def env():
    ctl, dataplane = Controller.with_simulator()
    return ctl, dataplane


IN_NET = 0x0A000000  # 10.0.0.0/16, the workload filters' subnet


class TestCache:
    KEY = 0x8888  # low word matches the program's mar condition

    @pytest.fixture
    def deployed(self, env):
        ctl, dataplane = env
        handle = ctl.deploy(PROGRAMS["cache"].source)
        return ctl, dataplane, handle

    def test_write_then_read(self, deployed):
        _, dataplane, _ = deployed
        wr = dataplane.process(make_cache(1, 2, op=NC_WRITE, key=self.KEY, value=777))
        assert wr.verdict is Verdict.DROP
        rd = dataplane.process(make_cache(1, 2, op=NC_READ, key=self.KEY))
        assert rd.verdict is Verdict.REFLECT
        assert rd.packet.get_field("hdr.nc.val") == 777

    def test_miss_forwarded_to_server(self, deployed):
        _, dataplane, _ = deployed
        miss = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x1234))
        assert miss.verdict is Verdict.FORWARD
        assert miss.egress_port == 32

    def test_control_plane_sees_written_value(self, deployed):
        ctl, dataplane, handle = deployed
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=self.KEY, value=55))
        assert ctl.read_memory(handle, "mem1", 128) == 55

    def test_non_cache_traffic_untouched(self, deployed):
        _, dataplane, _ = deployed
        other = dataplane.process(make_udp(1, 2, 3, 9999))
        assert other.verdict is Verdict.FORWARD
        assert other.egress_port == 0


class TestLoadBalancer:
    @pytest.fixture
    def deployed(self, env):
        ctl, dataplane = env
        handle = ctl.deploy(PROGRAMS["lb"].source)
        for addr in range(256):
            ctl.write_memory(handle, "port_pool", addr, addr % 2)
            ctl.write_memory(handle, "dip_pool", addr, 0x0A00B000 + addr % 2)
        return ctl, dataplane, handle

    def _packet(self, i):
        return make_udp(0x0B000000 + i, IN_NET | (i + 1), 1000 + i, 80)

    def test_forwards_to_pool_ports(self, deployed):
        _, dataplane, _ = deployed
        ports = {dataplane.process(self._packet(i)).egress_port for i in range(64)}
        assert ports == {0, 1}

    def test_dip_rewritten_consistently_with_port(self, deployed):
        _, dataplane, _ = deployed
        for i in range(32):
            result = dataplane.process(self._packet(i))
            dip = result.packet.get_field("hdr.ipv4.dst")
            assert dip == 0x0A00B000 + result.egress_port

    def test_per_flow_consistency(self, deployed):
        _, dataplane, _ = deployed
        first = dataplane.process(self._packet(7)).egress_port
        for _ in range(5):
            assert dataplane.process(self._packet(7)).egress_port == first

    def test_non_matching_dst_untouched(self, deployed):
        _, dataplane, _ = deployed
        result = dataplane.process(make_udp(1, 0x0B000001, 5, 80))
        assert result.packet.get_field("hdr.ipv4.dst") == 0x0B000001


class TestHeavyHitter:
    THRESHOLD = 8

    @pytest.fixture
    def deployed(self, env):
        ctl, dataplane = env
        source = PROGRAMS["hh"].source.replace("1024", str(self.THRESHOLD))
        ctl.deploy(source)
        return ctl, dataplane

    def _flow_packet(self, flow=0):
        return make_udp(IN_NET | (flow + 1), 0x0B000001, 4000 + flow, 80)

    def test_reports_after_threshold(self, deployed):
        _, dataplane = deployed
        verdicts = [
            dataplane.process(self._flow_packet()).verdict
            for _ in range(self.THRESHOLD + 2)
        ]
        assert Verdict.TO_CPU in verdicts
        first_report = verdicts.index(Verdict.TO_CPU)
        assert first_report + 1 >= self.THRESHOLD

    def test_reports_exactly_once_per_flow(self, deployed):
        """The Bloom filter suppresses duplicate reports (Fig. 17)."""
        _, dataplane = deployed
        verdicts = [
            dataplane.process(self._flow_packet()).verdict
            for _ in range(self.THRESHOLD * 4)
        ]
        assert verdicts.count(Verdict.TO_CPU) == 1

    def test_light_flows_never_reported(self, deployed):
        _, dataplane = deployed
        for flow in range(1, 30):
            for _ in range(self.THRESHOLD - 2):
                result = dataplane.process(self._flow_packet(flow))
                assert result.verdict is not Verdict.TO_CPU

    def test_hh_packets_recirculate(self, deployed):
        _, dataplane = deployed
        result = dataplane.process(self._flow_packet())
        assert result.recirculations == 1


class TestNetCache:
    @pytest.fixture
    def deployed(self, env):
        ctl, dataplane = env
        source = (
            PROGRAMS["nc"]
            .source.replace("LOADI(har, 128);", "LOADI(har, 4);")
            .replace("case(<har, 128, 0xffffffff>)", "case(<har, 4, 0xffffffff>)")
        )
        ctl.deploy(source)
        return ctl, dataplane

    def test_cache_hit_read(self, deployed):
        _, dataplane = deployed
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=5))
        result = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert result.verdict is Verdict.REFLECT
        assert result.packet.get_field("hdr.nc.val") == 5

    def test_miss_forwarded(self, deployed):
        _, dataplane = deployed
        result = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x42))
        assert result.verdict is Verdict.FORWARD
        assert result.egress_port == 32

    def test_hot_missed_key_reported(self, deployed):
        _, dataplane = deployed
        verdicts = [
            dataplane.process(make_cache(3, 4, op=NC_READ, key=0x4242)).verdict
            for _ in range(8)
        ]
        assert Verdict.TO_CPU in verdicts


class TestDQAcc:
    def test_aggregation_accumulates(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["dqacc"].source)
        totals = []
        for value in (5, 7, 11):
            pkt = make_cache(1, 2, op=3, key=0x77, value=value)
            result = dataplane.process(pkt)
            assert result.verdict is Verdict.FORWARD
            totals.append(result.packet.get_field("hdr.nc.val"))
        assert totals == [5, 12, 23]

    def test_distinct_groups_isolated(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["dqacc"].source)
        a = dataplane.process(make_cache(1, 2, op=3, key=0x100, value=9))
        b = dataplane.process(make_cache(1, 2, op=3, key=0x95, value=4))
        assert a.packet.get_field("hdr.nc.val") == 9
        assert b.packet.get_field("hdr.nc.val") == 4


class TestFirewall:
    @pytest.fixture
    def deployed(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["firewall"].source)
        return ctl, dataplane

    def test_outbound_forwarded_upstream(self, deployed):
        _, dataplane = deployed
        result = dataplane.process(make_tcp(IN_NET | 5, 0x0B000001, 1000, 80))
        assert result.verdict is Verdict.FORWARD
        assert result.egress_port == 1

    def test_inbound_to_initiator_admitted(self, deployed):
        _, dataplane = deployed
        dataplane.process(make_tcp(IN_NET | 5, 0x0B000001, 1000, 80))
        back = dataplane.process(make_tcp(0x0B000001, IN_NET | 5, 80, 1000))
        assert back.verdict is Verdict.FORWARD
        assert back.egress_port == 0

    def test_unsolicited_inbound_dropped(self, deployed):
        _, dataplane = deployed
        result = dataplane.process(make_tcp(0x0B000001, IN_NET | 77, 80, 1000))
        assert result.verdict is Verdict.DROP


class TestForwardingPrograms:
    def test_l2fwd(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["l2fwd"].source)
        assert dataplane.process(make_l2(dst=1)).egress_port == 1
        assert dataplane.process(make_l2(dst=2)).egress_port == 2
        assert dataplane.process(make_l2(dst=77)).egress_port == 0

    def test_l3route(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["l3route"].source)
        assert dataplane.process(make_udp(1, 0x0A000009, 5, 6)).egress_port == 1
        assert dataplane.process(make_udp(1, 0x0A010009, 5, 6)).egress_port == 2
        assert dataplane.process(make_udp(1, 0x0B000009, 5, 6)).egress_port == 0

    def test_tunnel(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["tunnel"].source)

        def tun_packet(label):
            pkt = make_l2()
            pkt.headers["eth"]["etype"] = 0x88F7
            pkt.headers["tun"] = {"id": label}
            return pkt

        assert dataplane.process(tun_packet(100)).egress_port == 1
        assert dataplane.process(tun_packet(200)).egress_port == 2
        assert dataplane.process(tun_packet(300)).egress_port == 0


class TestCalculator:
    @pytest.fixture
    def deployed(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["calc"].source)
        return dataplane

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (1, 7, 9, 16),  # ADD
            (2, 10, 3, 7),  # SUB
            (2, 3, 10, (3 - 10) & 0xFFFFFFFF),  # SUB wraps
            (3, 0b1100, 0b1010, 0b1000),  # AND
            (4, 0b1100, 0b1010, 0b1110),  # OR
            (5, 0b1100, 0b1010, 0b0110),  # XOR
        ],
    )
    def test_operations(self, deployed, op, a, b, expected):
        result = deployed.process(make_calc(1, 2, op=op, a=a, b=b))
        assert result.verdict is Verdict.REFLECT
        assert result.packet.get_field("hdr.calc.result") == expected

    def test_unknown_opcode_dropped(self, deployed):
        result = deployed.process(make_calc(1, 2, op=9, a=1, b=1))
        assert result.verdict is Verdict.DROP


class TestECN:
    @pytest.fixture
    def deployed(self, env):
        ctl, dataplane = env
        ctl.deploy(PROGRAMS["ecn"].source)
        return dataplane

    def _ect_packet(self, depth):
        pkt = make_udp(1, 2, 3, 4)
        pkt.set_field("hdr.ipv4.ecn", 1)
        pkt.queue_depth = depth
        return pkt

    def test_shallow_queue_not_marked(self, deployed):
        result = deployed.process(self._ect_packet(10))
        assert result.packet.get_field("hdr.ipv4.ecn") == 1

    def test_deep_queue_marked_ce(self, deployed):
        result = deployed.process(self._ect_packet(5000))
        assert result.packet.get_field("hdr.ipv4.ecn") == 3

    def test_non_ect_ignored(self, deployed):
        pkt = make_udp(1, 2, 3, 4)
        pkt.queue_depth = 5000
        result = deployed.process(pkt)
        assert result.packet.get_field("hdr.ipv4.ecn") == 0


class TestSketches:
    """CMS / BF / SuMax validated end to end through the control plane's
    address translation: recompute the data plane's bucket with the same
    CRC and read it back via the raw memory API."""

    def _bucket(self, packet, algorithm, mask=255):
        return HashUnit(algorithm).hash_five_tuple(packet.five_tuple()) & mask

    def test_cms_counts(self, env):
        ctl, dataplane = env
        handle = ctl.deploy(PROGRAMS["cms"].source)
        pkt = make_udp(1, 2, 3, 4)
        for _ in range(5):
            dataplane.process(pkt.clone())
        row1 = self._bucket(pkt, "crc_16_buypass")
        row2 = self._bucket(pkt, "crc_16_mcrf4xx")
        assert ctl.read_memory(handle, "cms_row1", row1) == 5
        assert ctl.read_memory(handle, "cms_row2", row2) == 5

    def test_bf_membership(self, env):
        ctl, dataplane = env
        handle = ctl.deploy(PROGRAMS["bf"].source)
        pkt = make_udp(9, 8, 7, 6)
        dataplane.process(pkt.clone())
        row1 = self._bucket(pkt, "crc_16_buypass")
        row2 = self._bucket(pkt, "crc_16_mcrf4xx")
        assert ctl.read_memory(handle, "bf_row1", row1) == 1
        assert ctl.read_memory(handle, "bf_row2", row2) == 1

    def test_sumax_tracks_maximum(self, env):
        ctl, dataplane = env
        handle = ctl.deploy(PROGRAMS["sumax"].source)
        for size in (100, 900, 300):
            dataplane.process(make_udp(5, 6, 7, 8, size=size))
        pkt = make_udp(5, 6, 7, 8)
        row1 = self._bucket(pkt, "crc_16_buypass")
        stored = ctl.read_memory(handle, "sumax_row1", row1)
        assert stored == 900 - 14  # ipv4.len excludes the Ethernet header

    def test_hll_registers_populate(self, env):
        ctl, dataplane = env
        handle = ctl.deploy(PROGRAMS["hll"].source)
        for i in range(200):
            dataplane.process(make_udp(i + 1, 2, 3, 4))
        registers = [ctl.read_memory(handle, "hll_regs", i) for i in range(64)]
        assert any(r > 0 for r in registers)
        assert all(r <= 11 for r in registers)
        assert ctl.read_memory(handle, "hll_sum", 0) > 0


class TestIsolation:
    def test_fifteen_programs_coexist(self, env):
        """Deploy all 15 programs at once.

        Traffic ownership follows the init table's first-match order (the
        operator's responsibility when filters overlap), but resource
        isolation must hold for all 15, and programs whose filters stay
        reachable must keep their exact behaviour.
        """
        ctl, dataplane = env
        for name, info in PROGRAMS.items():
            ctl.deploy(info.source)
        assert len(ctl.running_programs()) == 15
        # cache owns UDP:7777 (deployed before nc) and still answers.
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=3))
        rd = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert rd.packet.get_field("hdr.nc.val") == 3
        # l2fwd owns non-IP Ethernet (firewall's filter needs IPv4).
        assert dataplane.process(make_l2(dst=2)).egress_port == 2

    def test_deploy_revoke_interleaving_preserves_others(self, env):
        ctl, dataplane = env
        cache = ctl.deploy(PROGRAMS["cache"].source)
        calc = ctl.deploy(PROGRAMS["calc"].source)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=9))
        ctl.revoke(calc)
        rd = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert rd.verdict is Verdict.REFLECT
        assert rd.packet.get_field("hdr.nc.val") == 9
        ctl.revoke(cache)
        again = ctl.deploy(PROGRAMS["calc"].source)
        result = dataplane.process(make_calc(1, 2, op=1, a=2, b=3))
        assert result.packet.get_field("hdr.calc.result") == 5
