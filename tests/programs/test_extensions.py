"""Extension-program tests (mlagg / ratelimit / syncount)."""

import pytest

from repro.compiler import compile_source
from repro.controlplane import Controller
from repro.programs.extensions import (
    EXTENSION_PROGRAMS,
    make_mlagg,
    make_ratelimit,
    make_syncount,
)
from repro.rmt.packet import make_tcp, make_udp
from repro.rmt.pipeline import Verdict


class TestRegistry:
    def test_all_extensions_compile(self):
        for name, ext in EXTENSION_PROGRAMS.items():
            compiled = compile_source(ext.source)
            assert compiled.name == name

    def test_parameterization(self):
        ext = make_mlagg(num_workers=8, group=3, port=1234)
        assert "MULTICAST(3)" in ext.source
        assert "<hdr.udp.dst_port, 1234, 0xffff>" in ext.source
        assert ext.multicast_groups == (3,)

    def test_ratelimit_budget_parameter(self):
        ext = make_ratelimit(budget=10)
        assert "LOADI(har, 10)" in ext.source


class TestRateLimit:
    def test_budget_enforced(self):
        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(make_ratelimit(budget=5, port=9000).source)
        flow = lambda: make_udp(1, 2, 3, 9000)
        verdicts = [dataplane.process(flow()).verdict for _ in range(8)]
        assert verdicts.count(Verdict.FORWARD) == 4
        assert verdicts.count(Verdict.DROP) == 4

    def test_flows_budgeted_independently(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(make_ratelimit(budget=5, port=9000).source)
        for _ in range(8):
            dataplane.process(make_udp(1, 2, 3, 9000))
        fresh = dataplane.process(make_udp(9, 9, 9, 9000))
        assert fresh.verdict is Verdict.FORWARD

    def test_control_plane_reset_restores_budget(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(make_ratelimit(budget=5, port=9000).source)
        flow = lambda: make_udp(1, 2, 3, 9000)
        for _ in range(8):
            dataplane.process(flow())
        # Operator resets the window: zero every counter.
        for vaddr in range(256):
            ctl.write_memory(handle, "rl_counts", vaddr, 0)
        assert dataplane.process(flow()).verdict is Verdict.FORWARD


class TestSynCount:
    def _syn(self, dst, sport=1000):
        return make_tcp(0x0C000001 + sport, dst, sport, 80, flags=0x02)

    def test_flood_reported_once(self):
        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(make_syncount(threshold=8).source)
        verdicts = [
            dataplane.process(self._syn(0x0A0000AA, sport=i)).verdict
            for i in range(20)
        ]
        assert verdicts.count(Verdict.TO_CPU) == 1
        assert verdicts.index(Verdict.TO_CPU) == 7  # the threshold-th SYN

    def test_non_syn_ignored(self):
        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(make_syncount(threshold=4).source)
        for i in range(10):
            result = dataplane.process(
                make_tcp(1, 0x0A0000AA, 1000 + i, 80, flags=0x10)  # ACK
            )
            assert result.verdict is not Verdict.TO_CPU

    def test_distinct_victims_tracked_separately(self):
        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(make_syncount(threshold=8).source)
        for i in range(6):
            dataplane.process(self._syn(0x0A0000AA, sport=i))
        result = dataplane.process(self._syn(0x0A0000BB, sport=99))
        assert result.verdict is not Verdict.TO_CPU
