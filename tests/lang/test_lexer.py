"""Tokenizer tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert values("cache") == ["cache"]
        assert kinds("cache")[0] is TokenKind.IDENT

    def test_keywords(self):
        assert kinds("program")[0] is TokenKind.KEYWORD
        assert kinds("case")[0] is TokenKind.KEYWORD

    def test_dotted_field_single_token(self):
        assert values("hdr.udp.dst_port") == ["hdr.udp.dst_port"]

    def test_punctuation(self):
        assert values("@(){}<>,;:") == list("@(){}<>,;:")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]


class TestNumbers:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0", 0),
            ("512", 512),
            ("0x8888", 0x8888),
            ("0XFF", 0xFF),
            ("0b1101", 0b1101),
            ("0xffffffff", 0xFFFFFFFF),
        ],
    )
    def test_integer_literals(self, text, value):
        assert values(text) == [value]

    def test_ip_address_literal(self):
        assert values("10.0.0.0") == [0x0A000000]
        assert values("255.255.0.0") == [0xFFFF0000]

    def test_malformed_ip_rejected(self):
        with pytest.raises(LexError):
            tokenize("10.0.0")
        with pytest.raises(LexError):
            tokenize("10.0.0.256")

    def test_malformed_hex_rejected(self):
        with pytest.raises(LexError):
            tokenize("0xZZ")


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment_tracks_lines(self):
        tokens = tokenize("/* one\ntwo\nthree */ x")
        assert tokens[0].value == "x"
        assert tokens[0].line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* never closed")

    def test_comment_at_eof(self):
        assert values("a //tail") == ["a"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a $ b")

    def test_error_carries_line(self):
        try:
            tokenize("ok\n%")
        except LexError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected LexError")


class TestRealProgram:
    def test_cache_fragment(self):
        source = "program cache(<hdr.udp.dst_port, 7777, 0xffff>) { DROP; }"
        tokens = tokenize(source)
        assert tokens[0] == Token(TokenKind.KEYWORD, "program", 1)
        assert any(t.value == 7777 for t in tokens)
        assert any(t.value == 0xFFFF for t in tokens)
