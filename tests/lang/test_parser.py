"""P4runpro grammar tests."""

import pytest

from repro.lang.ast import ArgKind, Branch, Primitive
from repro.lang.errors import ParseError
from repro.lang.parser import parse_source

MINIMAL = "program p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }"


class TestPrograms:
    def test_minimal_program(self):
        unit = parse_source(MINIMAL)
        assert len(unit.programs) == 1
        assert unit.programs[0].name == "p"
        assert len(unit.programs[0].body) == 1

    def test_annotations(self):
        unit = parse_source("@ mem1 1024\n@ mem2 64\n" + MINIMAL)
        assert [(m.name, m.size) for m in unit.memories] == [("mem1", 1024), ("mem2", 64)]

    def test_memory_lookup(self):
        unit = parse_source("@ mem1 1024\n" + MINIMAL)
        assert unit.memory("mem1").size == 1024
        assert unit.memory("nope") is None

    def test_multiple_programs(self):
        unit = parse_source(MINIMAL + "\nprogram q(<hdr.ipv4.ttl, 0, 0x0>) { RETURN; }")
        assert [p.name for p in unit.programs] == ["p", "q"]

    def test_multiple_filters(self):
        unit = parse_source(
            "program p(<hdr.ipv4.ttl, 0, 0x0>, <hdr.udp.dst_port, 53, 0xffff>) { DROP; }"
        )
        assert len(unit.programs[0].filters) == 2
        assert unit.programs[0].filters[1].value == 53

    def test_no_program_rejected(self):
        with pytest.raises(ParseError, match="no program"):
            parse_source("@ mem1 4")

    def test_ip_address_in_filter(self):
        unit = parse_source("program p(<hdr.ipv4.dst, 10.0.0.0, 0xffff0000>) { DROP; }")
        assert unit.programs[0].filters[0].value == 0x0A000000


class TestPrimitives:
    def test_no_arg_primitive(self):
        unit = parse_source(MINIMAL)
        stmt = unit.programs[0].body[0]
        assert isinstance(stmt, Primitive)
        assert stmt.name == "DROP"
        assert stmt.args == ()

    def test_arg_kinds_inferred(self):
        unit = parse_source(
            "@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " EXTRACT(hdr.nc.op, har); LOADI(mar, 512); MEMREAD(m); }"
        )
        extract, loadi, memread = unit.programs[0].body
        assert [a.kind for a in extract.args] == [ArgKind.FIELD, ArgKind.REGISTER]
        assert [a.kind for a in loadi.args] == [ArgKind.REGISTER, ArgKind.IMMEDIATE]
        assert [a.kind for a in memread.args] == [ArgKind.MEMORY]

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ParseError, match="unknown primitive"):
            parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { FROBNICATE; }")

    def test_internal_primitive_rejected_at_parse(self):
        with pytest.raises(ParseError, match="unknown primitive"):
            parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { NOP; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { DROP }")

    def test_line_numbers_recorded(self):
        unit = parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) {\n\n DROP;\n}")
        assert unit.programs[0].body[0].line == 3


class TestBranch:
    BRANCHY = """
    program p(<hdr.ipv4.ttl, 0, 0x0>) {
        BRANCH:
        case(<har, 1, 0xff>) { DROP; }
        case(<sar, 2, 0xffffffff>, <mar, 3, 0xffffffff>) { RETURN; };
        FORWARD(1);
    }
    """

    def test_branch_structure(self):
        unit = parse_source(self.BRANCHY)
        branch, forward = unit.programs[0].body
        assert isinstance(branch, Branch)
        assert len(branch.cases) == 2
        assert forward.name == "FORWARD"

    def test_case_conditions(self):
        unit = parse_source(self.BRANCHY)
        branch = unit.programs[0].body[0]
        case0, case1 = branch.cases
        assert [(c.register, c.value, c.mask) for c in case0.conditions] == [("har", 1, 0xFF)]
        assert len(case1.conditions) == 2

    def test_case_bodies(self):
        unit = parse_source(self.BRANCHY)
        branch = unit.programs[0].body[0]
        assert branch.cases[0].body[0].name == "DROP"
        assert branch.cases[1].body[0].name == "RETURN"

    def test_nested_branch(self):
        unit = parse_source(
            """
            program p(<hdr.ipv4.ttl, 0, 0x0>) {
                BRANCH:
                case(<har, 1, 0xff>) {
                    BRANCH:
                    case(<sar, 0, 0xffffffff>) { REPORT; };
                };
            }
            """
        )
        outer = unit.programs[0].body[0]
        inner = outer.cases[0].body[0]
        assert isinstance(inner, Branch)
        assert inner.cases[0].body[0].name == "REPORT"

    def test_branch_without_cases_rejected(self):
        with pytest.raises(ParseError, match="at least one case"):
            parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { BRANCH: DROP; }")

    def test_condition_must_name_register(self):
        with pytest.raises(ParseError, match="register"):
            parse_source(
                "program p(<hdr.ipv4.ttl, 0, 0x0>) { BRANCH: case(<bogus, 1, 0xff>) { DROP; } }"
            )

    def test_semicolons_after_cases_optional(self):
        bare = "program p(<hdr.ipv4.ttl, 0, 0x0>) { BRANCH: case(<har, 1, 0xff>) { DROP; } }"
        semi = "program p(<hdr.ipv4.ttl, 0, 0x0>) { BRANCH: case(<har, 1, 0xff>) { DROP; }; }"
        for source in (bare, semi):
            unit = parse_source(source)
            assert len(unit.programs[0].body) == 1


class TestErrors:
    def test_unclosed_block(self):
        with pytest.raises(ParseError, match="end of input"):
            parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { DROP;")

    def test_garbage_after_programs(self):
        with pytest.raises(ParseError, match="unexpected token"):
            parse_source(MINIMAL + " garbage")

    def test_missing_filter(self):
        with pytest.raises(ParseError):
            parse_source("program p() { DROP; }")

    def test_error_has_line_number(self):
        try:
            parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) {\n BADPRIM;\n}")
        except ParseError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected ParseError")


class TestPaperPrograms:
    """The three paper listings must parse."""

    def test_cache(self):
        from repro.programs.library import CACHE_SOURCE

        unit = parse_source(CACHE_SOURCE)
        assert unit.programs[0].name == "cache"

    def test_lb(self):
        from repro.programs.library import LB_SOURCE

        unit = parse_source(LB_SOURCE)
        assert [m.name for m in unit.memories] == ["dip_pool", "port_pool"]

    def test_hh_nested_branches(self):
        from repro.programs.library import HH_SOURCE

        unit = parse_source(HH_SOURCE)
        outer = [s for s in unit.programs[0].body if isinstance(s, Branch)]
        assert len(outer) == 1
