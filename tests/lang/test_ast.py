"""AST helper tests."""

from repro.lang.ast import (
    Arg,
    ArgKind,
    count_loc,
    fld,
    imm,
    mem,
    reg,
    walk_statements,
)
from repro.lang.parser import parse_source


class TestArgHelpers:
    def test_constructors(self):
        assert reg("har") == Arg(ArgKind.REGISTER, "har")
        assert imm(5) == Arg(ArgKind.IMMEDIATE, 5)
        assert fld("hdr.ipv4.src") == Arg(ArgKind.FIELD, "hdr.ipv4.src")
        assert mem("m1") == Arg(ArgKind.MEMORY, "m1")

    def test_str(self):
        assert str(imm(5)) == "5"
        assert str(reg("sar")) == "sar"


class TestWalk:
    SOURCE = """
    program p(<hdr.ipv4.ttl, 0, 0x0>) {
        LOADI(har, 1);
        BRANCH:
        case(<har, 1, 0xff>) {
            DROP;
            BRANCH:
            case(<sar, 0, 0xffffffff>) { REPORT; };
        }
        case(<har, 2, 0xff>) { RETURN; }
        FORWARD(1);
    }
    """

    def test_walk_visits_all_statements(self):
        unit = parse_source(self.SOURCE)
        names = [
            getattr(s, "name", "BRANCH") for s in walk_statements(unit.programs[0].body)
        ]
        assert names.count("BRANCH") == 2
        for expected in ("LOADI", "DROP", "REPORT", "RETURN", "FORWARD"):
            assert expected in names

    def test_primitive_str(self):
        unit = parse_source(self.SOURCE)
        loadi = unit.programs[0].body[0]
        assert str(loadi) == "LOADI(har, 1)"


class TestCountLoc:
    def test_count_full_vs_inelastic(self):
        unit = parse_source(self.SOURCE_TWO_CASES)
        full = count_loc(unit)
        inelastic = count_loc(unit, count_elastic=False)
        assert full > inelastic

    SOURCE_TWO_CASES = """
    @ m 4
    program p(<hdr.ipv4.ttl, 0, 0x0>) {
        BRANCH:
        case(<har, 1, 0xff>) { DROP; }
        case(<har, 2, 0xff>) { RETURN; }
    }
    """

    def test_count_includes_memory_decls(self):
        with_mem = count_loc(parse_source(self.SOURCE_TWO_CASES))
        without = count_loc(
            parse_source(self.SOURCE_TWO_CASES.replace("@ m 4\n", ""))
        )
        assert with_mem == without + 1
