"""Semantic checker tests."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse_source
from repro.lang.semantics import check_unit


def check(source):
    check_unit(parse_source(source))


GOOD = "@ m 256\nprogram p(<hdr.udp.dst_port, 7777, 0xffff>) { MEMREAD(m); }"


class TestMemoryDecls:
    def test_valid_unit_passes(self):
        check(GOOD)

    def test_undeclared_memory(self):
        with pytest.raises(SemanticError, match="not declared"):
            check("program p(<hdr.ipv4.ttl, 0, 0x0>) { MEMREAD(ghost); }")

    def test_non_power_of_two_size(self):
        with pytest.raises(SemanticError, match="power of two"):
            check("@ m 100\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMREAD(m); }")

    def test_zero_size(self):
        with pytest.raises(SemanticError, match="non-positive"):
            check("@ m 0\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }")

    def test_duplicate_memory(self):
        with pytest.raises(SemanticError, match="duplicate memory"):
            check("@ m 4\n@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }")


class TestPrograms:
    def test_duplicate_program_names(self):
        src = (
            "program p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }"
            "program p(<hdr.ipv4.ttl, 0, 0x0>) { RETURN; }"
        )
        with pytest.raises(SemanticError, match="duplicate program"):
            check(src)

    def test_unknown_filter_field(self):
        with pytest.raises(SemanticError, match="unknown field"):
            check("program p(<hdr.nonsuch.x, 0, 0x0>) { DROP; }")

    def test_filter_value_too_wide(self):
        with pytest.raises(SemanticError, match="does not fit"):
            check("program p(<hdr.udp.dst_port, 0x10000, 0xffff>) { DROP; }")

    def test_filter_mask_too_wide(self):
        with pytest.raises(SemanticError, match="does not fit"):
            check("program p(<hdr.ipv4.ttl, 0, 0xfff>) { DROP; }")


class TestPrimitiveArgs:
    def test_wrong_arity(self):
        with pytest.raises(SemanticError, match="argument"):
            check("program p(<hdr.ipv4.ttl, 0, 0x0>) { LOADI(mar); }")

    def test_wrong_arg_kind(self):
        with pytest.raises(SemanticError, match="expected register"):
            check("program p(<hdr.ipv4.ttl, 0, 0x0>) { LOADI(512, mar); }")

    def test_unknown_field_in_extract(self):
        with pytest.raises(SemanticError, match="unknown field"):
            check("program p(<hdr.ipv4.ttl, 0, 0x0>) { EXTRACT(hdr.bogus.f, har); }")

    def test_immediate_too_wide(self):
        with pytest.raises(SemanticError, match="does not fit"):
            check("program p(<hdr.ipv4.ttl, 0, 0x0>) { LOADI(mar, 0x100000000); }")

    def test_forward_port_range(self):
        with pytest.raises(SemanticError, match="port"):
            check("program p(<hdr.ipv4.ttl, 0, 0x0>) { FORWARD(600); }")

    def test_meta_fields_allowed(self):
        check("program p(<hdr.ipv4.ttl, 0, 0x0>) { EXTRACT(meta.queue_depth, har); }")

    def test_alias_field_allowed(self):
        check(
            "program p(<hdr.udp.dst_port, 7777, 0xffff>) { MODIFY(hdr.nc.value, sar); }"
        )

    def test_pseudo_primitives_allowed(self):
        check(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " MOVE(har, sar); NOT(mar); SUBI(sar, 3); SGT(har, mar); }"
        )


class TestBranchSemantics:
    def test_condition_value_width(self):
        with pytest.raises(SemanticError, match="exceeds register width"):
            check(
                "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
                " BRANCH: case(<har, 0x100000000, 0xff>) { DROP; } }"
            )

    def test_condition_mask_width(self):
        with pytest.raises(SemanticError, match="exceeds register width"):
            check(
                "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
                " BRANCH: case(<har, 1, 0x1ffffffff>) { DROP; } }"
            )

    def test_nested_bodies_checked(self):
        with pytest.raises(SemanticError, match="not declared"):
            check(
                "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
                " BRANCH: case(<har, 1, 0xff>) { MEMREAD(ghost); } }"
            )

    def test_statements_after_forwarding_allowed(self):
        """RETURN only latches intrinsic metadata; the cache program runs
        memory reads after it (paper Fig. 2)."""
        check(
            "@ m 4\nprogram p(<hdr.udp.dst_port, 7777, 0xffff>) {"
            " RETURN; LOADI(mar, 1); MEMREAD(m); }"
        )


class TestLibraryPrograms:
    def test_all_fifteen_check(self):
        from repro.programs import PROGRAMS

        for info in PROGRAMS.values():
            check(info.source)
