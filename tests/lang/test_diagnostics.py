"""Diagnostic rendering tests."""

from repro.lang.diagnostics import annotate, check_source, explain
from repro.lang.errors import SemanticError

SOURCE = """@ m 256
program p(
    <hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);
    EXTRACT(hdr.nc.bogus, sar);
    DROP;
}"""


class TestAnnotate:
    def test_marker_on_target_line(self):
        text = annotate(SOURCE, 5)
        lines = text.splitlines()
        marked = [l for l in lines if l.startswith(">")]
        assert len(marked) == 1
        assert "hdr.nc.bogus" in marked[0]

    def test_context_window(self):
        text = annotate(SOURCE, 5, context=1)
        assert len(text.splitlines()) == 3

    def test_clamped_at_file_start(self):
        text = annotate(SOURCE, 1)
        assert text.splitlines()[0].startswith(">")

    def test_out_of_range_line(self):
        assert annotate(SOURCE, 99) == ""
        assert annotate(SOURCE, None) == ""

    def test_line_numbers_aligned(self):
        text = annotate(SOURCE, 5)
        widths = {line.index("|") for line in text.splitlines()}
        assert len(widths) == 1


class TestExplain:
    def test_includes_header_and_excerpt(self):
        error = SemanticError("unknown field 'hdr.nc.bogus'", 5)
        text = explain(SOURCE, error)
        assert text.startswith("error: line 5: unknown field")
        assert "> 5 |" in text

    def test_error_without_line(self):
        error = SemanticError("broken")
        assert explain(SOURCE, error) == "error: broken"


class TestCheckSource:
    def test_clean_source(self):
        from repro.programs import PROGRAMS

        assert check_source(PROGRAMS["cache"].source) == []

    def test_semantic_error_rendered(self):
        diagnostics = check_source(SOURCE)
        assert len(diagnostics) == 1
        assert "unknown field" in diagnostics[0]
        assert ">" in diagnostics[0]

    def test_parse_error_rendered(self):
        diagnostics = check_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { FROB; }")
        assert len(diagnostics) == 1
        assert "unknown primitive" in diagnostics[0]
