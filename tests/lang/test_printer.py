"""Pretty-printer tests, including parse/print round-trips."""

import pytest

from repro.lang.ast import Branch, Primitive
from repro.lang.parser import parse_source
from repro.lang.printer import format_program, format_unit
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS


def ast_equal(a, b) -> bool:
    """Structural AST equality, ignoring line numbers."""
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, Primitive) and isinstance(b, Primitive):
        return a.name == b.name and a.args == b.args
    if isinstance(a, Branch) and isinstance(b, Branch):
        if len(a.cases) != len(b.cases):
            return False
        for ca, cb in zip(a.cases, b.cases):
            if [(c.register, c.value, c.mask) for c in ca.conditions] != [
                (c.register, c.value, c.mask) for c in cb.conditions
            ]:
                return False
            if not ast_equal(ca.body, cb.body):
                return False
        return True
    return False


def unit_equal(a, b) -> bool:
    if [(m.name, m.size) for m in a.memories] != [(m.name, m.size) for m in b.memories]:
        return False
    if len(a.programs) != len(b.programs):
        return False
    for pa, pb in zip(a.programs, b.programs):
        if pa.name != pb.name:
            return False
        if [(f.field, f.value, f.mask) for f in pa.filters] != [
            (f.field, f.value, f.mask) for f in pb.filters
        ]:
            return False
        if not ast_equal(pa.body, pb.body):
            return False
    return True


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAM_NAMES))
    def test_library_program_round_trips(self, name):
        original = parse_source(PROGRAMS[name].source)
        printed = format_unit(original)
        reparsed = parse_source(printed)
        assert unit_equal(original, reparsed), printed

    def test_double_print_is_fixpoint(self):
        unit = parse_source(PROGRAMS["cache"].source)
        once = format_unit(unit)
        twice = format_unit(parse_source(once))
        assert once == twice


class TestFormatting:
    def test_memory_decls_first(self):
        unit = parse_source(PROGRAMS["lb"].source)
        text = format_unit(unit)
        assert text.startswith("@ dip_pool 256\n@ port_pool 256\n")

    def test_small_ints_decimal_large_hex(self):
        unit = parse_source(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) { LOADI(mar, 5); LOADI(sar, 512); }"
        )
        text = format_program(unit.programs[0])
        assert "LOADI(mar, 5);" in text
        assert "LOADI(sar, 0x200);" in text

    def test_nested_branch_indentation(self):
        unit = parse_source(PROGRAMS["hh"].source)
        text = format_program(unit.programs[0])
        assert "        case(" in text  # nested case indented deeper

    def test_no_arg_primitive(self):
        unit = parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { HASH_5_TUPLE; DROP; }")
        text = format_program(unit.programs[0])
        assert "HASH_5_TUPLE;" in text
        assert "DROP;" in text
