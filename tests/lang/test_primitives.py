"""Primitive registry tests against Table 3."""

import pytest

from repro.lang.ast import ArgKind
from repro.lang.primitives import (
    Category,
    FORWARDING_PRIMITIVES,
    MEMORY_PRIMITIVES,
    PSEUDO_PRIMITIVES,
    REGISTRY,
    SOURCE_PRIMITIVES,
    get,
    is_primitive,
)


class TestRegistry:
    def test_table3_primitive_count(self):
        """Table 3 lists 25 real primitives (+ MULTICAST, our SwitchML
        extension) + 10 pseudo primitives."""
        real = [s for s in REGISTRY.values() if not s.pseudo and not s.internal]
        pseudo = [s for s in REGISTRY.values() if s.pseudo]
        assert len(real) == 26
        assert len(pseudo) == 10

    def test_six_primitive_categories(self):
        cats = {s.category for s in REGISTRY.values() if not s.internal}
        assert cats == {
            Category.HEADER,
            Category.HASH,
            Category.BRANCH,
            Category.MEMORY,
            Category.ARITH,
            Category.FORWARD,
        }

    def test_memory_primitives(self):
        assert MEMORY_PRIMITIVES == {
            "MEMADD",
            "MEMSUB",
            "MEMAND",
            "MEMOR",
            "MEMREAD",
            "MEMWRITE",
            "MEMMAX",
        }

    def test_forwarding_primitives(self):
        assert FORWARDING_PRIMITIVES == {
            "FORWARD",
            "DROP",
            "RETURN",
            "REPORT",
            "MULTICAST",
        }

    def test_pseudo_primitives(self):
        assert PSEUDO_PRIMITIVES == {
            "MOVE",
            "NOT",
            "SUB",
            "EQUAL",
            "SGT",
            "SLT",
            "ADDI",
            "ANDI",
            "XORI",
            "SUBI",
        }

    def test_internals_not_in_source_set(self):
        for name in ("NOP", "OFFSET", "BACKUP", "RESTORE"):
            assert name not in SOURCE_PRIMITIVES
            assert REGISTRY[name].internal

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get("BOGUS")

    def test_is_primitive(self):
        assert is_primitive("EXTRACT")
        assert is_primitive("NOP")
        assert not is_primitive("extract")


class TestSignatures:
    @pytest.mark.parametrize(
        "name,signature",
        [
            ("EXTRACT", (ArgKind.FIELD, ArgKind.REGISTER)),
            ("MODIFY", (ArgKind.FIELD, ArgKind.REGISTER)),
            ("HASH_5_TUPLE", ()),
            ("HASH_5_TUPLE_MEM", (ArgKind.MEMORY,)),
            ("MEMADD", (ArgKind.MEMORY,)),
            ("LOADI", (ArgKind.REGISTER, ArgKind.IMMEDIATE)),
            ("ADD", (ArgKind.REGISTER, ArgKind.REGISTER)),
            ("SUBI", (ArgKind.REGISTER, ArgKind.IMMEDIATE)),
            ("FORWARD", (ArgKind.IMMEDIATE,)),
            ("DROP", ()),
            ("NOT", (ArgKind.REGISTER,)),
        ],
    )
    def test_signature(self, name, signature):
        assert get(name).signature == signature

    def test_memory_ops_flagged(self):
        assert get("MEMWRITE").memory_op
        assert not get("HASH_5_TUPLE_MEM").memory_op  # hash, not SALU access
