"""RPB action-interpreter tests."""

import pytest

from repro.dataplane import constants as dp
from repro.dataplane.rpb import RPB, execute_action
from repro.rmt.packet import make_udp
from repro.rmt.phv import PHV, PHVLayout
from repro.rmt.pipeline import FWD_FIELDS
from repro.rmt.salu import RegisterArray
from repro.rmt.stage import Stage
from repro.rmt.table import MatchActionTable


@pytest.fixture
def env():
    layout = PHVLayout()
    for name, width in {**FWD_FIELDS, **dp.P4RUNPRO_FIELDS}.items():
        layout.declare(name, width)
    packet = make_udp(0x0A000001, 0x0A000002, 1234, 80)
    phv = PHV(layout, packet)
    for header in ("eth", "ipv4", "udp"):
        phv.load_header(header)
    stage = Stage(1, "ingress")
    stage.attach_register_array(RegisterArray("rpb1.mem", 1024))
    table = MatchActionTable("rpb1", 16)
    rpb = RPB(1, table, "rpb1.mem")
    return rpb, phv, stage


def run(env, action, **data):
    rpb, phv, stage = env
    execute_action(rpb, action, data, phv, stage)
    return phv


class TestHeaderInteraction:
    def test_extract(self, env):
        phv = run(env, "EXTRACT", field="hdr.udp.dst_port", reg="har")
        assert phv.get("ud.har") == 80

    def test_modify(self, env):
        rpb, phv, stage = env
        phv.set("ud.sar", 9999)
        execute_action(rpb, "MODIFY", {"field": "hdr.udp.src_port", "reg": "sar"}, phv, stage)
        assert phv.get("hdr.udp.src_port") == 9999

    def test_modify_masks_to_field_width(self, env):
        rpb, phv, stage = env
        phv.set("ud.sar", 0x12345)
        execute_action(rpb, "MODIFY", {"field": "hdr.ipv4.ttl", "reg": "sar"}, phv, stage)
        assert phv.get("hdr.ipv4.ttl") == 0x45


class TestHash:
    def test_hash_5_tuple(self, env):
        phv = run(env, "HASH_5_TUPLE", algorithm="crc_16_buypass")
        assert 0 < phv.get("ud.har") <= 0xFFFF

    def test_hash_chains_har(self, env):
        rpb, phv, stage = env
        phv.set("ud.har", 5)
        execute_action(rpb, "HASH", {"algorithm": "crc_16_buypass"}, phv, stage)
        first = phv.get("ud.har")
        execute_action(rpb, "HASH", {"algorithm": "crc_16_buypass"}, phv, stage)
        assert phv.get("ud.har") != first

    def test_hash_5_tuple_mem_masks(self, env):
        phv = run(env, "HASH_5_TUPLE_MEM", algorithm="crc_16_buypass", mask=0xFF)
        assert phv.get("ud.mar") <= 0xFF

    def test_hash_mem_uses_har(self, env):
        rpb, phv, stage = env
        phv.set("ud.har", 77)
        execute_action(
            rpb, "HASH_MEM", {"algorithm": "crc_16_mcrf4xx", "mask": 0x3F}, phv, stage
        )
        assert phv.get("ud.mar") <= 0x3F

    def test_deterministic_per_flow(self, env):
        a = run(env, "HASH_5_TUPLE", algorithm="crc_aug_ccitt").get("ud.har")
        b = run(env, "HASH_5_TUPLE", algorithm="crc_aug_ccitt").get("ud.har")
        assert a == b


class TestMemoryAndOffset:
    def test_offset_adds_base_into_scratch(self, env):
        rpb, phv, stage = env
        phv.set("ud.mar", 10)
        execute_action(rpb, "OFFSET", {"base": 100, "mid": "m"}, phv, stage)
        assert phv.get("ud.phys_addr") == 110
        assert phv.get("ud.mar") == 10  # mar untouched

    def test_memwrite_then_memread(self, env):
        rpb, phv, stage = env
        phv.set("ud.phys_addr", 7)
        phv.set("ud.sar", 1234)
        execute_action(rpb, "MEMWRITE", {"mid": "m"}, phv, stage)
        phv.set("ud.sar", 0)
        execute_action(rpb, "MEMREAD", {"mid": "m"}, phv, stage)
        assert phv.get("ud.sar") == 1234

    def test_memadd_updates_sar(self, env):
        rpb, phv, stage = env
        phv.set("ud.phys_addr", 3)
        phv.set("ud.sar", 5)
        execute_action(rpb, "MEMADD", {"mid": "m"}, phv, stage)
        assert phv.get("ud.sar") == 5
        execute_action(rpb, "MEMADD", {"mid": "m"}, phv, stage)
        assert phv.get("ud.sar") == 10

    def test_address_wraps_modulo_array(self, env):
        rpb, phv, stage = env
        phv.set("ud.phys_addr", 1024 + 3)
        phv.set("ud.sar", 9)
        execute_action(rpb, "MEMWRITE", {"mid": "m"}, phv, stage)
        assert stage.register_arrays["rpb1.mem"].read(3) == 9


class TestArithmetic:
    def test_loadi(self, env):
        phv = run(env, "LOADI", reg="mar", value=512)
        assert phv.get("ud.mar") == 512

    @pytest.mark.parametrize(
        "action,a,b,expected",
        [
            ("ADD", 3, 4, 7),
            ("ADD", 0xFFFFFFFF, 1, 0),
            ("AND", 0b1100, 0b1010, 0b1000),
            ("OR", 0b1100, 0b1010, 0b1110),
            ("MAX", 5, 9, 9),
            ("MIN", 5, 9, 5),
            ("XOR", 0b1100, 0b1010, 0b0110),
        ],
    )
    def test_alu_ops(self, env, action, a, b, expected):
        rpb, phv, stage = env
        phv.set("ud.har", a)
        phv.set("ud.sar", b)
        execute_action(rpb, action, {"reg0": "har", "reg1": "sar"}, phv, stage)
        assert phv.get("ud.har") == expected
        assert phv.get("ud.sar") == b  # reg1 unchanged


class TestForwardingAndFlags:
    def test_forward(self, env):
        assert run(env, "FORWARD", port=32).get("meta.egress_port") == 32

    def test_drop(self, env):
        assert run(env, "DROP").get("ud.drop_ctl") == 1

    def test_return(self, env):
        assert run(env, "RETURN").get("ud.reflect") == 1

    def test_report(self, env):
        assert run(env, "REPORT").get("ud.to_cpu") == 1

    def test_set_branch(self, env):
        assert run(env, dp.ACTION_SET_BRANCH, branch_id=3).get("ud.branch_id") == 3

    def test_backup_restore_roundtrip(self, env):
        rpb, phv, stage = env
        phv.set("ud.mar", 42)
        execute_action(rpb, "BACKUP", {"reg": "mar"}, phv, stage)
        phv.set("ud.mar", 0)
        execute_action(rpb, "RESTORE", {"reg": "mar"}, phv, stage)
        assert phv.get("ud.mar") == 42

    def test_unknown_action_rejected(self, env):
        rpb, phv, stage = env
        with pytest.raises(ValueError, match="unknown action"):
            execute_action(rpb, "TELEPORT", {}, phv, stage)


class TestRPBLookupDispatch:
    def test_no_entry_is_nop(self, env):
        rpb, phv, stage = env
        before = dict(phv.values)
        rpb.apply(phv, stage)
        assert phv.values == before

    def test_matching_entry_executes(self, env):
        from repro.rmt.table import TableEntry, TernaryKey

        rpb, phv, stage = env
        phv.set("ud.program_id", 5)
        rpb.table.insert(
            TableEntry(
                (TernaryKey("ud.program_id", 5, 0xFFFF),),
                "LOADI",
                {"reg": "har", "value": 111},
            )
        )
        rpb.apply(phv, stage)
        assert phv.get("ud.har") == 111
