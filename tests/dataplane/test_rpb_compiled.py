"""compile_action / execute_action equivalence.

The RPB's compiled dispatch (one closure per installed entry) must leave
the PHV and stage state exactly where the reference interpreter does, for
every action in the pre-installed atomic operation set.
"""

import pytest

from repro.dataplane import constants as dp
from repro.dataplane.rpb import RPB, compile_action, execute_action
from repro.rmt.packet import make_udp
from repro.rmt.phv import PHV, PHVLayout
from repro.rmt.pipeline import FWD_FIELDS
from repro.rmt.salu import RegisterArray
from repro.rmt.stage import Stage
from repro.rmt.table import MatchActionTable

#: every action the RPB dispatches, with representative operands
CASES = [
    (dp.ACTION_SET_BRANCH, {"branch_id": 7}),
    ("EXTRACT", {"field": "hdr.udp.dst_port", "reg": "har"}),
    ("EXTRACT", {"field": "hdr.tcp.seq", "reg": "har"}),  # unparsed -> 0
    ("MODIFY", {"field": "hdr.udp.src_port", "reg": "sar"}),
    ("MODIFY", {"field": "hdr.tcp.seq", "reg": "sar"}),  # unparsed -> no-op
    ("HASH_5_TUPLE", {"algorithm": "crc_16_buypass"}),
    ("HASH", {"algorithm": "crc_16_buypass"}),
    ("HASH_5_TUPLE_MEM", {"algorithm": "crc_16_buypass", "mask": 0xFF}),
    ("HASH_MEM", {"algorithm": "crc_16_mcrf4xx", "mask": 0x3F}),
    ("OFFSET", {"base": 100}),
    ("MEMADD", {}),
    ("MEMSUB", {}),
    ("MEMAND", {}),
    ("MEMOR", {}),
    ("MEMREAD", {}),
    ("MEMWRITE", {}),
    ("MEMMAX", {}),
    ("LOADI", {"reg": "mar", "value": 42}),
    ("ADD", {"reg0": "har", "reg1": "sar"}),
    ("AND", {"reg0": "har", "reg1": "sar"}),
    ("OR", {"reg0": "sar", "reg1": "mar"}),
    ("MAX", {"reg0": "har", "reg1": "mar"}),
    ("MIN", {"reg0": "mar", "reg1": "sar"}),
    ("XOR", {"reg0": "har", "reg1": "sar"}),
    ("FORWARD", {"port": 12}),
    ("MULTICAST", {"group": 3}),
    ("DROP", {}),
    ("RETURN", {}),
    ("REPORT", {}),
    ("BACKUP", {"reg": "har"}),
    ("RESTORE", {"reg": "sar"}),
]


def build_env():
    layout = PHVLayout()
    for name, width in {**FWD_FIELDS, **dp.P4RUNPRO_FIELDS}.items():
        layout.declare(name, width)
    packet = make_udp(0x0A000001, 0x0A000002, 1234, 80)
    phv = PHV(layout, packet)
    for header in ("eth", "ipv4", "udp"):
        phv.load_header(header)
    phv.set("ud.har", 0x1234)
    phv.set("ud.sar", 0x00FF)
    phv.set("ud.mar", 0x0042)
    phv.set("ud.phys_addr", 5)
    phv.set("ud.reg_backup", 0xBEEF)
    stage = Stage(1, "ingress")
    array = RegisterArray("rpb1.mem", 64)
    for addr in range(array.size):
        array.write(addr, addr * 3)
    stage.attach_register_array(array)
    rpb = RPB(1, MatchActionTable("rpb1", 16), "rpb1.mem")
    return rpb, phv, stage, array


@pytest.mark.parametrize("action,data", CASES, ids=lambda c: str(c))
def test_compiled_equals_interpreted(action, data):
    rpb_a, phv_a, stage_a, array_a = build_env()
    rpb_b, phv_b, stage_b, array_b = build_env()

    execute_action(rpb_a, action, data, phv_a, stage_a)
    compile_action(rpb_b, action, data)(phv_b, stage_b)

    assert dict(phv_a.values) == dict(phv_b.values)
    assert [array_a.read(addr) for addr in range(array_a.size)] == [
        array_b.read(addr) for addr in range(array_b.size)
    ]


def test_unknown_action_raises_in_both_paths():
    rpb, phv, stage, _ = build_env()
    with pytest.raises(ValueError):
        execute_action(rpb, "NO_SUCH_OP", {}, phv, stage)
    with pytest.raises(ValueError):
        compile_action(rpb, "NO_SUCH_OP", {})


def test_closure_is_reusable():
    """One compiled closure services many packets (it is cached on the
    entry), so it must not capture per-packet state."""
    rpb, phv, stage, _ = build_env()
    op = compile_action(rpb, "ADD", {"reg0": "har", "reg1": "sar"})
    before = phv.get("ud.har")
    op(phv, stage)
    op(phv, stage)
    assert phv.get("ud.har") == (before + 2 * phv.get("ud.sar")) & 0xFFFFFFFF
