"""P4runpro data-plane construction and binding tests."""

import pytest

from repro.compiler.entries import EntryConfig, KeySpec
from repro.compiler.target import TargetSpec
from repro.dataplane import constants as dp
from repro.dataplane.runpro import P4runproDataPlane, UnknownTableError
from repro.rmt.packet import make_udp
from repro.rmt.pipeline import Verdict


@pytest.fixture(scope="module")
def dataplane():
    return P4runproDataPlane()


class TestConstruction:
    def test_all_tables_present(self, dataplane):
        expected = {dp.INIT_TABLE, dp.RECIRC_TABLE} | {
            dp.rpb_table(p) for p in range(1, 23)
        }
        assert set(dataplane.tables) == expected

    def test_rpb_table_capacity(self, dataplane):
        assert dataplane.tables["rpb1"].capacity == 2048

    def test_parser_frozen_after_provisioning(self, dataplane):
        assert dataplane.switch.parse_machine.frozen

    def test_register_arrays_sized(self, dataplane):
        for phys in (1, 10, 11, 22):
            assert dataplane._array(phys).size == 65536

    def test_ingress_egress_split(self, dataplane):
        # RPB 1..10 in ingress stages 1..10; 11..22 in egress stages 0..11.
        assert "rpb1.mem" in dataplane.switch.ingress.stages[1].register_arrays
        assert "rpb10.mem" in dataplane.switch.ingress.stages[10].register_arrays
        assert "rpb11.mem" in dataplane.switch.egress.stages[0].register_arrays
        assert "rpb22.mem" in dataplane.switch.egress.stages[11].register_arrays

    def test_p4runpro_fields_declared(self, dataplane):
        for name in dp.P4RUNPRO_FIELDS:
            assert name in dataplane.switch.layout.user_fields

    def test_custom_spec(self):
        spec = TargetSpec(num_ingress_rpbs=4, num_egress_rpbs=4)
        small = P4runproDataPlane(spec)
        assert set(small.tables) == {dp.INIT_TABLE, dp.RECIRC_TABLE} | {
            dp.rpb_table(p) for p in range(1, 9)
        }


class TestBinding:
    def _entry(self, table="rpb1", pid=9):
        return EntryConfig(
            table,
            (KeySpec("ud.program_id", pid, 0xFFFF),),
            "LOADI",
            (("reg", "har"), ("value", 5)),
        )

    def test_insert_and_delete(self):
        dataplane = P4runproDataPlane()
        handle = dataplane.insert_entry(self._entry())
        assert dataplane.tables["rpb1"].occupancy == 1
        dataplane.delete_entry("rpb1", handle)
        assert dataplane.tables["rpb1"].occupancy == 0

    def test_unknown_table(self, dataplane):
        with pytest.raises(UnknownTableError):
            dataplane.insert_entry(self._entry(table="rpb99"))

    def test_bucket_read_write(self):
        dataplane = P4runproDataPlane()
        dataplane.write_bucket(3, 100, 0xDEAD)
        assert dataplane.read_bucket(3, 100) == 0xDEAD

    def test_reset_memory(self):
        dataplane = P4runproDataPlane()
        dataplane.write_bucket(5, 10, 1)
        dataplane.write_bucket(5, 11, 2)
        dataplane.reset_memory(5, 10, 2)
        assert dataplane.read_bucket(5, 10) == 0
        assert dataplane.read_bucket(5, 11) == 0


class TestDefaultBehaviour:
    def test_unmatched_packet_forwarded_to_port_zero(self, dataplane):
        result = dataplane.process(make_udp(1, 2, 3, 4))
        assert result.verdict is Verdict.FORWARD
        assert result.egress_port == 0

    def test_unmatched_packet_keeps_program_id_zero(self, dataplane):
        # No init entries installed on this fixture's tables beyond other
        # tests' — process a packet and ensure nothing crashes and it
        # remains unowned (verdict default).
        result = dataplane.process(make_udp(9, 9, 9, 9))
        assert result.recirculations == 0
