"""Batched processing of recirculating programs.

``process_many`` resolves compiled state once per batch, but a
recirculating packet re-enters the pipeline mid-batch — the fast path
must produce exactly the sequential results, and the hardware
recirculation safety cap must fire at the same packet with every earlier
packet's side effects already committed.
"""

import pytest

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, make_cache, make_udp
from repro.rmt.pipeline import RecirculationLimitError, SwitchConfig, Verdict

IN_NET = 0x0A000000

#: low threshold so heavy-hitter reports appear inside a small batch
HH_SOURCE = PROGRAMS["hh"].source.replace("1024", "8")


def build(source=HH_SOURCE, max_recirculations=None):
    from repro.compiler.target import TargetSpec
    from repro.dataplane.runpro import P4runproDataPlane

    spec = TargetSpec()
    switch_config = None
    if max_recirculations is not None:
        switch_config = SwitchConfig(
            num_ingress_stages=spec.num_ingress_rpbs + 2,
            num_egress_stages=spec.num_egress_rpbs,
            max_recirculations=max_recirculations,
        )
    dataplane = P4runproDataPlane(spec, switch_config=switch_config)
    ctl = Controller(dataplane, spec=spec)
    ctl.deploy(source)
    return ctl, dataplane


def hh_traffic():
    """Three interleaved flows, two of them crossing the report threshold
    mid-stream; every matching packet recirculates once."""
    packets = []
    for i in range(30):
        flow = i % 3
        packets.append(make_udp(IN_NET | (flow + 1), 0x0B000001, 4000 + flow, 80))
        if i % 4 == 0:  # non-matching background traffic between hh packets
            packets.append(make_udp(0x0B000005, 2, 1234, 80))
    return packets


def observable(result):
    return (
        result.verdict,
        result.egress_port,
        result.recirculations,
        result.egress_ports,
        result.packet.headers,
    )


def test_recirculating_batch_equals_sequential():
    _, seq_dp = build()
    _, batch_dp = build()
    packets = hh_traffic()

    seq = [seq_dp.process(p.clone()) for p in packets]
    batch = batch_dp.process_many([p.clone() for p in packets])

    assert any(r.recirculations > 0 for r in seq)
    assert Verdict.TO_CPU in [r.verdict for r in seq]
    assert [observable(r) for r in seq] == [observable(r) for r in batch]
    for counter in ("forwarded", "dropped", "reflected", "to_cpu"):
        assert getattr(seq_dp.switch.tm, counter) == getattr(
            batch_dp.switch.tm, counter
        ), counter
    assert seq_dp.switch.pipeline_passes == batch_dp.switch.pipeline_passes


def test_nc_recirculating_batch_equals_sequential():
    """NetCache's hot-report path recirculates; report threshold lowered
    so the batch exercises it."""
    source = (
        PROGRAMS["nc"]
        .source.replace("LOADI(har, 128);", "LOADI(har, 4);")
        .replace("case(<har, 128, 0xffffffff>)", "case(<har, 4, 0xffffffff>)")
    )
    _, seq_dp = build(source)
    _, batch_dp = build(source)
    packets = [
        make_cache(3, 4, op=NC_READ, key=0x4242) for _ in range(8)
    ] + [make_cache(1, 2, op=NC_READ, key=0x7777) for _ in range(3)]

    seq = [seq_dp.process(p.clone()) for p in packets]
    batch = batch_dp.process_many([p.clone() for p in packets])
    assert any(r.recirculations > 0 for r in seq)
    assert [observable(r) for r in seq] == [observable(r) for r in batch]


def test_recirculation_cap_hits_mid_batch():
    """With the safety cap at 0, the first recirculating packet raises —
    and everything processed before it has already committed."""
    _, dataplane = build(max_recirculations=0)
    background = [make_udp(0x0B000005, 2, 1234, 80) for _ in range(4)]
    hh_packet = make_udp(IN_NET | 1, 0x0B000001, 4000, 80)
    batch = background + [hh_packet] + background

    with pytest.raises(RecirculationLimitError):
        dataplane.process_many([p.clone() for p in batch])

    # The four leading packets (plus the failing packet's first pass)
    # went through: their TM verdicts and table counters persisted.
    assert dataplane.switch.tm.forwarded == len(background)
    assert dataplane.switch.packets_in == len(background) + 1


def test_cap_failure_point_matches_sequential():
    """Batch and sequential runs fail on the same packet with the same
    committed prefix."""
    _, seq_dp = build(max_recirculations=0)
    _, batch_dp = build(max_recirculations=0)
    background = [make_udp(0x0B000005, 2, 1234, 80) for _ in range(3)]
    batch = background + [make_udp(IN_NET | 1, 0x0B000001, 4000, 80)]

    seq_results = []
    with pytest.raises(RecirculationLimitError):
        for p in batch:
            seq_results.append(seq_dp.process(p.clone()))
    with pytest.raises(RecirculationLimitError):
        batch_dp.process_many([p.clone() for p in batch])

    assert len(seq_results) == len(background)
    assert seq_dp.switch.tm.forwarded == batch_dp.switch.tm.forwarded
    assert seq_dp.switch.packets_in == batch_dp.switch.packets_in
    for name, table in seq_dp.tables.items():
        other = batch_dp.tables[name]
        assert (table.lookups, table.hits) == (other.lookups, other.hits), name


def test_cap_allows_exactly_configured_recirculations():
    _, dataplane = build(max_recirculations=1)
    result = dataplane.process_many(
        [make_udp(IN_NET | 1, 0x0B000001, 4000, 80)]
    )[0]
    assert result.recirculations == 1
