"""Execution-trace tests (the Fig. 3 walkthrough as an oracle)."""

import pytest

from repro.controlplane import Controller
from repro.dataplane.tracing import active_trace, capture_trace
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_udp


@pytest.fixture
def env():
    ctl, dataplane = Controller.with_simulator()
    ctl.deploy(PROGRAMS["cache"].source)
    return ctl, dataplane


class TestCacheWalkthrough:
    """Figure 3's packet-processing walkthrough for the program cache."""

    def test_cache_read_trace(self, env):
        _, dataplane = env
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=42))
        with capture_trace() as trace:
            result = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert trace.actions() == [
            "set_program",  # (1) init block assigns the program ID
            "EXTRACT",
            "EXTRACT",
            "EXTRACT",
            "set_branch",  # (2) BRANCH matches the read-hit case
            "RETURN",
            "LOADI",
            "OFFSET",
            "MEMREAD",
            "MODIFY",
        ]
        # Branch flag transitions 0 -> 1 at the BRANCH step.
        branch_ids = [s.branch_id for s in trace.steps]
        assert branch_ids[:4] == [0, 0, 0, 0]
        assert set(branch_ids[4:]) == {1}

    def test_miss_trace_is_shorter(self, env):
        _, dataplane = env
        with capture_trace() as trace:
            dataplane.process(make_cache(1, 2, op=NC_READ, key=0x1234))
        assert trace.actions() == [
            "set_program",
            "EXTRACT",
            "EXTRACT",
            "EXTRACT",
            "FORWARD",  # cache miss: the no-case-matched continuation
        ]

    def test_unowned_packet_traces_nothing(self, env):
        _, dataplane = env
        with capture_trace() as trace:
            dataplane.process(make_udp(1, 2, 3, 9999))
        assert trace.steps == []

    def test_units_match_allocation(self, env):
        ctl, dataplane = env
        record = ctl.running_programs()[0]
        with capture_trace() as trace:
            dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        rpb_units = {s.unit for s in trace.steps if s.unit.startswith("rpb")}
        allocated = {
            f"rpb{ctl.spec.physical_rpb(v)}" for v in record.compiled.allocation.x
        }
        assert rpb_units <= allocated


class TestRecirculationTrace:
    def test_hh_trace_spans_passes(self):
        ctl, dataplane = Controller.with_simulator()
        ctl.deploy(PROGRAMS["hh"].source.replace("1024", "1"))
        with capture_trace() as trace:
            dataplane.process(make_udp(0x0A000001, 2, 3, 4))
        passes = {s.recirc_count for s in trace.steps}
        assert passes == {0, 1}
        assert "recirculate" in trace.actions()


class TestCaptureSemantics:
    def test_no_active_trace_by_default(self, env):
        _, dataplane = env
        assert active_trace() is None
        dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert active_trace() is None

    def test_nested_captures_restore(self, env):
        _, dataplane = env
        with capture_trace() as outer:
            dataplane.process(make_cache(1, 2, op=NC_READ, key=0x1))
            with capture_trace() as inner:
                dataplane.process(make_cache(1, 2, op=NC_READ, key=0x1))
            assert active_trace() is outer
        assert len(inner.steps) == len(outer.steps)

    def test_render_and_grouping(self, env):
        _, dataplane = env
        with capture_trace() as trace:
            dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        text = trace.render()
        assert "set_program" in text and "rpb" in text
        assert "init" in trace.by_unit()
