"""MULTICAST extension tests (§7: the SwitchML-enabling primitive)."""

import pytest

from repro.controlplane import Controller
from repro.lang.errors import P4runproError, SemanticError
from repro.lang.parser import parse_source
from repro.lang.semantics import check_unit
from repro.rmt.packet import make_cache, make_udp
from repro.rmt.pipeline import UnknownMulticastGroupError, Verdict

# The aggregation program is the library extension, parameterized for
# four workers on group 1 (programs.extensions is the single source of
# truth the examples use too).
from repro.programs.extensions import make_mlagg

AGG_SOURCE = make_mlagg(num_workers=4, group=1, port=9999).source

WORKER_PORTS = [10, 11, 12, 13]


@pytest.fixture
def env():
    # The aggregation service runs on UDP:9999, so the operator provisions
    # a parser that extracts the nc header there (§5: customizable parser).
    from repro.rmt.parser import default_parse_machine

    ctl, dataplane = Controller.with_simulator(
        parse_machine=default_parse_machine(nc_port=9999)
    )
    ctl.configure_multicast_group(1, WORKER_PORTS)
    ctl.deploy(AGG_SOURCE)
    return ctl, dataplane


def worker_packet(worker: int, chunk: int, value: int):
    return make_cache(
        0x0A000000 + worker, 0x0A00FF01, op=3, key=chunk, value=value, dst_port=9999
    )


class TestLanguageSupport:
    def test_multicast_parses_and_checks(self):
        check_unit(parse_source(AGG_SOURCE))

    def test_group_zero_rejected(self):
        with pytest.raises(SemanticError, match="MULTICAST group"):
            check_unit(
                parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { MULTICAST(0); }")
            )

    def test_multicast_is_ingress_bound(self):
        """MULTICAST is a forwarding primitive: the allocator must place
        its depth on an ingress RPB."""
        from repro.compiler import compile_source

        compiled = compile_source(AGG_SOURCE)
        depth = next(
            op.depth for op in compiled.ir.walk_ops() if op.name == "MULTICAST"
        )
        logic = compiled.allocation.x[depth - 1]
        assert compiled.allocation.x and logic
        from repro.compiler.target import TargetSpec

        assert TargetSpec().is_ingress(logic)


class TestAggregation:
    def test_intermediate_arrivals_absorbed(self, env):
        _, dataplane = env
        for worker in range(3):
            result = dataplane.process(worker_packet(worker, chunk=5, value=10))
            assert result.verdict is Verdict.DROP

    def test_fourth_arrival_multicasts_sum(self, env):
        _, dataplane = env
        for worker in range(3):
            dataplane.process(worker_packet(worker, chunk=5, value=10))
        final = dataplane.process(worker_packet(3, chunk=5, value=10))
        assert final.verdict is Verdict.MULTICAST
        assert final.egress_ports == tuple(WORKER_PORTS)
        assert final.packet.get_field("hdr.nc.val") == 40  # the aggregate

    def test_chunks_are_independent(self, env):
        _, dataplane = env
        for worker in range(4):
            dataplane.process(worker_packet(worker, chunk=1, value=1))
        # A different chunk starts a fresh aggregation round.
        result = dataplane.process(worker_packet(0, chunk=2, value=7))
        assert result.verdict is Verdict.DROP
        assert result.packet.get_field("hdr.nc.val") == 7

    def test_running_sum_piggybacked(self, env):
        _, dataplane = env
        sums = []
        for worker, value in enumerate((1, 2, 3)):
            result = dataplane.process(worker_packet(worker, chunk=9, value=value))
            sums.append(result.packet.get_field("hdr.nc.val"))
        assert sums == [1, 3, 6]


class TestConfiguration:
    def test_unconfigured_group_raises(self):
        from repro.rmt.parser import default_parse_machine

        ctl, dataplane = Controller.with_simulator(
            parse_machine=default_parse_machine(nc_port=9999)
        )
        ctl.deploy(AGG_SOURCE)  # group 1 never configured
        for worker in range(3):
            dataplane.process(worker_packet(worker, chunk=5, value=1))
        with pytest.raises(UnknownMulticastGroupError):
            dataplane.process(worker_packet(3, chunk=5, value=1))

    def test_group_id_validation(self):
        ctl, _ = Controller.with_simulator()
        with pytest.raises(ValueError):
            ctl.configure_multicast_group(0, [1, 2])

    def test_reconfiguration_takes_effect(self, env):
        ctl, dataplane = env
        ctl.configure_multicast_group(1, [40, 41])
        for worker in range(4):
            result = dataplane.process(worker_packet(worker, chunk=77, value=1))
        assert result.egress_ports == (40, 41)

    def test_non_multicast_traffic_unaffected(self, env):
        _, dataplane = env
        result = dataplane.process(make_udp(1, 2, 3, 4))
        assert result.verdict is Verdict.FORWARD
        assert result.egress_ports == ()
