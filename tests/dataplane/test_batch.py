"""Batched processing equivalence: process_many == sequential process.

Two identically provisioned data planes run the same packet stream, one
packet at a time and as one batch; every observable output must match —
verdicts, egress ports, recirculation counts, deparsed headers, TM
counters, table counters, and register-array state.
"""

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.packet import make_cache, make_udp


def build(programs=("cache",)):
    ctl, dataplane = Controller.with_simulator()
    ids = [ctl.deploy(PROGRAMS[name].source).program_id for name in programs]
    return ctl, dataplane, ids


def traffic():
    packets = []
    for i in range(40):
        packets.append(make_cache(1, 2, op=1 + (i % 2), key=i % 5, value=i))
        packets.append(make_udp(i + 1, 2, 1000 + i, 80))
    return packets


def observable(result):
    return (
        result.verdict,
        result.egress_port,
        result.recirculations,
        result.egress_ports,
        result.packet.headers,
        result.bridge,
    )


def test_batch_equals_sequential():
    _, seq_dp, _ = build()
    _, batch_dp, _ = build()
    packets = traffic()

    seq_results = [seq_dp.process(p.clone()) for p in packets]
    batch_results = batch_dp.process_many([p.clone() for p in packets])

    assert [observable(r) for r in seq_results] == [
        observable(r) for r in batch_results
    ]
    assert vars(seq_dp.switch.tm).keys() == vars(batch_dp.switch.tm).keys()
    for counter in ("forwarded", "dropped", "reflected", "to_cpu", "multicast"):
        assert getattr(seq_dp.switch.tm, counter) == getattr(
            batch_dp.switch.tm, counter
        )
    for name, table in seq_dp.tables.items():
        other = batch_dp.tables[name]
        assert (table.lookups, table.hits) == (other.lookups, other.hits), name
    # Register state (the cache program writes memory on NC_WRITE).
    for phys in range(1, seq_dp.spec.num_rpbs + 1):
        for addr in range(0, 64):
            assert seq_dp.read_bucket(phys, addr) == batch_dp.read_bucket(phys, addr)


def test_batch_with_multiple_programs():
    _, seq_dp, _ = build(("cache", "lb", "hh"))
    _, batch_dp, _ = build(("cache", "lb", "hh"))
    packets = traffic()

    seq = [observable(seq_dp.process(p.clone())) for p in packets]
    batch = [observable(r) for r in batch_dp.process_many([p.clone() for p in packets])]
    assert seq == batch


def test_batch_preserves_order_and_count():
    _, dataplane, _ = build()
    packets = traffic()
    results = dataplane.process_many([p.clone() for p in packets])
    assert len(results) == len(packets)


def test_empty_batch():
    _, dataplane, _ = build()
    assert dataplane.process_many([]) == []


def test_switch_process_batch_counts_passes():
    _, dataplane, _ = build()
    switch = dataplane.switch
    before = switch.packets_in
    dataplane.process_many([make_udp(1, 2, 3, 4) for _ in range(5)])
    assert switch.packets_in == before + 5
