"""Switch-chain tests: the recirculation-free deployment of §4.1.3."""

import pytest

from repro.compiler.target import ChainSpec
from repro.controlplane import Controller
from repro.lang.errors import AllocationError
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_calc, make_udp
from repro.rmt.pipeline import Verdict


@pytest.fixture
def chain_env():
    return Controller.with_chain(num_switches=2)


class TestChainSpec:
    def test_shape(self):
        spec = ChainSpec(num_switches=2)
        assert spec.rpbs_per_switch == 23  # one extra ingress RPB per hop
        assert spec.num_rpbs == 46
        assert spec.num_logic_rpbs == 46

    def test_iteration_is_hop_index(self):
        spec = ChainSpec(num_switches=2)
        assert spec.iteration(1) == 0
        assert spec.iteration(23) == 0
        assert spec.iteration(24) == 1
        assert spec.iteration(46) == 1

    def test_is_ingress_per_hop(self):
        spec = ChainSpec(num_switches=2)
        assert spec.is_ingress(11)  # hop 0, RPB 11 (the freed stage)
        assert not spec.is_ingress(12)  # hop 0, first egress RPB
        assert spec.is_ingress(24)  # hop 1, RPB 1

    def test_local_rpb(self):
        spec = ChainSpec(num_switches=2)
        assert spec.local_rpb(1) == (0, 1)
        assert spec.local_rpb(23) == (0, 23)
        assert spec.local_rpb(24) == (1, 1)

    def test_no_recirculation_semantics(self):
        spec = ChainSpec()
        assert not spec.uses_recirculation
        assert not spec.memory_revisit_supported


class TestChainDeployment:
    def test_cache_on_chain(self, chain_env):
        ctl, chain = chain_env
        handle = ctl.deploy(PROGRAMS["cache"].source)
        chain.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=11))
        hit = chain.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.verdict is Verdict.REFLECT
        assert hit.packet.get_field("hdr.nc.val") == 11
        miss = chain.process(make_cache(1, 2, op=NC_READ, key=0x1))
        assert miss.verdict is Verdict.FORWARD
        assert miss.egress_port == 32

    def test_long_program_spans_hops(self, chain_env):
        """hh needs ~24 logic RPBs: impossible on one hop, fine on two —
        the chain replaces recirculation (the paper's 1-more-RPB claim)."""
        ctl, chain = chain_env
        threshold = 4
        source = PROGRAMS["hh"].source.replace("1024", str(threshold))
        handle = ctl.deploy(source)
        assert max(handle.stats.logic_rpbs) > 23  # spills into hop 1
        pkt = lambda: make_udp(0x0A000001, 0x0B000001, 4000, 80)
        verdicts = [chain.process(pkt()).verdict for _ in range(threshold + 2)]
        assert Verdict.TO_CPU in verdicts  # report fires on hop 1's ingress

    def test_no_recirculations_on_chain(self, chain_env):
        ctl, chain = chain_env
        ctl.deploy(PROGRAMS["hh"].source.replace("1024", "4"))
        result = chain.process(make_udp(0x0A000001, 0x0B000001, 4000, 80))
        assert result.recirculations == 0

    def test_memory_revisit_rejected(self, chain_env):
        """Reading then writing one virtual memory needs the same array
        at two execution steps — recirculation-only semantics."""
        ctl, _ = chain_env
        source = (
            "@ m 64\nprogram revisit(<hdr.ipv4.ttl, 0, 0x0>) {"
            " MEMREAD(m); LOADI(sar, 1); MEMWRITE(m); }"
        )
        with pytest.raises(AllocationError, match="switch chain"):
            ctl.deploy(source)

    def test_memory_access_routed_to_owning_hop(self, chain_env):
        ctl, chain = chain_env
        handle = ctl.deploy(PROGRAMS["cache"].source)
        ctl.write_memory(handle, "mem1", 5, 77)
        assert ctl.read_memory(handle, "mem1", 5) == 77

    def test_revoke_clears_both_hops(self, chain_env):
        ctl, chain = chain_env
        handle = ctl.deploy(PROGRAMS["hh"].source.replace("1024", "4"))
        ctl.revoke(handle)
        for hop in chain.hops:
            for table in hop.tables.values():
                assert table.occupancy == 0

    def test_intermediate_drop_is_terminal(self, chain_env):
        ctl, chain = chain_env
        ctl.deploy(PROGRAMS["calc"].source)
        result = chain.process(make_calc(1, 2, op=9, a=1, b=1))  # bad opcode
        assert result.verdict is Verdict.DROP


class TestChainCapacityEffect:
    def test_chain_offers_more_logic_rpbs_than_recirculation(self):
        single = Controller.with_simulator()[0]
        chained = Controller.with_chain(2)[0]
        assert chained.spec.num_logic_rpbs > single.spec.num_logic_rpbs

    def test_three_hop_chain(self):
        ctl, chain = Controller.with_chain(3)
        handle = ctl.deploy(PROGRAMS["cache"].source)
        hit = chain.process(make_cache(1, 2, op=NC_READ, key=0x1))
        assert hit.verdict is Verdict.FORWARD
        assert len(chain.hops) == 3


class TestChainIncrementalUpdate:
    def test_add_case_on_chain(self, chain_env):
        """Incremental case additions route entries to the right hop."""
        ctl, chain = chain_env
        handle = ctl.deploy(PROGRAMS["cache"].source)
        ctl.add_case(
            handle,
            [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 0x42, 0xFFFFFFFF)],
            template_case=0,
            loadi_values=[7],
        )
        ctl.write_memory(handle, "mem1", 7, 123)
        hit = chain.process(make_cache(1, 2, op=NC_READ, key=0x42))
        assert hit.verdict is Verdict.REFLECT
        assert hit.packet.get_field("hdr.nc.val") == 123

    def test_remove_case_on_chain(self, chain_env):
        ctl, chain = chain_env
        handle = ctl.deploy(PROGRAMS["cache"].source)
        case = ctl.add_case(
            handle,
            [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 0x42, 0xFFFFFFFF)],
            template_case=0,
            loadi_values=[7],
        )
        ctl.remove_case(handle, case)
        miss = chain.process(make_cache(1, 2, op=NC_READ, key=0x42))
        assert miss.verdict is Verdict.FORWARD
        assert miss.egress_port == 32
