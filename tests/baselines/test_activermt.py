"""ActiveRMT baseline tests."""

import pytest

from repro.baselines.activermt import (
    ACTIVE_HEADER_BYTES,
    ActiveProgram,
    ActiveRMTAllocator,
    ActiveRMTTiming,
    NUM_STAGES,
    WORKLOADS,
    goodput_fraction,
)


class TestAllocator:
    def test_successful_allocation(self):
        allocator = ActiveRMTAllocator()
        outcome = allocator.allocate(WORKLOADS["cache"])
        assert outcome.success
        assert len(outcome.stages) == 1
        assert allocator.program_count() == 1

    def test_memory_objects_on_distinct_increasing_stages(self):
        allocator = ActiveRMTAllocator()
        outcome = allocator.allocate(WORKLOADS["hh"])
        assert len(outcome.stages) == 4
        assert list(outcome.stages) == sorted(set(outcome.stages))

    def test_utilization_grows(self):
        allocator = ActiveRMTAllocator()
        before = allocator.memory_utilization()
        allocator.allocate(WORKLOADS["lb"])
        assert allocator.memory_utilization() > before

    def test_delay_grows_with_resident_programs(self):
        """The Fig. 7(a) behaviour: allocation time increases with the
        number of allocated programs."""
        allocator = ActiveRMTAllocator()
        early = [allocator.allocate(WORKLOADS["hh"]).delay_s for _ in range(5)]
        for _ in range(120):
            allocator.allocate(WORKLOADS["hh"])
        late = [allocator.allocate(WORKLOADS["hh"]).delay_s for _ in range(5)]
        assert sum(late) > sum(early)

    def test_finer_granularity_not_faster(self):
        """Fig. 7(b): finer fixed granularity costs more, never less."""

        def delay(granularity):
            allocator = ActiveRMTAllocator(granularity=granularity)
            for _ in range(40):
                allocator.allocate(WORKLOADS["hh"])
            return sum(allocator.allocate(WORKLOADS["hh"]).delay_s for _ in range(5))

        assert delay(32) > delay(1024) * 0.5  # noisy, but no large inversion

    def test_elastic_remap_frees_memory(self):
        allocator = ActiveRMTAllocator(granularity=4096, memory_size=8192)
        # Elastic cache programs fill everything (2 blocks/stage).
        elastic = ActiveProgram("big", 10, (8192,), elastic=True, min_share=4096)
        for _ in range(NUM_STAGES):
            assert allocator.allocate(elastic).success
        # A newcomer only fits if elastic residents shrink.
        outcome = allocator.allocate(ActiveProgram("late", 10, (4096,)))
        assert outcome.success
        assert outcome.remapped_programs >= 1

    def test_exhaustion_fails_gracefully(self):
        allocator = ActiveRMTAllocator(granularity=4096, memory_size=4096)
        inelastic = ActiveProgram("solid", 10, (4096,))
        for _ in range(NUM_STAGES):
            assert allocator.allocate(inelastic).success
        outcome = allocator.allocate(inelastic)
        assert not outcome.success
        assert outcome.delay_s >= 0

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            ActiveRMTAllocator(granularity=0)


class TestTimingAndOverhead:
    def test_update_delay_in_paper_band(self):
        """Table 1: ActiveRMT's updates land near ~200 ms."""
        timing = ActiveRMTTiming()
        for name in ("cache", "lb", "hh"):
            delay = timing.update_delay_ms(WORKLOADS[name])
            assert 100.0 < delay < 350.0

    def test_remap_inflates_update_delay(self):
        timing = ActiveRMTTiming()
        base = timing.update_delay_ms(WORKLOADS["cache"])
        with_remap = timing.update_delay_ms(WORKLOADS["cache"], remapped_programs=5)
        assert with_remap > base

    def test_goodput_fraction_small_packets_hurt_more(self):
        assert goodput_fraction(64) < goodput_fraction(1500)
        assert goodput_fraction(1500) < 1.0

    def test_goodput_matches_header_share(self):
        assert goodput_fraction(128) == pytest.approx(128 / (128 + ACTIVE_HEADER_BYTES))
