"""Conventional P4 workflow tests."""

import pytest

from repro.baselines.conventional import ConventionalWorkflow
from repro.controlplane.timing import ConventionalP4Timing


class TestDeployment:
    def test_precompiled_deploy_skips_compile(self):
        wf = ConventionalWorkflow()
        event = wf.deploy("cache", p4_loc=77, at_s=5.0)
        assert event.compile_s == 0.0
        assert event.started_at_s == 5.0

    def test_fresh_compile_takes_minutes(self):
        wf = ConventionalWorkflow()
        event = wf.deploy("cache", p4_loc=77, at_s=0.0, precompiled=False)
        assert event.compile_s > 60.0

    def test_deploy_delay_orders_of_magnitude_above_p4runpro(self):
        """§6.2.1: P4runpro cuts deployment by at least one order of
        magnitude; the conventional path costs seconds even precompiled."""
        timing = ConventionalP4Timing()
        assert timing.traffic_blackout_s > 1.0
        assert timing.deploy_delay_s(77) > 90.0

    def test_blackout_window(self):
        wf = ConventionalWorkflow()
        event = wf.deploy("cache", p4_loc=77, at_s=5.0)
        assert not wf.traffic_available(5.0)
        assert not wf.traffic_available(event.started_at_s + event.blackout_s - 0.01)
        assert wf.traffic_available(event.started_at_s + event.blackout_s + 0.01)
        assert wf.traffic_available(4.99)

    def test_function_active_after_blackout(self):
        wf = ConventionalWorkflow()
        event = wf.deploy("cache", p4_loc=77, at_s=5.0)
        assert not wf.function_active(5.0)
        assert wf.function_active(event.function_active_at_s)

    def test_removal_is_also_a_reprovision(self):
        wf = ConventionalWorkflow()
        wf.deploy("cache", p4_loc=77, at_s=1.0)
        wf.remove("cache", at_s=20.0)
        assert wf.programs == []
        assert not wf.traffic_available(20.5)

    def test_no_events_no_function(self):
        wf = ConventionalWorkflow()
        assert not wf.function_active(100.0)
        assert wf.traffic_available(100.0)
