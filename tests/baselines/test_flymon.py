"""FlyMon baseline tests."""

import pytest

from repro.baselines.flymon import (
    FlyMonController,
    TASKS,
    UnsupportedTaskError,
)


class TestTaskModel:
    def test_supported_tasks(self):
        assert set(TASKS) == {"cms", "bf", "sumax", "hll"}

    def test_update_delays_near_paper(self):
        """Table 1: FlyMon updates ~17-32 ms."""
        ctl = FlyMonController()
        expected = {"cms": 27.46, "bf": 32.09, "sumax": 22.88, "hll": 17.37}
        for task, paper_ms in expected.items():
            deployment = ctl.deploy(task)
            assert deployment.update_delay_ms == pytest.approx(paper_ms, rel=0.25)

    def test_generality_gap(self):
        """FlyMon cannot express the non-measurement Table-1 programs."""
        ctl = FlyMonController()
        for name in ("cache", "lb", "calc", "firewall", "l3route"):
            with pytest.raises(UnsupportedTaskError):
                ctl.deploy(name)

    def test_unknown_task(self):
        with pytest.raises(UnsupportedTaskError):
            FlyMonController().deploy("quantum")


class TestCMUAccounting:
    def test_capacity_bounded_by_cmus(self):
        ctl = FlyMonController()
        count = 0
        try:
            while True:
                ctl.deploy("cms")
                count += 1
        except UnsupportedTaskError:
            pass
        assert count == 9  # 9 groups x 2 CMUs / 2 CMUs per CMS

    def test_revoke_frees_cmus(self):
        ctl = FlyMonController()
        deployments = [ctl.deploy("cms") for _ in range(9)]
        ctl.revoke(deployments[0])
        assert ctl.deploy("cms").task == "cms"

    def test_mixed_tasks_share_groups(self):
        ctl = FlyMonController()
        a = ctl.deploy("hll")  # 1 CMU
        b = ctl.deploy("hll")  # fits in the same group
        assert a.cmu_group == b.cmu_group
