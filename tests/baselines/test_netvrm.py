"""NetVRM baseline tests."""

import pytest

from repro.baselines.netvrm import (
    FixedApplicationSetError,
    NetVRM,
    VRMApplication,
)
from repro.controlplane import Controller
from repro.programs import PROGRAMS


def make_vrm(weights=(1.0, 1.0, 1.0), total=65536):
    apps = [
        VRMApplication(f"app{i}", weight=w, min_memory=256)
        for i, w in enumerate(weights)
    ]
    return NetVRM(total_memory=total, applications=apps)


class TestUtilityModel:
    def test_utility_monotone_concave(self):
        app = VRMApplication("a")
        utilities = [app.utility(m) for m in (256, 512, 1024, 2048)]
        assert utilities == sorted(utilities)
        gains = [b - a for a, b in zip(utilities, utilities[1:])]
        # Diminishing returns per doubling? log2(1+m/s) gains shrink per
        # fixed-size step; per-doubling gains approach 1 from above.
        assert app.marginal_utility(512, 256) < app.marginal_utility(256, 256)

    def test_minimum_shares_enforced(self):
        with pytest.raises(ValueError):
            NetVRM(total_memory=100, applications=[VRMApplication("a", min_memory=256)])


class TestReallocation:
    def test_memory_fully_distributed(self):
        vrm = make_vrm()
        allocation = vrm.reallocate()
        assert sum(allocation.values()) <= vrm.total_memory
        assert vrm.total_memory - sum(allocation.values()) < vrm.step
        assert vrm.utilization() > 0.99

    def test_equal_weights_equal_shares(self):
        vrm = make_vrm(weights=(1.0, 1.0, 1.0))
        allocation = vrm.reallocate()
        shares = sorted(allocation.values())
        assert shares[-1] - shares[0] <= vrm.step

    def test_heavier_app_gets_more(self):
        vrm = make_vrm(weights=(4.0, 1.0, 1.0))
        allocation = vrm.reallocate()
        assert allocation["app0"] > allocation["app1"]
        assert allocation["app0"] > allocation["app2"]

    def test_reallocation_improves_utility(self):
        vrm = make_vrm(weights=(3.0, 1.0, 1.0))
        before = vrm.total_utility()
        vrm.reallocate()
        assert vrm.total_utility() > before

    def test_minimums_respected(self):
        vrm = make_vrm(weights=(100.0, 0.001, 0.001))
        allocation = vrm.reallocate()
        assert allocation["app1"] >= 256
        assert allocation["app2"] >= 256


class TestTheLimitation:
    """§2.2: NetVRM cannot do what P4runpro does."""

    def test_admission_rejected(self):
        vrm = make_vrm()
        with pytest.raises(FixedApplicationSetError, match="reprovisioning"):
            vrm.admit(VRMApplication("newcomer"))

    def test_p4runpro_admits_where_netvrm_cannot(self):
        """The side-by-side contrast: same moment, new program arrives."""
        vrm = make_vrm()
        with pytest.raises(FixedApplicationSetError):
            vrm.admit(VRMApplication("cache"))
        ctl, _ = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["cache"].source)  # just works
        assert handle.stats.total_ms < 1000
