"""System profile tests (Fig. 10 / Table 2 comparison shapes)."""

import pytest

from repro.baselines.profiles import (
    activermt_profile,
    all_profiles,
    flymon_profile,
    p4runpro_profile,
)


@pytest.fixture(scope="module")
def profiles():
    return {p.name: p for p in all_profiles()}


class TestTable2Shapes:
    def test_three_systems(self, profiles):
        assert set(profiles) == {"P4runpro", "ActiveRMT", "FlyMon"}

    def test_p4runpro_and_activermt_same_latency_band(self, profiles):
        """Table 2: 622 vs 620 total cycles — effectively equal."""
        assert profiles["P4runpro"].latency_cycles[2] == pytest.approx(
            profiles["ActiveRMT"].latency_cycles[2], rel=0.02
        )

    def test_flymon_latency_much_lower(self, profiles):
        assert profiles["FlyMon"].latency_cycles[2] < 0.6 * profiles["P4runpro"].latency_cycles[2]

    def test_flymon_ingress_nearly_free(self, profiles):
        assert profiles["FlyMon"].power_watts[0] < 2.0

    def test_p4runpro_power_lower_than_activermt(self, profiles):
        """Table 2: 40.74 W vs 43.7 W."""
        assert profiles["P4runpro"].power_watts[2] < profiles["ActiveRMT"].power_watts[2]

    def test_traffic_limit_ordering(self, profiles):
        """FlyMon 100% > P4runpro ~98% > ActiveRMT ~91%."""
        assert profiles["FlyMon"].traffic_limit_load == 1.0
        assert (
            profiles["FlyMon"].traffic_limit_load
            > profiles["P4runpro"].traffic_limit_load
            > profiles["ActiveRMT"].traffic_limit_load
        )

    def test_p4runpro_load_in_paper_band(self, profiles):
        assert 0.95 < profiles["P4runpro"].traffic_limit_load < 1.0

    def test_activermt_load_in_paper_band(self, profiles):
        assert 0.85 < profiles["ActiveRMT"].traffic_limit_load < 0.95


class TestFig10Shapes:
    def test_p4runpro_vliw_heaviest_resource(self, profiles):
        util = profiles["P4runpro"].utilization
        assert util["vliw_slots"] == max(util.values())

    def test_activermt_phv_above_p4runpro(self, profiles):
        """The capsule header rides the PHV."""
        assert (
            profiles["ActiveRMT"].utilization["phv_bits"]
            > profiles["P4runpro"].utilization["phv_bits"]
        )

    def test_p4runpro_salu_and_hash_exceed_activermt(self, profiles):
        """§6.3: two extra RPB stages give P4runpro more SALU/hash usage."""
        p4 = profiles["P4runpro"].utilization
        active = profiles["ActiveRMT"].utilization
        assert p4["salus"] > active["salus"]
        assert p4["hash_units"] > active["hash_units"]

    def test_flymon_modest_everywhere(self, profiles):
        util = profiles["FlyMon"].utilization
        assert all(value < 65.0 for value in util.values())

    def test_profiles_deterministic(self):
        a = p4runpro_profile()
        b = p4runpro_profile()
        assert a.utilization == b.utilization
        assert activermt_profile().power_watts == activermt_profile().power_watts
        assert flymon_profile().latency_cycles == flymon_profile().latency_cycles
