"""TargetSpec / ChainSpec mapping tests."""

import pytest

from repro.compiler.target import ChainSpec, TargetSpec, UnlimitedResources


class TestTargetSpec:
    def test_defaults_match_paper(self):
        spec = TargetSpec()
        assert spec.num_ingress_rpbs == 10
        assert spec.num_egress_rpbs == 12
        assert spec.num_rpbs == 22
        assert spec.max_recirculations == 1
        assert spec.num_logic_rpbs == 44
        assert spec.rpb_table_size == 2048
        assert spec.rpb_memory_size == 65536

    @pytest.mark.parametrize(
        "logic,phys,iteration",
        [(1, 1, 0), (10, 10, 0), (11, 11, 0), (22, 22, 0), (23, 1, 1), (44, 22, 1)],
    )
    def test_logic_mapping(self, logic, phys, iteration):
        spec = TargetSpec()
        assert spec.physical_rpb(logic) == phys
        assert spec.iteration(logic) == iteration

    def test_is_ingress_boundaries(self):
        spec = TargetSpec()
        assert spec.is_ingress(10)
        assert not spec.is_ingress(11)
        assert spec.is_ingress(32)  # iteration-1 ingress
        assert not spec.is_ingress(33)

    @pytest.mark.parametrize("bad", [0, 45, -1, 100])
    def test_out_of_range_logic(self, bad):
        spec = TargetSpec()
        with pytest.raises(ValueError):
            spec.physical_rpb(bad)
        with pytest.raises(ValueError):
            spec.iteration(bad)

    def test_recirculation_semantics_flags(self):
        spec = TargetSpec()
        assert spec.uses_recirculation
        assert spec.memory_revisit_supported

    def test_zero_recirculation_domain(self):
        spec = TargetSpec(max_recirculations=0)
        assert spec.num_logic_rpbs == 22

    def test_three_recirculations(self):
        spec = TargetSpec(max_recirculations=3)
        assert spec.num_logic_rpbs == 88
        assert spec.iteration(88) == 3
        assert spec.physical_rpb(88) == 22

    def test_frozen(self):
        spec = TargetSpec()
        with pytest.raises(Exception):
            spec.num_ingress_rpbs = 5


class TestUnlimitedResources:
    def test_everything_free(self):
        view = UnlimitedResources()
        assert view.free_entries(1) == 2048
        assert view.can_allocate_memory(1, [65536])
        assert not view.can_allocate_memory(1, [65537])


class TestChainSpecMapping:
    def test_default_two_hops(self):
        spec = ChainSpec()
        assert spec.num_switches == 2
        assert spec.num_ingress_rpbs == 11  # +1 from the dropped recirc block

    @pytest.mark.parametrize("hops", [1, 2, 3, 4])
    def test_hop_scaling(self, hops):
        spec = ChainSpec(num_switches=hops)
        assert spec.num_logic_rpbs == hops * 23
        assert spec.iteration(spec.num_logic_rpbs) == hops - 1

    def test_every_logic_is_unique_hardware(self):
        spec = ChainSpec(num_switches=2)
        physical = {spec.physical_rpb(v) for v in range(1, 47)}
        assert len(physical) == 46

    def test_out_of_range(self):
        spec = ChainSpec(num_switches=2)
        with pytest.raises(ValueError):
            spec.physical_rpb(47)
        with pytest.raises(ValueError):
            spec.iteration(0)
