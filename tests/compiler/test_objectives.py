"""Objective-function unit tests."""

import pytest

from repro.compiler.objectives import (
    OBJECTIVES,
    f1,
    f2,
    f3,
    hierarchical,
    make_objective,
)


class TestValues:
    def test_f1_default_weights(self):
        objective = f1()
        assert objective.value(1, 10) == pytest.approx(0.7 * 10 - 0.3 * 1)
        assert objective.alpha == 0.7
        assert objective.beta == 0.3

    def test_f1_custom_weights(self):
        objective = f1(alpha=0.5, beta=0.5)
        assert objective.value(4, 10) == pytest.approx(3.0)

    def test_f2_ignores_x1(self):
        objective = f2()
        assert objective.value(1, 10) == objective.value(9, 10) == 10

    def test_f3_ratio(self):
        assert f3().value(11, 22) == pytest.approx(2.0)

    def test_hierarchical_lexicographic(self):
        objective = hierarchical()
        # Smaller xL always dominates; larger x1 breaks ties.
        assert objective.value(1, 5) < objective.value(10, 6)
        assert objective.value(4, 5) < objective.value(3, 5)

    def test_linearity_flags(self):
        assert f1().linear and f2().linear and hierarchical().linear
        assert not f3().linear


class TestFactory:
    def test_all_names(self):
        assert set(OBJECTIVES) == {"f1", "f2", "f3", "hierarchical"}
        for name in OBJECTIVES:
            assert make_objective(name).name == name

    def test_kwargs_forwarded(self):
        objective = make_objective("f1", alpha=0.9, beta=0.1)
        assert objective.alpha == 0.9

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            make_objective("f9")

    def test_objectives_frozen(self):
        objective = f1()
        with pytest.raises(Exception):
            objective.alpha = 0.5


class TestObjectiveDrivesAllocation:
    """The weights really steer placement under pressure."""

    def test_beta_heavy_f1_prefers_late_start(self):
        from repro.compiler.allocation import AllocationProblem
        from repro.compiler.solver import AllocationSolver
        from repro.compiler.target import TargetSpec, UnlimitedResources

        problem = AllocationProblem(
            program="steer",
            num_depths=3,
            te_req={1: 1, 2: 1, 3: 1},
            forwarding_depths=set(),
            memory_sizes={},
            memory_depths={},
            sequential_pairs=[],
        )
        spec = TargetSpec()
        solver = AllocationSolver(spec, UnlimitedResources(spec))
        compact = solver.solve(problem, f1())  # alpha-dominant: start early
        greedy = solver.solve(problem, f1(alpha=0.1, beta=0.9))  # beta-dominant
        assert compact.x[0] < greedy.x[0]
        assert greedy.x[0] == spec.num_logic_rpbs - 2  # pushed to the end
