"""Allocation-problem builder tests."""

import pytest

from repro.compiler.allocation import build_problem, op_entry_cost
from repro.compiler.translate import translate
from repro.lang.errors import AllocationError
from repro.lang.parser import parse_source


def build(source):
    unit = parse_source(source)
    return unit, build_problem(unit, translate(unit.programs[0]))


class TestEntryCosts:
    def test_cache_profile(self):
        from repro.programs.library import CACHE_SOURCE

        _, prob = build(CACHE_SOURCE)
        assert prob.num_depths == 10  # matches Fig. 5(b)
        assert prob.te_req[4] == 2  # BRANCH with two cases
        # the NOP-aligned depth holds 1 entry (the write branch's EXTRACT)
        assert prob.te_req[7] == 1
        assert prob.entries_total() == 16

    def test_branch_cost_is_case_count(self):
        _, prob = build(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " BRANCH: case(<har, 1, 0xff>) { DROP; }"
            " case(<har, 2, 0xff>) { RETURN; }"
            " case(<har, 3, 0xff>) { REPORT; } }"
        )
        assert prob.te_req[1] == 3

    def test_forwarding_depths(self):
        from repro.programs.library import CACHE_SOURCE

        _, prob = build(CACHE_SOURCE)
        assert 5 in prob.forwarding_depths  # RETURN / DROP / FORWARD level

    def test_memory_metadata(self):
        from repro.programs.library import LB_SOURCE

        _, prob = build(LB_SOURCE)
        assert prob.memory_sizes == {"dip_pool": 256, "port_pool": 256}
        assert len(prob.memory_depths["dip_pool"]) == 1  # aligned across cases

    def test_sequential_pairs_depths(self):
        _, prob = build(
            "@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMADD(m); MEMREAD(m); }"
        )
        assert prob.sequential_pairs == [(2, 4)]  # offsets shift the depths

    def test_empty_program_rejected(self):
        unit = parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }")
        translation = translate(unit.programs[0])
        translation.ir.root.ops.clear()
        with pytest.raises(AllocationError, match="no operations"):
            build_problem(unit, translation)


class TestOpEntryCost:
    def test_nop_is_free(self):
        from repro.compiler.ir import Op

        assert op_entry_cost(Op("NOP")) == 0

    def test_plain_op_costs_one(self):
        from repro.compiler.ir import Op

        assert op_entry_cost(Op("LOADI")) == 1

    def test_branch_costs_cases(self):
        from repro.compiler.ir import CaseInfo, Op, Path

        cases = [CaseInfo([], i, Path(i)) for i in (1, 2, 3, 4)]
        assert op_entry_cost(Op("BRANCH", cases=cases)) == 4
