"""IR construction / depth assignment tests."""

from repro.compiler.ir import assign_depths, build_ir
from repro.lang.parser import parse_source


def ir_for(source):
    unit = parse_source(source)
    ir = build_ir(unit.programs[0])
    assign_depths(ir)
    return ir


class TestBranchIds:
    SOURCE = """
    program p(<hdr.ipv4.ttl, 0, 0x0>) {
        LOADI(har, 1);
        BRANCH:
        case(<har, 1, 0xff>) { DROP; }
        case(<har, 2, 0xff>) { RETURN; }
        FORWARD(1);
    }
    """

    def test_root_is_branch_zero(self):
        ir = ir_for(self.SOURCE)
        assert ir.root.branch_id == 0
        assert all(op.branch_id == 0 for op in ir.root.ops)

    def test_cases_get_fresh_branch_ids(self):
        ir = ir_for(self.SOURCE)
        branch = next(op for op in ir.root.ops if op.is_branch)
        targets = [case.target_branch for case in branch.cases]
        assert targets == [1, 2]
        assert ir.num_branches == 3

    def test_case_bodies_carry_their_branch_id(self):
        ir = ir_for(self.SOURCE)
        branch = next(op for op in ir.root.ops if op.is_branch)
        for case in branch.cases:
            assert all(op.branch_id == case.target_branch for op in case.path.ops)

    def test_nested_branch_ids_unique(self):
        ir = ir_for(
            """
            program p(<hdr.ipv4.ttl, 0, 0x0>) {
                BRANCH:
                case(<har, 1, 0xff>) {
                    BRANCH:
                    case(<sar, 0, 0xffffffff>) { REPORT; };
                };
                case(<har, 2, 0xff>) { DROP; }
            }
            """
        )
        ids = [op.branch_id for op in ir.walk_ops()]
        assert ir.num_branches == 4  # root + 3 cases
        assert max(ids) == 3


class TestDepths:
    def test_sequential_depths(self):
        ir = ir_for(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) { LOADI(har, 1); LOADI(sar, 2); DROP; }"
        )
        assert [op.depth for op in ir.root.ops] == [1, 2, 3]

    def test_continuation_parallel_with_cases(self):
        ir = ir_for(TestBranchIds.SOURCE)
        branch = next(op for op in ir.root.ops if op.is_branch)
        forward = ir.root.ops[-1]
        assert branch.depth == 2
        assert forward.depth == 3  # right after the BRANCH, like case bodies
        for case in branch.cases:
            assert case.path.ops[0].depth == 3

    def test_max_depth_and_levels(self):
        ir = ir_for(TestBranchIds.SOURCE)
        assert ir.max_depth() == 3
        levels = ir.levels()
        assert sorted(levels) == [1, 2, 3]
        assert len(levels[3]) == 3  # DROP, RETURN, FORWARD share depth 3

    def test_walk_ops_covers_everything(self):
        ir = ir_for(TestBranchIds.SOURCE)
        names = sorted(op.name for op in ir.walk_ops())
        assert names == ["BRANCH", "DROP", "FORWARD", "LOADI", "RETURN"]


class TestOpHelpers:
    def test_memory_id(self):
        ir = ir_for("@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMREAD(m); }")
        op = ir.root.ops[0]
        assert op.memory_id() == "m"

    def test_memory_id_none(self):
        ir = ir_for("program p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }")
        assert ir.root.ops[0].memory_id() is None

    def test_str_forms(self):
        ir = ir_for(TestBranchIds.SOURCE)
        branch = next(op for op in ir.root.ops if op.is_branch)
        assert "BRANCH[2 cases]" in str(branch)
        loadi = ir.root.ops[0]
        assert "LOADI" in str(loadi)
