"""Translation-phase tests: pseudo expansion, offsets, alignment, elastic."""

import pytest

from repro.compiler.ir import build_ir
from repro.compiler.translate import (
    expand_elastic,
    expand_pseudo,
    insert_offsets,
    sequential_memory_pairs,
    translate,
)
from repro.lang.errors import SemanticError
from repro.lang.parser import parse_source


def program(source):
    return parse_source(source).programs[0]


def names(path):
    return [op.name for op in path.ops]


class TestPseudoExpansion:
    def expand(self, body):
        ir = build_ir(program(f"program p(<hdr.ipv4.ttl, 0, 0x0>) {{ {body} }}"))
        stats = expand_pseudo(ir)
        return ir, stats

    def test_move_expansion(self):
        ir, stats = self.expand("MOVE(har, sar);")
        assert names(ir.root) == ["LOADI", "ADD"]
        assert stats.pseudo_ops == 1
        assert stats.emitted_ops == 2

    def test_equal_expansion(self):
        ir, _ = self.expand("EQUAL(har, sar);")
        assert names(ir.root) == ["XOR"]

    def test_sgt_expansion(self):
        ir, _ = self.expand("SGT(har, sar);")
        assert names(ir.root) == ["MIN", "XOR"]

    def test_slt_expansion(self):
        ir, _ = self.expand("SLT(har, sar);")
        assert names(ir.root) == ["MAX", "XOR"]

    def test_addi_uses_supportive_register(self):
        ir, stats = self.expand("ADDI(har, 5);")
        assert names(ir.root) == ["LOADI", "ADD"]
        loadi = ir.root.ops[0]
        support = str(loadi.args[0].value)
        assert support != "har"
        assert stats.backups_elided == 1  # nothing live afterwards

    def test_subi_two_complement(self):
        ir, _ = self.expand("SUBI(har, 3);")
        loadi = ir.root.ops[0]
        assert int(loadi.args[1].value) == (0xFFFFFFFF - 3 + 1) & 0xFFFFFFFF

    def test_not_expansion(self):
        ir, _ = self.expand("NOT(har);")
        assert names(ir.root) == ["LOADI", "XOR"]
        assert int(ir.root.ops[0].args[1].value) == 0xFFFFFFFF

    def test_sub_expansion_has_correction(self):
        """Our SUB emits the corrected 6-primitive sequence (the paper's
        Fig. 14 sequence is off by 2; see translate.py erratum note)."""
        ir, _ = self.expand("SUB(har, sar);")
        assert names(ir.root) == ["LOADI", "XOR", "ADD", "XOR", "LOADI", "ADD"]

    def test_backup_inserted_when_support_live(self):
        ir, stats = self.expand("LOADI(mar, 7); ADDI(har, 5); MODIFY(hdr.ipv4.ttl, mar);")
        # supportive register for ADDI(har) is sar or mar; mar is live.
        ops = names(ir.root)
        if "BACKUP" in ops:
            assert ops.index("BACKUP") < ops.index("RESTORE")
            assert stats.backups_needed == 1
        else:
            # sar was chosen (not live) — equally valid, no backup needed.
            assert stats.backups_elided == 1

    def test_backup_restore_pair_when_all_support_live(self):
        ir, stats = self.expand(
            "LOADI(mar, 7); LOADI(sar, 8); ADDI(har, 5);"
            " MODIFY(hdr.ipv4.ttl, mar); MODIFY(hdr.ipv4.dscp, sar);"
        )
        ops = names(ir.root)
        assert stats.backups_needed == 1
        backup = ir.root.ops[ops.index("BACKUP")]
        restore = ir.root.ops[ops.index("RESTORE")]
        assert backup.args == restore.args

    def test_expansion_inside_cases(self):
        ir, stats = self.expand(
            "BRANCH: case(<har, 1, 0xff>) { MOVE(sar, mar); } case(<har, 2, 0xff>) { DROP; }"
        )
        branch = ir.root.ops[0]
        assert names(branch.cases[0].path) == ["LOADI", "ADD"]


class TestOffsets:
    def test_offset_before_each_memory_op(self):
        ir = build_ir(
            program("@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMADD(m); MEMREAD(m); }")
        )
        count = insert_offsets(ir)
        assert count == 2
        assert names(ir.root) == ["OFFSET", "MEMADD", "OFFSET", "MEMREAD"]

    def test_offset_carries_memory_arg(self):
        ir = build_ir(program("@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMREAD(m); }"))
        insert_offsets(ir)
        assert ir.root.ops[0].memory_id() == "m"


class TestAlignment:
    CACHE_LIKE = """
    @ m 8
    program p(<hdr.ipv4.ttl, 0, 0x0>) {
        BRANCH:
        case(<har, 1, 0xff>) {
            DROP;
            LOADI(mar, 1);
            MEMREAD(m);
        }
        case(<har, 2, 0xff>) {
            DROP;
            LOADI(mar, 2);
            EXTRACT(hdr.ipv4.src, sar);
            MEMWRITE(m);
        }
    }
    """

    def test_parallel_same_memory_aligned(self):
        result = translate(program(self.CACHE_LIKE))
        mem_depths = [
            op.depth for op in result.ir.walk_ops() if op.name in ("MEMREAD", "MEMWRITE")
        ]
        assert len(set(mem_depths)) == 1

    def test_nop_inserted_in_shorter_branch(self):
        result = translate(program(self.CACHE_LIKE))
        assert result.nops_inserted == 1
        nops = [op for op in result.ir.walk_ops() if op.name == "NOP"]
        assert len(nops) == 1

    def test_different_memories_not_aligned(self):
        source = """
        @ a 8
        @ b 8
        program p(<hdr.ipv4.ttl, 0, 0x0>) {
            BRANCH:
            case(<har, 1, 0xff>) { MEMREAD(a); }
            case(<har, 2, 0xff>) { LOADI(mar, 1); MEMREAD(b); }
        }
        """
        result = translate(program(source))
        assert result.nops_inserted == 0

    def test_sequential_same_memory_not_aligned(self):
        """Same-path accesses become allocator pairs, not NOP alignment."""
        source = "@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMREAD(m); MEMWRITE(m); }"
        result = translate(program(source))
        assert result.nops_inserted == 0
        assert len(result.sequential_pairs) == 1
        first, second = result.sequential_pairs[0]
        assert first.name == "MEMREAD"
        assert second.name == "MEMWRITE"


class TestSequentialPairs:
    def test_ancestor_dominates_case_body(self):
        source = """
        @ m 8
        program p(<hdr.ipv4.ttl, 0, 0x0>) {
            MEMADD(m);
            BRANCH:
            case(<sar, 1, 0xff>) { MEMREAD(m); }
        }
        """
        result = translate(program(source))
        assert len(result.sequential_pairs) == 1

    def test_continuation_vs_case_is_parallel(self):
        source = """
        @ m 8
        program p(<hdr.ipv4.ttl, 0, 0x0>) {
            BRANCH:
            case(<har, 1, 0xff>) { MEMREAD(m); }
            LOADI(mar, 0);
            MEMWRITE(m);
        }
        """
        result = translate(program(source))
        # No domination either way: the ops must be depth-aligned instead.
        assert result.sequential_pairs == []
        depths = [
            op.depth for op in result.ir.walk_ops() if op.name in ("MEMREAD", "MEMWRITE")
        ]
        assert len(set(depths)) == 1


class TestElastic:
    def test_expand_to_requested_count(self):
        from repro.programs.library import CACHE_SOURCE

        prog = expand_elastic(program(CACHE_SOURCE), 0, 16)
        branch = next(s for s in prog.body if hasattr(s, "cases"))
        assert len(branch.cases) == 16

    def test_expanded_conditions_distinct(self):
        from repro.programs.library import CACHE_SOURCE

        prog = expand_elastic(program(CACHE_SOURCE), 0, 8)
        branch = next(s for s in prog.body if hasattr(s, "cases"))
        signatures = {
            tuple((c.register, c.value, c.mask) for c in case.conditions)
            for case in branch.cases
        }
        assert len(signatures) == 8

    def test_shrink_to_requested_count(self):
        from repro.programs.library import CACHE_SOURCE

        prog = expand_elastic(program(CACHE_SOURCE), 0, 1)
        branch = next(s for s in prog.body if hasattr(s, "cases"))
        assert len(branch.cases) == 1

    def test_original_program_untouched(self):
        from repro.programs.library import CACHE_SOURCE

        original = program(CACHE_SOURCE)
        before = len(original.body[3].cases)
        expand_elastic(original, 0, 64)
        assert len(original.body[3].cases) == before

    def test_missing_branch_index(self):
        with pytest.raises(SemanticError, match="no BRANCH"):
            expand_elastic(
                program("program p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }"), 0, 4
            )


class TestUnalignableFallback:
    """Cross-ordered memory accesses (case: m0 then m1; continuation: m1
    then m0) make NOP alignment impossible — translation must fall back
    to the unaligned IR instead of looping or failing."""

    CROSS = """
    @ m0 64
    @ m1 64
    program p(<hdr.ipv4.ttl, 0, 0x0>) {
        BRANCH:
        case(<har, 0, 0xff>) {
            HASH_5_TUPLE_MEM(m0);
            MEMREAD(m0);
            MEMWRITE(m1);
        }
        MEMWRITE(m1);
        MEMWRITE(m0);
    }
    """

    def test_translation_falls_back(self):
        result = translate(program(self.CROSS))
        assert result.aligned is False
        assert result.nops_inserted == 0

    def test_fallback_still_allocates_or_rejects_cleanly(self):
        """The allocator's same-physical-RPB constraints take over: the
        program either allocates (spanning iterations) or is rejected with
        a typed error — never a hang."""
        from repro.compiler import compile_source
        from repro.compiler.target import TargetSpec
        from repro.lang.errors import AllocationError

        try:
            compiled = compile_source(self.CROSS, spec=TargetSpec(max_recirculations=3))
        except AllocationError:
            return
        spec = TargetSpec(max_recirculations=3)
        x = compiled.allocation.x
        for mid, depths in compiled.problem.memory_depths.items():
            physical = {spec.physical_rpb(x[d - 1]) for d in set(depths)}
            assert len(physical) == 1

    def test_aligned_flag_true_for_normal_programs(self):
        from repro.programs.library import CACHE_SOURCE

        result = translate(program(CACHE_SOURCE))
        assert result.aligned is True
