"""Allocation solver tests: constraints, optimality, resource pressure."""

import pytest

from repro.compiler.allocation import AllocationProblem
from repro.compiler.objectives import f1, f2, f3, hierarchical
from repro.compiler.solver import AllocationSolver
from repro.compiler.target import TargetSpec, UnlimitedResources
from repro.lang.errors import AllocationError

SPEC = TargetSpec()  # M=22, N=10, R=1 -> domain 44


def problem(
    depths,
    *,
    te=1,
    forwarding=(),
    memory_sizes=None,
    memory_depths=None,
    pairs=(),
):
    return AllocationProblem(
        program="test",
        num_depths=depths,
        te_req={d: te for d in range(1, depths + 1)},
        forwarding_depths=set(forwarding),
        memory_sizes=memory_sizes or {},
        memory_depths=memory_depths or {},
        sequential_pairs=list(pairs),
    )


def solve(prob, objective=None, view=None, spec=SPEC):
    solver = AllocationSolver(spec, view or UnlimitedResources(spec))
    return solver.solve(prob, objective or f1())


class ConstrainedView:
    """Resource view with configurable per-RPB free entries/memory."""

    def __init__(self, entries=None, memory_ok=None, default_entries=2048):
        self.entries = entries or {}
        self.memory_ok = memory_ok
        self.default_entries = default_entries

    def free_entries(self, phys):
        return self.entries.get(phys, self.default_entries)

    def can_allocate_memory(self, phys, sizes):
        if self.memory_ok is None:
            return True
        return self.memory_ok(phys, sizes)


class TestBasicConstraints:
    def test_strictly_increasing(self):
        result = solve(problem(10))
        assert all(a < b for a, b in zip(result.x, result.x[1:]))

    def test_depth_exceeds_domain(self):
        with pytest.raises(AllocationError, match="logic RPBs"):
            solve(problem(45))

    def test_full_domain_program_fits(self):
        result = solve(problem(44))
        assert result.x == list(range(1, 45))

    def test_single_depth(self):
        result = solve(problem(1))
        assert len(result.x) == 1

    def test_forwarding_on_ingress_only(self):
        result = solve(problem(15, forwarding={15}))
        phys = SPEC.physical_rpb(result.x[14])
        assert phys <= SPEC.num_ingress_rpbs
        assert result.max_iteration == 1  # depth 15 cannot reach ingress in pass 0

    def test_forwarding_infeasible_without_recirculation(self):
        spec = TargetSpec(max_recirculations=0)
        with pytest.raises(AllocationError):
            solve(problem(15, forwarding={15}), spec=spec)

    def test_sequential_pair_same_physical_rpb(self):
        prob = problem(
            3,
            memory_sizes={"m": 64},
            memory_depths={"m": [1, 3]},
            pairs=[(1, 3)],
        )
        result = solve(prob)
        assert SPEC.physical_rpb(result.x[0]) == SPEC.physical_rpb(result.x[2])
        assert result.x[2] == result.x[0] + SPEC.num_rpbs

    def test_memory_placement_recorded(self):
        prob = problem(2, memory_sizes={"m": 64}, memory_depths={"m": [2]})
        result = solve(prob)
        assert result.memory_placement == {"m": SPEC.physical_rpb(result.x[1])}


class TestResourcePressure:
    def test_avoids_full_rpbs(self):
        view = ConstrainedView(entries={1: 0, 2: 0})
        result = solve(problem(3), view=view)
        for value in result.x:
            assert SPEC.physical_rpb(value) not in (1, 2)

    def test_zero_entry_depth_can_use_full_rpb(self):
        prob = problem(3)
        prob.te_req[2] = 0  # a NOP-only depth
        view = ConstrainedView(entries={2: 0})
        result = solve(prob, view=view)
        assert result.x == [1, 2, 3]

    def test_cumulative_entries_across_iterations(self):
        """Two depths mapping to the same physical RPB must jointly fit."""
        view = ConstrainedView(entries={1: 1}, default_entries=0)
        # Depth 1 and 2 must both go somewhere; only RPB 1 has one entry
        # free, so placing both (logic 1 and logic 23) must be rejected.
        prob = problem(2)
        with pytest.raises(AllocationError):
            solve(prob, view=view)

    def test_memory_infeasible(self):
        prob = problem(
            2, memory_sizes={"m": 1 << 20}, memory_depths={"m": [2]}
        )
        view = ConstrainedView(memory_ok=lambda phys, sizes: False)
        with pytest.raises(AllocationError):
            solve(prob, view=view)

    def test_memory_feasible_on_specific_rpb(self):
        prob = problem(2, memory_sizes={"m": 64}, memory_depths={"m": [2]})
        view = ConstrainedView(memory_ok=lambda phys, sizes: phys == 5)
        result = solve(prob, view=view)
        assert SPEC.physical_rpb(result.x[1]) == 5


class TestObjectives:
    def test_f1_prefers_compact_low_allocation_when_free(self):
        result = solve(problem(10), f1())
        assert result.x == list(range(1, 11))
        assert result.objective_value == pytest.approx(0.7 * 10 - 0.3 * 1)

    def test_f2_minimizes_xl(self):
        result = solve(problem(5), f2())
        assert result.x[-1] == 5

    def test_f3_maximizes_ratio_quality(self):
        result = solve(problem(3), f3())
        # optimum of xL/x1 with xL >= x1+2: x=[42,43,44] -> 44/42
        assert result.x[0] + 2 <= result.x[-1]
        assert result.objective_value == pytest.approx(result.x[-1] / result.x[0])
        assert result.objective_value < 1.1

    def test_hierarchical_min_xl_then_max_x1(self):
        result = solve(problem(3), hierarchical())
        assert result.x[-1] == 3  # phase 1: minimal xL
        assert result.x[0] == 1  # phase 2: maximal x1 given xL=3

    def test_f1_pushed_by_ingress_pressure(self):
        """When early ingress RPBs fill up, f1 shifts the window right."""
        view = ConstrainedView(entries={p: 0 for p in range(1, 6)})
        result = solve(problem(4), f1(), view=view)
        assert SPEC.physical_rpb(result.x[0]) >= 6

    def test_f3_explores_more_nodes_than_f1(self):
        """The nonlinear objective runs generic branch and bound: visibly
        more work than the endpoint enumeration (paper §6.2.4)."""
        lin = solve(problem(6), f1())
        non = solve(problem(6), f3())
        assert non.nodes_explored > lin.nodes_explored

    def test_objective_value_consistency(self):
        for objective in (f1(), f2(), f3()):
            result = solve(problem(4), objective)
            assert result.objective_value == pytest.approx(
                objective.value(result.x[0], result.x[-1])
            )


class TestSequentialPairPruning:
    """Regression: same-memory revisits must not blow up the search."""

    def test_revisit_allocates_across_iterations(self):
        from repro.compiler import compile_source

        source = (
            "@ m0 64\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " HASH_5_TUPLE_MEM(m0);"
            " BRANCH: case(<har, 0, 0xff>) { MEMADD(m0); MEMADD(m0); } }"
        )
        compiled = compile_source(source)
        x = compiled.allocation.x
        i, j = compiled.problem.sequential_pairs[0]
        assert SPEC.physical_rpb(x[i - 1]) == SPEC.physical_rpb(x[j - 1])
        assert compiled.allocation.max_iteration == 1
        # The pair prechecks keep this tiny (was ~100k nodes without them).
        assert compiled.allocation.nodes_explored < 1000

    def test_triple_revisit_infeasible_at_r1(self):
        """Three sequential accesses need two extra iterations: R=1 fails,
        R=2 succeeds."""
        from repro.compiler import CompileOptions, compile_source

        source = (
            "@ m0 64\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " HASH_5_TUPLE_MEM(m0); MEMADD(m0); MEMADD(m0); MEMADD(m0); }"
        )
        with pytest.raises(AllocationError):
            compile_source(source)
        compiled = compile_source(source, spec=TargetSpec(max_recirculations=2))
        assert compiled.allocation.max_iteration == 2

    def test_pair_window_precheck_rejects_cleanly(self):
        prob = problem(
            6,
            memory_sizes={"m": 64},
            memory_depths={"m": [4, 6]},
            pairs=[(4, 6)],
        )
        spec = TargetSpec(max_recirculations=0)
        with pytest.raises(AllocationError):
            solve(prob, spec=spec)


class TestSolverReporting:
    def test_solve_time_recorded(self):
        result = solve(problem(8))
        assert result.solve_time_s >= 0

    def test_node_cap(self):
        solver = AllocationSolver(SPEC, UnlimitedResources(SPEC), max_nodes=3)
        with pytest.raises(AllocationError, match="budget"):
            solver.solve(problem(20, forwarding={20}), f3())
