"""Register lifetime analysis tests."""

from repro.compiler.ir import build_ir
from repro.compiler.liveness import compute_live_out, reads_writes
from repro.lang.parser import parse_source


def analyse(source):
    unit = parse_source(source)
    ir = build_ir(unit.programs[0])
    return ir, compute_live_out(ir)


class TestReadsWrites:
    def test_extract_writes_only(self):
        ir, _ = analyse("program p(<hdr.ipv4.ttl, 0, 0x0>) { EXTRACT(hdr.ipv4.src, har); }")
        reads, writes = reads_writes(ir.root.ops[0])
        assert reads == frozenset()
        assert writes == {"har"}

    def test_memadd_reads_mar_sar_writes_sar(self):
        ir, _ = analyse("@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMADD(m); }")
        reads, writes = reads_writes(ir.root.ops[0])
        assert reads == {"mar", "sar"}
        assert writes == {"sar"}

    def test_memwrite_writes_nothing(self):
        ir, _ = analyse("@ m 8\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { MEMWRITE(m); }")
        _, writes = reads_writes(ir.root.ops[0])
        assert writes == frozenset()

    def test_branch_reads_condition_registers(self):
        ir, _ = analyse(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " BRANCH: case(<har, 1, 0xff>, <mar, 2, 0xff>) { DROP; } }"
        )
        reads, writes = reads_writes(ir.root.ops[0])
        assert reads == {"har", "mar"}
        assert writes == frozenset()

    def test_alu_op(self):
        ir, _ = analyse("program p(<hdr.ipv4.ttl, 0, 0x0>) { ADD(har, sar); }")
        reads, writes = reads_writes(ir.root.ops[0])
        assert reads == {"har", "sar"}
        assert writes == {"har"}


class TestLiveOut:
    def test_dead_at_program_end(self):
        ir, live = analyse(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) { LOADI(har, 1); LOADI(sar, 2); }"
        )
        last = ir.root.ops[-1]
        assert live[id(last)] == frozenset()

    def test_live_until_read(self):
        ir, live = analyse(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " LOADI(har, 1); LOADI(sar, 2); ADD(sar, har); }"
        )
        first = ir.root.ops[0]
        assert "har" in live[id(first)]

    def test_killed_by_rewrite(self):
        ir, live = analyse(
            "program p(<hdr.ipv4.ttl, 0, 0x0>) {"
            " LOADI(har, 1); LOADI(har, 2); MODIFY(hdr.ipv4.ttl, har); }"
        )
        first = ir.root.ops[0]
        assert "har" not in live[id(first)]  # overwritten before any read

    def test_branch_joins_case_liveness(self):
        ir, live = analyse(
            """
            program p(<hdr.ipv4.ttl, 0, 0x0>) {
                LOADI(sar, 5);
                BRANCH:
                case(<har, 1, 0xff>) { MODIFY(hdr.ipv4.ttl, sar); }
                case(<har, 2, 0xff>) { DROP; }
            }
            """
        )
        loadi = ir.root.ops[0]
        # sar is read in case 1, so it is live after LOADI.
        assert "sar" in live[id(loadi)]

    def test_branch_joins_continuation_liveness(self):
        ir, live = analyse(
            """
            program p(<hdr.ipv4.ttl, 0, 0x0>) {
                LOADI(mar, 9);
                BRANCH:
                case(<har, 1, 0xff>) { DROP; }
                MODIFY(hdr.ipv4.ttl, mar);
            }
            """
        )
        loadi = ir.root.ops[0]
        assert "mar" in live[id(loadi)]

    def test_not_live_when_unused_everywhere(self):
        ir, live = analyse(
            """
            program p(<hdr.ipv4.ttl, 0, 0x0>) {
                LOADI(mar, 9);
                BRANCH:
                case(<har, 1, 0xff>) { DROP; }
                case(<har, 2, 0xff>) { RETURN; }
            }
            """
        )
        loadi = ir.root.ops[0]
        assert "mar" not in live[id(loadi)]

    def test_every_op_has_live_out(self):
        from repro.programs.library import HH_SOURCE

        ir, live = analyse(HH_SOURCE)
        for op in ir.walk_ops():
            assert id(op) in live
