"""The relocatable allocation cache (deploy fast path, front half).

Covers the content address (:func:`shape_digest`), the LRU discipline of
:class:`DeployCache`, trace rebinding through :func:`allocate_program`,
solver-cache eviction on revoke, and entry-batch relocation — each with
the invariant that the fast path's output is identical to the reference
path's.
"""

import pytest

from repro.compiler.alloc_cache import AllocationShape, DeployCache, shape_digest
from repro.compiler.allocation import build_problem
from repro.compiler.compiler import (
    CompileOptions,
    allocate_program,
    compile_source,
    parse_and_check,
)
from repro.compiler.entries import EntryBatch, EntryGenerator, relocate_batch
from repro.compiler.objectives import f1, f3
from repro.compiler.solver import cache_stats, evict_problem_shape
from repro.compiler.target import TargetSpec, UnlimitedResources
from repro.compiler.translate import translate
from repro.controlplane import Controller
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS

SPEC = TargetSpec()


def build(name="cache"):
    unit = parse_and_check(PROGRAMS[name].source)
    translation = translate(unit.programs[0])
    return build_problem(unit, translation)


# -- shape digest --------------------------------------------------------------


def test_digest_is_a_pure_function_of_the_shape():
    # Two independently built problems for the same source share a digest,
    # even though they are distinct objects (the memo is per-object but
    # the digest is content-addressed).
    a, b = build("lb"), build("lb")
    assert a is not b
    assert shape_digest(a, SPEC, f1()) == shape_digest(b, SPEC, f1())
    # Repeated calls on the same object hit the memo and stay stable.
    assert shape_digest(a, SPEC, f1()) == shape_digest(a, SPEC, f1())


def test_digest_separates_shapes_and_modes():
    lb, cms = build("lb"), build("cms")
    base = shape_digest(lb, SPEC, f1())
    assert base != shape_digest(cms, SPEC, f1())
    assert base != shape_digest(lb, SPEC, f3())
    assert base != shape_digest(lb, SPEC, f1(), direct_memory=True)
    small = TargetSpec(rpb_table_size=SPEC.rpb_table_size // 2)
    assert base != shape_digest(lb, small, f1())


# -- DeployCache LRU discipline ------------------------------------------------


def test_shape_cache_is_lru_bounded():
    cache = DeployCache(shape_cap=2)
    shape = AllocationShape(trace=((1, 2, "win"),), x=(1, 2), objective_value=0.0)
    for digest in ("a", "b", "c"):
        cache.store_shape(digest, shape)
    assert cache.lookup_shape("a") is None  # evicted, oldest first
    assert cache.lookup_shape("b") is shape
    # "b" is now most recent; storing "d" evicts "c".
    cache.store_shape("d", shape)
    assert cache.lookup_shape("c") is None
    assert cache.lookup_shape("b") is shape


def test_frontend_cache_is_lru_bounded():
    cache = DeployCache(frontend_cap=2)
    for key in ("a", "b", "c"):
        cache.store_frontend(key, key.upper())
    assert cache.lookup_frontend("a") is None
    assert cache.lookup_frontend("c") == "C"


def test_disabled_cache_stores_and_returns_nothing():
    cache = DeployCache()
    cache.enabled = False
    cache.store_shape("a", AllocationShape(trace=(), x=(), objective_value=0.0))
    cache.store_frontend("k", "v")
    assert cache.lookup_shape("a") is None
    assert cache.lookup_frontend("k") is None
    assert cache.stats()["shape_entries"] == 0
    assert cache.stats()["frontend_entries"] == 0


def test_stats_counts_hits_and_misses():
    cache = DeployCache()
    cache.lookup_shape("missing")
    cache.store_shape("hit", AllocationShape(trace=(), x=(), objective_value=0.0))
    cache.lookup_shape("hit")
    stats = cache.stats()
    assert stats["shape_misses"] == 1
    assert stats["shape_hits"] == 1
    assert set(stats) >= {
        "enabled",
        "frontend_entries",
        "frontend_cap",
        "shape_entries",
        "shape_cap",
        "rebinds",
        "rebind_fallbacks",
    }


# -- rebinding through allocate_program ---------------------------------------


def test_second_solve_rebinds_and_matches_reference():
    problem = build("lb")
    view = UnlimitedResources(SPEC)
    cache = DeployCache()
    first = allocate_program(problem, f1(), spec=SPEC, view=view, deploy_cache=cache)
    assert not first.rebound and cache.rebinds == 0
    second = allocate_program(problem, f1(), spec=SPEC, view=view, deploy_cache=cache)
    assert second.rebound and cache.rebinds == 1
    reference = allocate_program(problem, f1(), spec=SPEC, view=view)
    assert second.x == first.x == reference.x
    assert second.memory_placement == reference.memory_placement
    assert second.objective_value == reference.objective_value


def test_rebind_matches_fresh_solve_under_occupancy():
    """The cached trace must re-derive the allocation from *current* free
    lists: deploy programs to change occupancy between the priming solve
    and the rebinding solve, then compare against a cache-less compile."""
    warm = Controller()
    cold = Controller()
    cold.deploy_cache.enabled = False
    for name in ("lb", "cms", "lb", "hh", "lb"):
        a = warm.deploy(PROGRAMS[name].source)
        b = cold.deploy(PROGRAMS[name].source)
        assert a.stats.logic_rpbs == b.stats.logic_rpbs
    assert warm.deploy_cache.rebinds > 0
    assert warm.manager.state_fingerprint() == cold.manager.state_fingerprint()


def test_deploy_revoke_deploy_hits_the_cache():
    ctl = Controller()
    first = ctl.deploy(PROGRAMS["cms"].source)
    assert not first.stats.cache_hit
    ctl.revoke(first)
    second = ctl.deploy(PROGRAMS["cms"].source)
    assert second.stats.cache_hit
    assert second.stats.logic_rpbs == first.stats.logic_rpbs
    assert ctl.deploy_cache.frontend_hits >= 1


# -- solver-cache eviction on revoke ------------------------------------------


def test_revoke_evicts_the_shape_from_the_solver_cache():
    ctl = Controller()
    handle = ctl.deploy(PROGRAMS["cache"].source)
    problem = ctl.manager.get(handle.program_id).compiled.problem
    ctl.revoke(handle)
    # The controller already evicted on revoke; a second eviction finds
    # nothing, proving the line is gone rather than merely stale.
    assert evict_problem_shape(ctl.manager, problem) is False


def test_cache_stats_reports_sizes_and_caps():
    stats = cache_stats()
    assert set(stats) == {
        "views",
        "feasibility_shapes",
        "feasibility_shape_cap",
        "sorted_pair_orders",
        "sorted_pair_orders_cap",
        "warm_start_hints",
        "warm_start_hints_cap",
    }
    assert stats["feasibility_shape_cap"] > 0


# -- entry-batch relocation ----------------------------------------------------


def _fresh_batch(compiled, program_id, bases):
    return EntryGenerator(SPEC).generate(
        compiled.ir,
        compiled.program.filters,
        compiled.allocation,
        program_id,
        bases,
        compiled.memory_decls(),
    )


def _canonical_bases(compiled):
    return {
        mid: (phys, [(0, 0, size)])
        for mid, (phys, size) in compiled.memory_requests().items()
    }


@pytest.mark.parametrize("name", ALL_PROGRAM_NAMES)
def test_relocate_batch_equals_fresh_emission(name):
    compiled = compile_source(PROGRAMS[name].source)
    canonical = _fresh_batch(compiled, 0, _canonical_bases(compiled))
    # Relocate to a different id and shifted bases; compare against a
    # from-scratch emission for that exact placement.
    shifted = {
        mid: (phys, [(0, 64, size)])
        for mid, (phys, size) in compiled.memory_requests().items()
    }
    relocated = relocate_batch(canonical, 7, shifted)
    assert relocated is not None
    fresh = _fresh_batch(compiled, 7, shifted)
    assert relocated.program_id == fresh.program_id == 7
    assert relocated.install_order() == fresh.install_order()
    assert relocated.delete_order() == fresh.delete_order()


def test_relocate_refuses_fragmented_layouts():
    compiled = compile_source(PROGRAMS["cache"].source)
    canonical = _fresh_batch(compiled, 0, _canonical_bases(compiled))
    requests = compiled.memory_requests()
    assert requests  # cache has memory; the fragmented case is reachable
    mid, (phys, size) = next(iter(requests.items()))
    fragmented = dict(_canonical_bases(compiled))
    half = max(size // 2, 1)
    fragmented[mid] = (phys, [(0, 0, half), (half, 128, size - half)])
    assert relocate_batch(canonical, 7, fragmented) is None


def test_emit_entries_template_path_is_invisible():
    """Through the public emit_entries API: first call generates ("seen"),
    second builds the template, third relocates — all three must be
    identical for fixed inputs, and a different id must only change the
    program-id-derived data."""
    compiled = compile_source(PROGRAMS["lb"].source)
    bases = {
        mid: (phys, [(0, 0, size)])
        for mid, (phys, size) in compiled.memory_requests().items()
    }
    first = compiled.emit_entries(SPEC, 3, bases)
    second = compiled.emit_entries(SPEC, 3, bases)
    third = compiled.emit_entries(SPEC, 3, bases)
    assert first.install_order() == second.install_order() == third.install_order()
    other = compiled.emit_entries(SPEC, 9, bases)
    assert isinstance(other, EntryBatch) and other.program_id == 9
    assert other.install_order() == _fresh_batch(compiled, 9, bases).install_order()
