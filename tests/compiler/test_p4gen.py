"""P4₁₆ emitter tests: structure, semantics mapping, LoC expansion."""

import pytest

from repro.compiler.compiler import parse_and_check
from repro.compiler.p4gen import check_structure, emit_p4, p4_loc
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS, source_loc


def generate(name: str) -> str:
    unit = parse_and_check(PROGRAMS[name].source)
    return emit_p4(unit, unit.programs[0])


class TestStructure:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAM_NAMES))
    def test_emitted_p4_is_well_formed(self, name):
        text = generate(name)
        assert check_structure(text) == []

    def test_control_block_named_after_program(self):
        assert "control CacheIngress(" in generate("cache")

    def test_register_externs_per_memory(self):
        text = generate("hh")
        for mid in ("mem_cms_row1", "mem_cms_row2", "mem_bf_row1", "mem_bf_row2"):
            assert f"Register<bit<32>, bit<32>>(256) {mid};" in text
            assert f"{mid}_add" in text or f"{mid}_or" in text

    def test_branch_becomes_ternary_table(self):
        text = generate("cache")
        assert "table cache_branch_1" in text
        assert "ig_md.har : ternary;" in text

    def test_filter_becomes_guard(self):
        text = generate("cache")
        assert "(hdr.udp.dst_port & 0xffff) == 0x1e61" in text

    def test_nested_branches_nested_tables(self):
        text = generate("hh")
        assert "table hh_branch_3" in text  # three BRANCHes in hh


class TestSemanticsMapping:
    def test_forwarding_primitives(self):
        text = generate("cache")
        assert "ig_intr_tm_md.ucast_egress_port = 9w32;" in text  # FORWARD(32)
        assert "ig_intr_dprsr_md.drop_ctl = 1;" in text  # DROP
        assert "ucast_egress_port = ig_intr_md.ingress_port" in text  # RETURN

    def test_report_maps_to_copy_to_cpu(self):
        assert "copy_to_cpu = 1;" in generate("hh")

    def test_memory_ops_use_register_actions(self):
        text = generate("cache")
        assert "ig_md.sar = mem1_read.execute(ig_md.mar);" in text
        assert "ig_md.sar = mem1_write.execute(ig_md.mar);" in text

    def test_hash_mem_applies_mask(self):
        text = generate("lb")
        assert "& 32w255;" in text  # 256-bucket pools

    def test_pseudo_primitives_become_expressions(self):
        text = generate("calc")
        assert "ig_md.sar = ig_md.sar - ig_md.mar;" in text  # SUB, directly

    def test_else_chain_matches_continuation_semantics(self):
        text = generate("cache")
        # The cache-miss FORWARD lives in the final else of the branch.
        else_index = text.rindex("} else {")
        forward_index = text.index("ucast_egress_port = 9w32")
        assert forward_index > else_index


class TestLocExpansion:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAM_NAMES))
    def test_generated_p4_longer_than_runpro(self, name):
        """Table 1's headline: conventional P4 needs 2-5x the LoC."""
        runpro = source_loc(PROGRAMS[name].source)
        generated = p4_loc(generate(name))
        assert generated > runpro
        assert generated / runpro < 8.0

    def test_expansion_tracks_paper_order(self):
        """Across the library, mean expansion lands in the paper's band
        (Table 1 averages ~3.4x for P4 control blocks)."""
        ratios = [
            p4_loc(generate(name)) / source_loc(PROGRAMS[name].source)
            for name in ALL_PROGRAM_NAMES
        ]
        mean = sum(ratios) / len(ratios)
        assert 2.0 < mean < 5.5

    def test_p4_loc_counting(self):
        text = "// comment\n\naction a() {\n    x = 1;\n}\n"
        assert p4_loc(text) == 2  # the action line and the statement
