"""Top-level compiler driver tests."""

import pytest

from repro.compiler.compiler import CompileOptions, compile_source, parse_and_check
from repro.compiler.objectives import f2
from repro.compiler.target import TargetSpec
from repro.lang.errors import P4runproError, SemanticError
from repro.programs.library import CACHE_SOURCE, LB_SOURCE


class TestCompileSource:
    def test_cache_matches_figure5(self):
        compiled = compile_source(CACHE_SOURCE)
        assert compiled.problem.num_depths == 10
        assert compiled.allocation.x == list(range(1, 11))

    def test_phase_timings_populated(self):
        compiled = compile_source(CACHE_SOURCE)
        assert compiled.parse_time_s > 0
        assert compiled.translate_time_s > 0
        assert compiled.allocate_time_s > 0

    def test_memory_requests(self):
        compiled = compile_source(LB_SOURCE)
        requests = compiled.memory_requests()
        assert set(requests) == {"dip_pool", "port_pool"}
        for phys, size in requests.values():
            assert size == 256
            assert 1 <= phys <= 22

    # Annotations must precede all programs, so a combined source hoists
    # both programs' '@' declarations to the top.
    COMBINED = (
        "@ mem1 256\n@ dip_pool 256\n@ port_pool 256\n"
        + CACHE_SOURCE.replace("@ mem1 256\n", "")
        + LB_SOURCE.replace("@ dip_pool 256\n@ port_pool 256\n", "")
    )

    def test_multi_program_source_needs_name(self):
        with pytest.raises(P4runproError, match="program_name"):
            compile_source(self.COMBINED)
        compiled = compile_source(self.COMBINED, program_name="lb")
        assert compiled.name == "lb"

    def test_unknown_program_name(self):
        with pytest.raises(P4runproError, match="no program named"):
            compile_source(CACHE_SOURCE, program_name="nope")

    def test_semantic_error_propagates(self):
        with pytest.raises(SemanticError):
            compile_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { MEMREAD(ghost); }")

    def test_custom_objective(self):
        compiled = compile_source(CACHE_SOURCE, options=CompileOptions(objective=f2()))
        assert compiled.allocation.objective_name == "f2"

    def test_elastic_option_inflates_entries(self):
        base = compile_source(CACHE_SOURCE)
        grown = compile_source(
            CACHE_SOURCE, options=CompileOptions(elastic_cases=16, elastic_branch=0)
        )
        assert grown.problem.entries_total() > base.problem.entries_total()

    def test_custom_spec(self):
        spec = TargetSpec(num_ingress_rpbs=4, num_egress_rpbs=4, max_recirculations=3)
        compiled = compile_source(CACHE_SOURCE, spec=spec)
        assert max(compiled.allocation.x) <= spec.num_logic_rpbs


class TestParseAndCheck:
    def test_returns_checked_unit(self):
        unit = parse_and_check(CACHE_SOURCE)
        assert unit.programs[0].name == "cache"

    def test_rejects_bad_source(self):
        with pytest.raises(SemanticError):
            parse_and_check("@ m 3\nprogram p(<hdr.ipv4.ttl, 0, 0x0>) { DROP; }")
