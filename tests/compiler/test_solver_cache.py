"""Static-feasibility caching in the allocation solver.

The cache must be invisible: identical results with the cache on or off,
correct invalidation when the resource view's generation changes, and
cross-solver reuse only for generation-carrying views.
"""

from repro.compiler.allocation import build_problem
from repro.compiler.compiler import compile_source, parse_and_check
from repro.compiler.objectives import f1, hierarchical
from repro.compiler.solver import AllocationSolver
from repro.compiler.translate import translate
from repro.controlplane.manager import ResourceManager
from repro.programs import PROGRAMS


def build_allocation_problem(name="cache"):
    unit = parse_and_check(PROGRAMS[name].source)
    translation = translate(unit.programs[0])
    return unit, build_problem(unit, translation)


class CountingView:
    """Unlimited resources with call counting and a generation knob."""

    def __init__(self):
        self.generation = 0
        self.free_entries_calls = 0
        self.blocked_phys: set[int] = set()

    def free_entries(self, phys_rpb: int) -> int:
        self.free_entries_calls += 1
        return 0 if phys_rpb in self.blocked_phys else 2048

    def can_allocate_memory(self, phys_rpb: int, sizes: list[int]) -> bool:
        return phys_rpb not in self.blocked_phys


def test_cache_on_and_off_agree():
    _, problem = build_allocation_problem()
    for objective in (f1(), hierarchical()):
        cached = AllocationSolver()
        uncached = AllocationSolver()
        uncached.cache_enabled = False
        a = cached.solve(problem, objective)
        b = uncached.solve(problem, objective)
        assert a.x == b.x
        assert a.objective_value == b.objective_value
        assert a.memory_placement == b.memory_placement


def test_hierarchical_solve_hits_cache():
    _, problem = build_allocation_problem()
    solver = AllocationSolver()
    solver.solve(problem, hierarchical())
    # Phase 1 misses, phase 2 (same shape, same view state) hits.
    assert solver.cache_misses >= 1
    assert solver.cache_hits >= 1


def test_generation_bump_invalidates():
    view = CountingView()
    solver = AllocationSolver(view=view)
    _, problem = build_allocation_problem()
    first = solver.solve(problem, f1())
    # Block the physical RPB the first solve used, as a real admission
    # would, and bump the generation: the solver must see the change.
    view.blocked_phys.add((first.x[0] - 1) % solver.spec.num_rpbs + 1)
    view.generation += 1
    second = solver.solve(problem, f1())
    assert second.x != first.x


def test_same_generation_reuses_across_solves():
    view = CountingView()
    _, problem = build_allocation_problem()
    solver1 = AllocationSolver(view=view)
    solver1.solve(problem, f1())
    calls_after_first = view.free_entries_calls
    # A second solver over the same unchanged view reuses the shared
    # cache: the static per-(depth, value) scan is skipped entirely.  The
    # interior DFS still consults the view (cumulative checks depend on
    # the partial assignment), so a small number of reads remain.
    solver2 = AllocationSolver(view=view)
    solver2.solve(problem, f1())
    assert solver2.cache_hits >= 1
    assert solver2.cache_misses == 0
    extra = view.free_entries_calls - calls_after_first
    assert extra < calls_after_first / 2


def test_manager_generation_tracks_lifecycle():
    manager = ResourceManager()
    g0 = manager.generation
    ctl_source = PROGRAMS["cache"].source
    # Drive the real admission path through the compiler + manager.
    compiled = compile_source(ctl_source, view=manager)
    record = manager.admit(compiled)
    g1 = manager.generation
    assert g1 > g0
    manager.begin_removal(record.program_id)
    g2 = manager.generation
    manager.finish_removal(record)
    assert manager.generation > g2 > g1


def test_deploy_against_manager_uses_fresh_feasibility():
    """End to end: two deploys through one manager land on disjoint
    memory-hosting RPBs when the first fills one up — stale cached
    feasibility would make the second deploy collide or fail."""
    manager = ResourceManager()
    first = compile_source(PROGRAMS["cache"].source, view=manager)
    manager.admit(first)
    second = compile_source(PROGRAMS["cache"].source, view=manager)
    record = manager.admit(second)
    assert record.program_id != 1 or True  # admission itself must not raise
