"""Entry-generation tests (Fig. 5(c) / Fig. 6 install order)."""

import pytest

from repro.compiler.compiler import compile_source
from repro.compiler.entries import required_bitmap
from repro.compiler.target import TargetSpec
from repro.dataplane import constants as dp
from repro.lang.ast import Filter
from repro.programs.library import CACHE_SOURCE, HH_SOURCE

SPEC = TargetSpec()


@pytest.fixture(scope="module")
def cache_batch():
    compiled = compile_source(CACHE_SOURCE)
    bases = {"mem1": (compiled.allocation.memory_placement["mem1"], 128)}
    return compiled, compiled.emit_entries(SPEC, 42, bases)


class TestBatchStructure:
    def test_entry_count(self, cache_batch):
        _, batch = cache_batch
        assert len(batch) == 17  # 16 body + 1 init

    def test_init_entry_last_in_install_order(self, cache_batch):
        _, batch = cache_batch
        order = batch.install_order()
        assert order[-1].table == dp.INIT_TABLE
        assert all(e.table != dp.INIT_TABLE for e in order[:-1])

    def test_init_entry_first_in_delete_order(self, cache_batch):
        _, batch = cache_batch
        assert batch.delete_order()[0].table == dp.INIT_TABLE

    def test_no_recirc_entries_for_cache(self, cache_batch):
        _, batch = cache_batch
        assert batch.recirc_entries == []

    def test_program_id_on_every_body_entry(self, cache_batch):
        _, batch = cache_batch
        for entry in batch.body_entries:
            pid_keys = [k for k in entry.keys if k.field == "ud.program_id"]
            assert pid_keys and pid_keys[0].value == 42

    def test_nop_generates_no_entry(self, cache_batch):
        _, batch = cache_batch
        assert all(e.action != "NOP" for e in batch.install_order())


class TestBranchEntries:
    def test_case_entries_match_registers(self, cache_batch):
        _, batch = cache_batch
        branch_entries = [e for e in batch.body_entries if e.action == dp.ACTION_SET_BRANCH]
        assert len(branch_entries) == 2
        for entry in branch_entries:
            fields = {k.field for k in entry.keys}
            assert {"ud.har", "ud.sar", "ud.mar"} <= fields

    def test_case_entries_set_target_branch(self, cache_batch):
        _, batch = cache_batch
        targets = {
            e.data()["branch_id"]
            for e in batch.body_entries
            if e.action == dp.ACTION_SET_BRANCH
        }
        assert targets == {1, 2}

    def test_case_priorities_follow_order(self, cache_batch):
        _, batch = cache_batch
        priorities = [
            e.priority for e in batch.body_entries if e.action == dp.ACTION_SET_BRANCH
        ]
        assert priorities == sorted(priorities)


class TestActionData:
    def test_offset_carries_physical_base(self, cache_batch):
        _, batch = cache_batch
        offsets = [e for e in batch.body_entries if e.action == "OFFSET"]
        assert offsets and all(e.data()["base"] == 128 for e in offsets)

    def test_hash_mem_mask_from_declared_size(self):
        compiled = compile_source(HH_SOURCE)
        bases = {
            mid: (phys, 0) for mid, phys in compiled.allocation.memory_placement.items()
        }
        batch = compiled.emit_entries(SPEC, 7, bases)
        hash_entries = [e for e in batch.body_entries if e.action == "HASH_5_TUPLE_MEM"]
        assert hash_entries
        assert all(e.data()["mask"] == 255 for e in hash_entries)

    def test_hash_algorithms_cycle(self):
        compiled = compile_source(HH_SOURCE)
        bases = {
            mid: (phys, 0) for mid, phys in compiled.allocation.memory_placement.items()
        }
        batch = compiled.emit_entries(SPEC, 7, bases)
        algos = [
            e.data()["algorithm"]
            for e in batch.install_order()
            if "algorithm" in e.data()
        ]
        assert len(set(algos)) >= 2  # distinct CRCs across hash ops

    def test_recirc_entries_for_recirculating_program(self):
        compiled = compile_source(HH_SOURCE)
        assert compiled.allocation.max_iteration == 1
        bases = {
            mid: (phys, 0) for mid, phys in compiled.allocation.memory_placement.items()
        }
        batch = compiled.emit_entries(SPEC, 7, bases)
        assert len(batch.recirc_entries) == 1
        entry = batch.recirc_entries[0]
        assert entry.table == dp.RECIRC_TABLE
        assert entry.action == dp.ACTION_RECIRCULATE

    def test_entries_placed_on_allocated_rpbs(self, cache_batch):
        compiled, batch = cache_batch
        allocated_tables = {
            dp.rpb_table(SPEC.physical_rpb(v)) for v in compiled.allocation.x
        }
        body_tables = {e.table for e in batch.body_entries}
        assert body_tables <= allocated_tables


class TestRequiredBitmap:
    def test_udp_filter_implies_chain(self):
        bitmap = required_bitmap([Filter("hdr.udp.dst_port", 7777, 0xFFFF)])
        from repro.rmt.parser import DEFAULT_BITMAP_BITS as B

        for header in ("eth", "ipv4", "udp"):
            assert bitmap & (1 << B[header])

    def test_metadata_filter_needs_only_eth(self):
        bitmap = required_bitmap([Filter("meta.ingress_port", 1, 0x1FF)])
        from repro.rmt.parser import DEFAULT_BITMAP_BITS as B

        assert bitmap == 1 << B["eth"]

    def test_nc_filter_implies_udp(self):
        bitmap = required_bitmap([Filter("hdr.nc.op", 1, 0xFF)])
        from repro.rmt.parser import DEFAULT_BITMAP_BITS as B

        for header in ("eth", "ipv4", "udp", "nc"):
            assert bitmap & (1 << B[header])
