"""Consistent-update integration tests (paper §4.3, Fig. 6).

The key property: because the initialization entry is installed last and
deleted first, a packet processed at *any* intermediate state of an
install or remove sequence behaves either like the program is fully absent
or fully present — never like a half-installed program.
"""

import pytest

from repro.compiler.compiler import compile_source
from repro.controlplane import Controller
from repro.controlplane.manager import ResourceManager
from repro.dataplane.runpro import P4runproDataPlane
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache
from repro.rmt.pipeline import Verdict


def fresh_setup():
    dataplane = P4runproDataPlane()
    manager = ResourceManager()
    compiled = compile_source(PROGRAMS["cache"].source, view=manager)
    record = manager.admit(compiled)
    return dataplane, manager, record


def probe(dataplane):
    """Process one hit-read and one miss-read; classify the behaviour."""
    hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
    miss = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x777))
    return hit, miss


def behaviour_is_absent(hit, miss):
    """No program: both packets take the default path (forward port 0)."""
    return (
        hit.verdict is Verdict.FORWARD
        and hit.egress_port == 0
        and miss.verdict is Verdict.FORWARD
        and miss.egress_port == 0
    )


def behaviour_is_present(hit, miss):
    """Full program: hit reflects, miss forwards to the server port."""
    return (
        hit.verdict is Verdict.REFLECT
        and miss.verdict is Verdict.FORWARD
        and miss.egress_port == 32
    )


class TestInstallPrefixes:
    def test_every_install_prefix_is_consistent(self):
        """Install entries one at a time; after each step, the observable
        behaviour must be exactly 'absent' until the final (init) entry."""
        dataplane, manager, record = fresh_setup()
        entries = record.batch.install_order()
        for index, entry in enumerate(entries):
            dataplane.insert_entry(entry)
            hit, miss = probe(dataplane)
            if index < len(entries) - 1:
                assert behaviour_is_absent(hit, miss), f"leak after entry {index}"
            else:
                assert behaviour_is_present(hit, miss)

    def test_every_delete_prefix_is_consistent(self):
        dataplane, manager, record = fresh_setup()
        handles = []
        for entry in record.batch.install_order():
            handles.append((entry.table, dataplane.insert_entry(entry)))
        # Delete in consistent order: init handle was installed last.
        init_handle = handles[-1]
        rest = handles[:-1]
        dataplane.delete_entry(*init_handle)
        for index, (table, handle) in enumerate(rest):
            hit, miss = probe(dataplane)
            assert behaviour_is_absent(hit, miss), f"ghost after delete {index}"
            dataplane.delete_entry(table, handle)
        hit, miss = probe(dataplane)
        assert behaviour_is_absent(hit, miss)

    def test_wrong_order_would_leak(self):
        """Sanity check of the experiment itself: installing the init entry
        *first* exposes a half-installed program (the hazard Fig. 6
        avoids)."""
        dataplane, manager, record = fresh_setup()
        order = record.batch.install_order()
        dataplane.insert_entry(order[-1])  # init first (wrong!)
        hit, miss = probe(dataplane)
        assert not behaviour_is_present(hit, miss)
        assert not behaviour_is_absent(hit, miss) or hit.verdict is Verdict.FORWARD


class TestMemoryReclaim:
    def test_no_stale_state_for_successor(self):
        """Terminate a cache with dirty memory; a newly admitted program
        reusing the buckets must observe zeros (Fig. 6 lock+reset)."""
        ctl, dataplane = Controller.with_simulator()
        first = ctl.deploy(PROGRAMS["cache"].source)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=0xDEAD))
        assert ctl.read_memory(first, "mem1", 128) == 0xDEAD
        ctl.revoke(first)
        second = ctl.deploy(PROGRAMS["cache"].source)
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.packet.get_field("hdr.nc.val") == 0

    def test_concurrent_program_unaffected_by_removal(self):
        ctl, dataplane = Controller.with_simulator()
        cache = ctl.deploy(PROGRAMS["cache"].source)
        lb = ctl.deploy(PROGRAMS["lb"].source)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=7))
        ctl.revoke(lb)
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.verdict is Verdict.REFLECT
        assert hit.packet.get_field("hdr.nc.val") == 7
