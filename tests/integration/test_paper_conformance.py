"""Conformance to the paper's worked examples, figure by figure."""

import pytest

from repro.compiler import compile_source
from repro.controlplane import Controller
from repro.programs.library import CACHE_SOURCE, HH_SOURCE, LB_SOURCE


class TestFigure5Compilation:
    """Fig. 5: the compilation of the program cache."""

    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_source(CACHE_SOURCE)

    def test_translated_ast_depth_is_ten(self, compiled):
        """Fig. 5(b): after translation L = 10."""
        assert compiled.problem.num_depths == 10

    def test_offset_steps_inserted_before_memory(self, compiled):
        names_by_depth = {
            depth: sorted(str(op.name) for op in ops)
            for depth, ops in compiled.ir.levels().items()
        }
        assert "OFFSET" in names_by_depth[8]
        assert {"MEMREAD", "MEMWRITE"} <= set(names_by_depth[9])

    def test_nop_aligns_the_read_branch(self, compiled):
        """Fig. 5(b): "inserts a 'nop' after LOADI in the middle branch to
        align the memory operations"."""
        nops = [op for op in compiled.ir.walk_ops() if op.name == "NOP"]
        assert len(nops) == 1
        assert nops[0].depth == 7
        read_branch = nops[0].branch_id
        loadis = [
            op
            for op in compiled.ir.walk_ops()
            if op.name == "LOADI" and op.branch_id == read_branch
        ]
        assert loadis[0].depth == 6  # the NOP follows the LOADI

    def test_memory_ops_aligned_across_branches(self, compiled):
        depths = {
            op.depth
            for op in compiled.ir.walk_ops()
            if op.name in ("MEMREAD", "MEMWRITE")
        }
        assert len(depths) == 1

    def test_fig5c_occupied_rpb_shifts_memory(self):
        """Fig. 5(c): "in the situation that all the memory of RPB9 is
        occupied by other running programs ... the compiler moves the
        executions of the memory primitives to the next RPB"."""
        baseline = compile_source(CACHE_SOURCE)
        home = baseline.allocation.memory_placement["mem1"]

        class Occupied:
            def free_entries(self, phys):
                return 2048

            def can_allocate_memory(self, phys, sizes):
                return phys != home

        shifted = compile_source(CACHE_SOURCE, view=Occupied())
        new_home = shifted.allocation.memory_placement["mem1"]
        assert new_home == home + 1  # the next RPB, as in the figure
        # Note: the paper's figure keeps the prefix and stretches the tail;
        # under f1 = 0.7x_L - 0.3x_1 sliding the whole window by one is
        # strictly better (7.1 < 7.4), which is what our exact solver does.
        assert shifted.allocation.x[-1] == baseline.allocation.x[-1] + 1
        assert shifted.allocation.max_iteration == 0  # still no recirculation


class TestFigure6UpdateSequence:
    """Fig. 6: terminating prog1 and adding prog2."""

    def test_add_then_terminate_order(self):
        from repro.compiler.compiler import compile_source as cs
        from repro.dataplane import constants as dp

        compiled = cs(CACHE_SOURCE)
        batch = compiled.emit_entries(
            __import__("repro.compiler", fromlist=["TargetSpec"]).TargetSpec(),
            1,
            {"mem1": (compiled.allocation.memory_placement["mem1"], 0)},
        )
        install = [e.table for e in batch.install_order()]
        delete = [e.table for e in batch.delete_order()]
        # (8) init updated last on add; (2) filter deleted first on remove.
        assert install[-1] == dp.INIT_TABLE
        assert delete[0] == dp.INIT_TABLE

    def test_memory_locked_until_reset(self):
        """Fig. 6 step 4: locked memory is unavailable for reallocation
        until the reset completes."""
        ctl, _ = Controller.with_simulator()
        handle = ctl.deploy(CACHE_SOURCE)
        record = ctl.manager.get(handle.program_id)
        phys = record.memory["mem1"].phys_rpb
        freelist = ctl.manager._freelists[phys]
        free_before_removal = freelist.free_total()
        ctl.manager.begin_removal(handle.program_id)
        # Locked: not free, not reusable.
        assert freelist.free_total() == free_before_removal
        assert freelist.locked_ranges()
        ctl.updater.remove(record)
        ctl.manager.finish_removal(record)
        assert freelist.free_total() == free_before_removal + 256
        assert not freelist.locked_ranges()


class TestSection32Workflow:
    """§3.2: the operator's end-to-end workflow for the program cache."""

    def test_deploy_needs_only_source_and_one_call(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(CACHE_SOURCE)
        assert handle.stats.total_ms < 1000  # hundreds of ms at worst
        assert len(ctl.running_programs()) == 1

    def test_program_states_monitorable_through_lifecycle(self):
        from repro.controlplane.manager import ProgramState

        ctl, _ = Controller.with_simulator()
        handle = ctl.deploy(CACHE_SOURCE)
        record = ctl.manager.get(handle.program_id)
        assert record.state is ProgramState.RUNNING
        assert ctl.program_stats(handle)["entries"] == 17


class TestAppendixBPrograms:
    """Appendix B.2's lb and hh listings compile to the described shapes."""

    def test_lb_uses_two_memories_one_hash(self):
        compiled = compile_source(LB_SOURCE)
        assert set(compiled.problem.memory_sizes) == {"dip_pool", "port_pool"}
        hashes = [op for op in compiled.ir.walk_ops() if op.name.startswith("HASH")]
        assert len(hashes) == 1  # HASH_5_TUPLE_MEM locates both pools

    def test_hh_structure(self):
        """2-row CMS + 2-row BF, nested BRANCHes, REPORT at the leaves."""
        compiled = compile_source(HH_SOURCE)
        assert len(compiled.problem.memory_sizes) == 4
        branches = [op for op in compiled.ir.walk_ops() if op.is_branch]
        assert len(branches) == 3
        reports = [op for op in compiled.ir.walk_ops() if op.name == "REPORT"]
        assert len(reports) == 2
        assert compiled.allocation.max_iteration == 1
