"""End-to-end operator workflows across subsystems."""

import pytest

from repro.compiler import CompileOptions, f3
from repro.controlplane import Controller
from repro.programs import PROGRAMS, source_with_memory
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_udp
from repro.rmt.pipeline import Verdict


class TestChurnWorkflow:
    def test_hundred_deploy_revoke_cycles_leave_clean_state(self):
        """Repeated lifecycle churn must not leak entries or memory."""
        ctl, dataplane = Controller.with_simulator()
        for i in range(100):
            name = ("cache", "lb", "cms")[i % 3]
            handle = ctl.deploy(PROGRAMS[name].source)
            ctl.revoke(handle)
        assert ctl.utilization() == {"memory": 0.0, "entries": 0.0}
        for table in dataplane.tables.values():
            assert table.occupancy == 0

    def test_interleaved_lifecycles(self):
        """Overlapping lifetimes: A starts, B starts, A stops, C starts..."""
        ctl, dataplane = Controller.with_simulator()
        live = []
        order = ["cache", "lb", "cms", "bf", "sumax", "calc", "l3route"]
        for i, name in enumerate(order * 3):
            live.append(ctl.deploy(PROGRAMS[name].source))
            if i % 2:
                ctl.revoke(live.pop(0))
        names = [r.name for r in ctl.running_programs()]
        assert len(names) == len(live)
        while live:
            ctl.revoke(live.pop())
        assert ctl.running_programs() == []

    def test_program_ids_never_reused(self):
        ctl, _ = Controller.with_simulator()
        seen = set()
        for _ in range(20):
            handle = ctl.deploy(PROGRAMS["l3route"].source)
            assert handle.program_id not in seen
            seen.add(handle.program_id)
            ctl.revoke(handle)


class TestMixedFeatureWorkflow:
    def test_objective_memory_elastic_combo(self):
        """All deploy-time knobs together: f3 objective, 2 KB memory,
        8 elastic case blocks."""
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(
            source_with_memory("cache", 512),
            options=CompileOptions(objective=f3(), elastic_cases=8, elastic_branch=0),
        )
        record = ctl.manager.get(handle.program_id)
        assert record.memory["mem1"].size == 512
        branch_entries = [
            e for e in record.batch.body_entries if e.action == "set_branch"
        ]
        assert len(branch_entries) == 8
        # Still functionally a cache for the base key.
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=4))
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.verdict is Verdict.REFLECT

    def test_monitoring_through_full_lifecycle(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["cms"].source)
        for i in range(10):
            dataplane.process(make_udp(i + 1, 2, 3, 4))
        stats = ctl.program_stats(handle)
        assert stats["matched_packets"] == 10
        snapshot = ctl.snapshot_memory(handle, "cms_row1")
        assert sum(snapshot) == 10
        ctl.revoke(handle)
        with pytest.raises(Exception):
            ctl.program_stats(handle)

    def test_incremental_plus_monitoring(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["cache"].source)
        ctl.add_case(
            handle,
            [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 0x77, 0xFFFFFFFF)],
            template_case=0,
            loadi_values=[32],
        )
        ctl.write_memory(handle, "mem1", 32, 9)
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x77))
        assert hit.verdict is Verdict.REFLECT
        # program_stats counts only the static batch's entries, but the
        # init hit still registers the packet as owned.
        assert ctl.program_stats(handle)["matched_packets"] == 1


class TestCrossSubstrateConsistency:
    def test_same_program_same_behaviour_on_chain_and_single(self):
        """The cache behaves identically on both deployment substrates."""

        def exercise(controller, plane):
            controller.deploy(PROGRAMS["cache"].source)
            results = []
            plane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=31))
            for key in (0x8888, 0x9999):
                result = plane.process(make_cache(1, 2, op=NC_READ, key=key))
                results.append(
                    (
                        result.verdict,
                        result.egress_port,
                        result.packet.get_field("hdr.nc.val"),
                    )
                )
            return results

        single = exercise(*Controller.with_simulator())
        chained = exercise(*Controller.with_chain(2))
        assert single == chained

    def test_clock_monotone_across_operations(self):
        ctl, _ = Controller.with_simulator()
        stamps = [ctl.clock.now]
        handle = ctl.deploy(PROGRAMS["cache"].source)
        stamps.append(ctl.clock.now)
        ctl.write_memory(handle, "mem1", 0, 1)
        stamps.append(ctl.clock.now)
        ctl.add_case(
            handle,
            [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 0x1, 0xFFFFFFFF)],
            loadi_values=[1],
        )
        stamps.append(ctl.clock.now)
        ctl.revoke(handle)
        stamps.append(ctl.clock.now)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)
