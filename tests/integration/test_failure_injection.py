"""Failure injection: southbound faults mid-update must leave no residue."""

import pytest

from repro.controlplane import Controller
from repro.dataplane.runpro import P4runproDataPlane
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, make_cache
from repro.rmt.pipeline import Verdict


class FlakyBinding:
    """Wraps a real data plane; fails the Nth insert with a transient error."""

    def __init__(self, inner: P4runproDataPlane, fail_at: int):
        self.inner = inner
        self.fail_at = fail_at
        self.inserts = 0

    def insert_entry(self, entry):
        self.inserts += 1
        if self.inserts == self.fail_at:
            raise ConnectionError("simulated southbound RPC failure")
        return self.inner.insert_entry(entry)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def flaky_controller(fail_at: int):
    inner = P4runproDataPlane()
    binding = FlakyBinding(inner, fail_at)
    return Controller(binding), inner, binding


class TestInstallRollback:
    @pytest.mark.parametrize("fail_at", [1, 5, 10, 17])
    def test_failed_install_leaves_clean_dataplane(self, fail_at):
        ctl, inner, _ = flaky_controller(fail_at)
        with pytest.raises(ConnectionError):
            ctl.deploy(PROGRAMS["cache"].source)
        for name, table in inner.tables.items():
            assert table.occupancy == 0, name

    def test_failed_install_releases_reservations(self):
        ctl, _, _ = flaky_controller(fail_at=5)
        util_before = ctl.utilization()
        with pytest.raises(ConnectionError):
            ctl.deploy(PROGRAMS["cache"].source)
        assert ctl.utilization() == util_before
        assert ctl.running_programs() == []

    def test_failed_install_releases_memory(self):
        ctl, _, _ = flaky_controller(fail_at=3)
        with pytest.raises(ConnectionError):
            ctl.deploy(PROGRAMS["lb"].source)
        # Both pools' buckets must be reusable.
        assert ctl.manager.memory_utilization() == 0.0

    def test_redeploy_after_failure_succeeds(self):
        ctl, inner, binding = flaky_controller(fail_at=7)
        with pytest.raises(ConnectionError):
            ctl.deploy(PROGRAMS["cache"].source)
        binding.fail_at = -1  # heal the link
        handle = ctl.deploy(PROGRAMS["cache"].source)
        result = inner.process(make_cache(1, 2, op=NC_READ, key=0x1234))
        assert result.verdict is Verdict.FORWARD
        assert result.egress_port == 32

    def test_survivors_unaffected_by_failed_install(self):
        ctl, inner, binding = flaky_controller(fail_at=-1)
        ctl.deploy(PROGRAMS["cache"].source)
        binding.inserts = 0
        binding.fail_at = 4
        with pytest.raises(ConnectionError):
            ctl.deploy(PROGRAMS["lb"].source)
        # The first program keeps working.
        inner.process(make_cache(1, 2, op=2, key=0x8888, value=5))
        hit = inner.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.verdict is Verdict.REFLECT
        assert [r.name for r in ctl.running_programs()] == ["cache"]

    def test_consistency_probe_never_saw_half_program(self):
        """During the failed install, a probe between inserts must see
        'program absent' behaviour (init entry is installed last)."""
        inner = P4runproDataPlane()

        class ProbingBinding(FlakyBinding):
            def insert_entry(self, entry):
                result = inner.process(make_cache(1, 2, op=NC_READ, key=0x8888))
                assert result.verdict is Verdict.FORWARD
                assert result.egress_port == 0  # default path: no program
                return super().insert_entry(entry)

        binding = ProbingBinding(inner, fail_at=12)
        ctl = Controller(binding)
        with pytest.raises(ConnectionError):
            ctl.deploy(PROGRAMS["cache"].source)
