"""The generality boundary, as executable documentation (paper §7).

The paper is explicit about what P4runpro cannot express: shift
operations (VLIW constraint), and ATP-style aggregation ("we failed to
implement ATP using P4runpro primitives due to its complicated logic").
These tests pin those limits down so a regression that silently *breaks*
them — or an extension that *lifts* them — shows up.
"""

import pytest

from repro.compiler import compile_source
from repro.compiler.target import TargetSpec
from repro.lang.errors import AllocationError, ParseError
from repro.lang.parser import parse_source
from repro.lang.primitives import REGISTRY


class TestMissingOperations:
    def test_no_shift_primitives(self):
        """§7: "we cannot support shift operations due to the VLIW
        constraint"."""
        for name in ("SHL", "SHR", "LSHIFT", "RSHIFT", "SLL", "SRL"):
            assert name not in REGISTRY

    def test_shift_in_source_rejected(self):
        with pytest.raises(ParseError, match="unknown primitive"):
            parse_source("program p(<hdr.ipv4.ttl, 0, 0x0>) { SHL(har, 2); }")

    def test_no_multiplication_or_division(self):
        for name in ("MUL", "DIV", "MOD"):
            assert name not in REGISTRY


def atp_style_source(values_per_packet: int) -> str:
    """An ATP-shaped program: aggregate ``values_per_packet`` gradient
    words carried in ONE packet into per-slot memory.  Every value needs
    its own extract + address load + SALU access chain, and P4runpro's
    one-memory-op-per-RPB execution makes the depth grow linearly — the
    "complicated logic" that defeated the paper's authors."""
    decls = "@ atp_slots 1024\n"
    body = []
    for index in range(values_per_packet):
        body.append(f"LOADI(mar, {index});")
        body.append("EXTRACT(hdr.nc.val, sar);")  # stand-in for value i
        body.append("MEMADD(atp_slots);")
    return (
        decls
        + "program atp(<hdr.udp.dst_port, 9999, 0xffff>) { "
        + " ".join(body)
        + " }"
    )


class TestATPBoundary:
    def test_small_aggregation_fits(self):
        """A few values per packet compile fine (this is SwitchML-scale)."""
        compiled = compile_source(atp_style_source(2))
        assert compiled.allocation.max_iteration <= 1

    def test_atp_scale_infeasible_at_default_r(self):
        """ATP aggregates tens of values per packet: each revisit of the
        slot memory costs a recirculation iteration, so the default R=1
        cannot host it — the paper's failed-ATP observation, measured."""
        with pytest.raises(AllocationError):
            compile_source(atp_style_source(8))

    def test_even_generous_recirculation_runs_out(self):
        """Raising R helps linearly, but ATP-scale (32 values) would need
        R≈31 — far past any sane recirculation budget."""
        spec = TargetSpec(max_recirculations=4)
        compiled = compile_source(atp_style_source(5), spec=spec)
        assert compiled.allocation.max_iteration == 4  # one pass per value
        with pytest.raises(AllocationError):
            compile_source(atp_style_source(8), spec=spec)

    def test_depth_grows_linearly_with_values(self):
        depths = {
            n: compile_source(
                atp_style_source(n), spec=TargetSpec(max_recirculations=6)
            ).problem.num_depths
            for n in (1, 2, 3)
        }
        assert depths[2] - depths[1] == depths[3] - depths[2] == 4

    def test_chain_does_not_rescue_atp(self):
        """Chains reject memory revisits outright (each hop has its own
        arrays), so ATP is out of reach there too."""
        from repro.compiler.target import ChainSpec

        with pytest.raises(AllocationError):
            compile_source(atp_style_source(3), spec=ChainSpec(num_switches=4))


class TestRangeMatchBoundary:
    def test_branch_is_ternary_not_range(self):
        """§7: range match supports only 20-bit keys, so BRANCH uses
        ternary matching — inequality tests must go through SGT/SLT."""
        from repro.programs import PROGRAMS

        compiled = compile_source(PROGRAMS["cache"].source)
        batch = compiled.emit_entries(
            TargetSpec(),
            1,
            {"mem1": (compiled.allocation.memory_placement["mem1"], 0)},
        )
        for entry in batch.install_order():
            for key in entry.keys:
                assert hasattr(key, "mask")  # every key is value/mask ternary
