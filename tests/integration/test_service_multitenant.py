"""Acceptance integration test for the multi-tenant control service.

Four-plus concurrent tenants hammer one service over real TCP:

* quotas are enforced — the over-quota tenant gets a structured
  ``QUOTA_EXCEEDED`` while everyone else proceeds untouched;
* injected southbound faults (every k-th entry update fails transiently)
  are absorbed by the retry layer — and when a burst exhausts retries,
  the rollback leaves every other tenant's program intact;
* replaying the audit log against a fresh controller reproduces the
  resource manager's final state fingerprint byte-for-byte.
"""

import asyncio

import pytest

from repro.controlplane import Controller, FaultInjectingBinding, FaultPlan
from repro.dataplane.runpro import P4runproDataPlane
from repro.programs import PROGRAMS
from repro.service import (
    AsyncServiceClient,
    ControlService,
    ServerThread,
    ServiceError,
    ServiceServer,
    TenantQuota,
    TenantRegistry,
    replay,
)
from repro.service.robustness import RetryPolicy

CACHE = PROGRAMS["cache"].source
LB = PROGRAMS["lb"].source
HH = PROGRAMS["hh"].source

TENANTS = ["alice", "bob", "carol", "dave"]
SOURCES = {"alice": CACHE, "bob": LB, "carol": HH, "dave": CACHE}


def make_service(every_k=0, quota=None):
    inner = P4runproDataPlane()
    plan = FaultPlan(every_k=every_k, ops=frozenset({"insert", "delete"}))
    controller = Controller(FaultInjectingBinding(inner, plan))
    service = ControlService(
        controller,
        inner,
        tenants=TenantRegistry(quota or TenantQuota(max_programs=2)),
        retry_policy=RetryPolicy(max_attempts=5),
        retry_sleep=lambda s: None,  # simulated link: no wall-clock waits
    )
    return service, plan


async def tenant_churn(port, tenant, source, rounds):
    """One tenant's life: deploy, poke memory/stats, revoke; repeat."""
    outcomes = []
    async with AsyncServiceClient(port=port, tenant=tenant) as client:
        for _ in range(rounds):
            try:
                info = await client.call("deploy", {"source": source})
            except ServiceError as exc:
                outcomes.append(("deploy-error", exc.code.value))
                continue
            pid = info["program_id"]
            listing = await client.call("list")
            assert any(p["program_id"] == pid for p in listing["programs"])
            await client.call("stats", {"program_id": pid})
            await client.call("revoke", {"program_id": pid})
            outcomes.append(("ok", pid))
    return outcomes


class TestConcurrentTenants:
    def test_four_tenants_churn_with_faults_and_replay(self):
        """The acceptance scenario, end to end over TCP."""
        service, plan = make_service(every_k=7)  # every 7th update fails once

        async def scenario():
            server = ServiceServer(service)
            await server.start()
            try:
                results = await asyncio.gather(
                    *(
                        tenant_churn(server.port, tenant, SOURCES[tenant], rounds=3)
                        for tenant in TENANTS
                    )
                )
            finally:
                await server.stop()
            return results

        results = asyncio.run(scenario())
        # every tenant completed every round despite the injected faults
        for tenant, outcomes in zip(TENANTS, results):
            assert all(kind == "ok" for kind, _ in outcomes), (tenant, outcomes)
        assert plan.faults > 0  # the fault plan really fired
        retry_stats = service.retrying.stats
        assert retry_stats.retries >= plan.faults
        assert retry_stats.gave_up == 0

        # the audit log replays to the exact final manager state
        fresh = replay(service.audit)
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )
        # the journal is order-consistent: one record per write, seq strictly
        # increasing, every record attributed to a real tenant
        records = service.audit.records()
        assert [r.seq for r in records] == list(range(1, len(records) + 1))
        assert {r.tenant for r in records} <= set(TENANTS)
        assert len([r for r in records if r.method == "deploy" and r.ok]) == 12

    def test_quota_rejection_leaves_others_unaffected(self):
        service, _ = make_service(quota=TenantQuota(max_programs=1))

        async def scenario():
            server = ServiceServer(service)
            await server.start()
            try:
                async with AsyncServiceClient(port=server.port, tenant="alice") as alice, \
                        AsyncServiceClient(port=server.port, tenant="bob") as bob:
                    first = await alice.call("deploy", {"source": CACHE})
                    # alice is now at quota; her second deploy must fail
                    # with a structured error ...
                    with pytest.raises(ServiceError) as exc:
                        await alice.call("deploy", {"source": LB})
                    assert exc.value.code.value == "QUOTA_EXCEEDED"
                    # ... while bob deploys concurrently without trouble
                    second = await bob.call("deploy", {"source": LB})
                    mine = await alice.call("list")
                    assert [p["program_id"] for p in mine["programs"]] == [
                        first["program_id"]
                    ]
                    theirs = await bob.call("list")
                    assert [p["program_id"] for p in theirs["programs"]] == [
                        second["program_id"]
                    ]
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_exhausted_retries_roll_back_without_corrupting_others(self):
        """A hard southbound outage mid-deploy: the victim's deploy fails
        cleanly (id burned), the survivors keep running, and the audit log
        still replays to the exact final state."""
        service, plan = make_service(every_k=0)

        async def scenario():
            server = ServiceServer(service)
            await server.start()
            try:
                async with AsyncServiceClient(port=server.port, tenant="alice") as alice, \
                        AsyncServiceClient(port=server.port, tenant="bob") as bob:
                    await alice.call("deploy", {"source": CACHE})
                    # outage: every update fails, retries cannot heal
                    plan.every_k = 1
                    with pytest.raises(ServiceError) as exc:
                        await bob.call("deploy", {"source": LB})
                    assert exc.value.code.value == "SOUTHBOUND_FAILURE"
                    plan.every_k = 0  # link heals
                    info = await bob.call("deploy", {"source": LB})
                    # the failed attempt burned program id 2
                    assert info["program_id"] == 3
                    mine = await alice.call("list")
                    assert len(mine["programs"]) == 1
            finally:
                await server.stop()

        asyncio.run(scenario())
        assert service.retrying.stats.gave_up >= 1
        fresh = replay(service.audit)
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )

    def test_thread_transport_matches_async(self):
        """Same scenario through the ServerThread + sync-client stack."""
        from repro.service import ServiceClient

        service, _ = make_service()
        with ServerThread(service) as server:
            clients = [
                ServiceClient(port=server.port, tenant=tenant) for tenant in TENANTS
            ]
            pids = [
                client.deploy(SOURCES[client.tenant])["program_id"]
                for client in clients
            ]
            assert len(set(pids)) == 4
            for client, pid in zip(clients, pids):
                client.revoke(pid)
                client.close()
        fresh = replay(service.audit)
        assert (
            fresh.manager.state_fingerprint()
            == service.controller.manager.state_fingerprint()
        )
