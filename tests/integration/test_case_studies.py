"""Reduced-scale versions of the paper's four case studies (§6.4, Fig. 13).

The full-scale runs live in ``benchmarks/bench_fig13_case_studies.py``;
these tests validate the same pipelines at a size suitable for CI.
"""

import statistics

import pytest

from repro.analysis.metrics import precision_recall
from repro.baselines.conventional import ConventionalWorkflow
from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.pipeline import Verdict
from repro.traffic import (
    CacheTrace,
    CacheTraceConfig,
    CampusTrace,
    ReplayEngine,
    ReplayEvent,
    TraceConfig,
    load_imbalance,
    make_population,
)


class TestImpactsOnTraffic:
    """Fig. 13(a): runtime deploy/delete churn must not move the RX rate."""

    def test_rx_stable_under_churn(self):
        ctl, dataplane = Controller.with_simulator()
        trace = CampusTrace(
            make_population(seed=3),
            TraceConfig(duration_s=3.0, samples_per_window=20, tcp_burst_probability=0.0),
        )
        deployed = []
        events = []
        # From t=1s, deploy or delete a program every 0.25 s with filters
        # independent of the traffic (high UDP ports).
        programs = ["cache", "calc", "dqacc", "cms", "bf", "sumax"]

        def make_action(name):
            def action():
                if deployed and len(deployed) % 3 == 2:
                    ctl.revoke(deployed.pop(0))
                else:
                    deployed.append(ctl.deploy(PROGRAMS[name].source))

            return action

        for k, name in enumerate(programs):
            events.append(ReplayEvent(at_s=1.0 + 0.25 * k, action=make_action(name)))
        stats = ReplayEngine(dataplane).run(trace.windows(), events)
        rx = [s.rx_mbps for s in stats]
        # Every window passes its full offered load.
        for s in stats:
            assert s.rx_mbps == pytest.approx(s.offered_mbps)
        assert statistics.pstdev(rx) < 1e-6

    def test_conventional_workflow_blacks_out(self):
        """The contrast curve: a reprovision stops traffic for seconds."""
        ctl, dataplane = Controller.with_simulator()
        workflow = ConventionalWorkflow()
        workflow.deploy("cache", p4_loc=77, at_s=1.0)
        trace = CampusTrace(
            make_population(seed=3), TraceConfig(duration_s=3.0, samples_per_window=5)
        )
        engine = ReplayEngine(
            dataplane, blackout=lambda t: not workflow.traffic_available(t)
        )
        stats = engine.run(trace.windows())
        blacked = [s for s in stats if s.rx_mbps == 0]
        assert blacked  # the blackout is visible
        assert all(1.0 <= s.start_s < 8.0 for s in blacked)


class TestInNetworkCacheStudy:
    """Fig. 13(b): deploy at t; hit traffic reflects, misses forward."""

    def test_hit_rate_visible_in_rx_split(self):
        ctl, dataplane = Controller.with_simulator()
        trace = CacheTrace(CacheTraceConfig(duration_s=2.0, samples_per_window=30))
        handle_box = {}

        def deploy():
            handle = ctl.deploy(PROGRAMS["cache"].source)
            ctl.write_memory(handle, "mem1", 128, 0xCAFE)
            handle_box["h"] = handle

        stats = ReplayEngine(dataplane).run(
            trace.windows(), [ReplayEvent(at_s=0.5, action=deploy)]
        )
        before = [s for s in stats if s.start_s < 0.5]
        after = [s for s in stats if s.start_s >= 0.7]
        # Before deployment everything is forwarded (rx == offered).
        for s in before:
            assert s.reflected_mbps == 0
        # After: ~60% reflected (hits), ~40% forwarded to the server.
        reflected_share = statistics.mean(
            s.reflected_mbps / s.offered_mbps for s in after
        )
        assert reflected_share == pytest.approx(0.6, abs=0.08)

    def test_p4runpro_function_starts_faster_than_conventional(self):
        ctl, _ = Controller.with_simulator()
        t0 = ctl.clock.now
        ctl.deploy(PROGRAMS["cache"].source)
        runpro_delay_s = ctl.clock.now - t0
        conventional = ConventionalWorkflow()
        event = conventional.deploy("cache", p4_loc=77, at_s=0.0)
        assert runpro_delay_s < 0.1
        assert event.blackout_s > 10 * runpro_delay_s


class TestLoadBalancerStudy:
    """Fig. 13(c): imbalance settles near zero after deployment."""

    def test_imbalance_low_after_deploy(self):
        ctl, dataplane = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["lb"].source)
        for addr in range(256):
            ctl.write_memory(handle, "port_pool", addr, addr % 2)
            ctl.write_memory(handle, "dip_pool", addr, 0x0A00B000 + addr % 2)
        population = make_population(
            num_flows=2048, heavy_flows=0, seed=5, subnet=0x0A000000
        )
        trace = CampusTrace(
            population, TraceConfig(duration_s=2.0, samples_per_window=60)
        )
        stats = ReplayEngine(dataplane).run(trace.windows())
        imbalance = statistics.mean(load_imbalance(s, 0, 1) for s in stats)
        assert imbalance < 0.25  # sampled traffic: near-balanced


class TestHeavyHitterStudy:
    """Fig. 13(d): F1 reaches 1.0 once heavy flows cross the threshold."""

    THRESHOLD = 32

    def test_f1_reaches_one(self):
        ctl, dataplane = Controller.with_simulator()
        from repro.programs import source_with_memory

        # 2048-bucket rows keep CMS collision noise negligible at this
        # flow count; the threshold is lowered for CI scale.
        source = (
            source_with_memory("hh", 2048)
            .replace("LOADI(har, 1024)", f"LOADI(har, {self.THRESHOLD})")
            .replace("case(<har, 1024, 0xffffffff>)", f"case(<har, {self.THRESHOLD}, 0xffffffff>)")
        )
        ctl.deploy(source)
        population = make_population(
            num_flows=256, heavy_flows=8, heavy_share=0.7, seed=6
        )
        heavy_truth = {f.five_tuple for f in population.heavy_flows()}
        detected = set()
        sent: dict[tuple, int] = {}
        for flow in population.sample(6000):
            packet_count = sent.get(flow.five_tuple, 0) + 1
            sent[flow.five_tuple] = packet_count
            from repro.rmt.packet import make_tcp, make_udp

            maker = make_udp if flow.proto == 17 else make_tcp
            pkt = maker(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port)
            result = dataplane.process(pkt)
            if result.verdict is Verdict.TO_CPU:
                detected.add(pkt.five_tuple())
        # Ground truth at this scale: flows that actually crossed the
        # threshold in the sampled stream.
        crossed = {t for t, n in sent.items() if n >= self.THRESHOLD}
        precision, recall, f1 = precision_recall(detected, crossed)
        assert f1 > 0.95
        # Every population-level heavy flow crossed and was detected.
        assert heavy_truth <= crossed
        assert heavy_truth <= detected
