"""Direct memory mapping tests (SwitchVM-style fragments, paper §7)."""

import pytest

from repro.compiler import CompileOptions
from repro.controlplane import Controller
from repro.controlplane.incremental import IncrementalUpdateError
from repro.programs import PROGRAMS, source_with_memory
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_udp
from repro.rmt.pipeline import Verdict

DIRECT = CompileOptions(direct_memory=True)


def fragment_controller(hole_buckets=192):
    """A controller whose RPB memories are pre-fragmented: several small
    placeholder blocks split every free list so no large contiguous run
    remains."""
    ctl, dataplane = Controller.with_simulator()
    # Chew the contiguous space: leave free runs of `hole_buckets` between
    # persistent 64-bucket pins on every RPB.
    for phys in range(1, 23):
        freelist = ctl.manager._freelists[phys]
        cursor = 0
        while cursor + hole_buckets + 64 <= freelist.capacity:
            freelist.allocate(hole_buckets)  # will be freed -> hole
            freelist.allocate(64)  # pin stays
            cursor += hole_buckets + 64
        for base, size in list(freelist._allocated.items()):
            if size == hole_buckets:
                freelist.free(base)
    return ctl, dataplane


class TestFragmentedDeployment:
    def test_contiguous_deploy_fails_on_fragmented_chip(self):
        ctl, _ = fragment_controller(hole_buckets=192)
        # cache wants 256 contiguous buckets; the largest hole is 192.
        from repro.lang.errors import AllocationError

        with pytest.raises(AllocationError):
            ctl.deploy(PROGRAMS["cache"].source)

    def test_direct_memory_deploys_on_fragmented_chip(self):
        ctl, dataplane = fragment_controller(hole_buckets=192)
        handle = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        record = ctl.manager.get(handle.program_id)
        assert len(record.memory["mem1"].fragments) >= 2

    def test_fragmented_cache_serves_traffic(self):
        ctl, dataplane = fragment_controller(hole_buckets=192)
        ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=77))
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.verdict is Verdict.REFLECT
        assert hit.packet.get_field("hdr.nc.val") == 77

    def test_hash_addressed_program_spans_fragments(self):
        """cms hashes across its whole 1,024-bucket row: every virtual
        bucket must translate to the right fragment."""
        ctl, dataplane = fragment_controller(hole_buckets=512)
        handle = ctl.deploy(source_with_memory("cms", 1024), options=DIRECT)
        record = ctl.manager.get(handle.program_id)
        assert any(len(a.fragments) >= 2 for a in record.memory.values())
        for i in range(200):
            dataplane.process(make_udp(i + 1, 2, 3, 4))
        snapshot = ctl.snapshot_memory(handle, "cms_row1")
        assert sum(snapshot) == 200  # every increment landed somewhere valid

    def test_fragment_translation_bijective(self):
        ctl, _ = fragment_controller(hole_buckets=192)
        handle = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        record = ctl.manager.get(handle.program_id)
        alloc = record.memory["mem1"]
        physical = {alloc.translate(v) for v in range(alloc.size)}
        assert len(physical) == alloc.size  # no aliasing

    def test_control_plane_rw_across_fragments(self):
        ctl, _ = fragment_controller(hole_buckets=192)
        handle = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        record = ctl.manager.get(handle.program_id)
        boundary = record.memory["mem1"].fragments[0][1]
        ctl.write_memory(handle, "mem1", boundary - 1, 1)
        ctl.write_memory(handle, "mem1", boundary, 2)  # second fragment
        assert ctl.read_memory(handle, "mem1", boundary - 1) == 1
        assert ctl.read_memory(handle, "mem1", boundary) == 2


class TestFragmentedLifecycle:
    def test_revoke_frees_and_zeroes_all_fragments(self):
        ctl, dataplane = fragment_controller(hole_buckets=192)
        handle = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        util_with = ctl.manager.memory_utilization()
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=5))
        ctl.revoke(handle)
        assert ctl.manager.memory_utilization() < util_with
        again = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.packet.get_field("hdr.nc.val") == 0  # zeroed

    def test_extra_offset_entries_accounted(self):
        ctl, _ = fragment_controller(hole_buckets=192)
        handle = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        record = ctl.manager.get(handle.program_id)
        offsets = [e for e in record.batch.body_entries if e.action == "OFFSET"]
        fragments = len(record.memory["mem1"].fragments)
        # Two OFFSET ops (read + write branches) x one entry per fragment.
        assert len(offsets) == 2 * fragments

    def test_incremental_rejects_multi_fragment_memory(self):
        ctl, _ = fragment_controller(hole_buckets=192)
        handle = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        with pytest.raises(IncrementalUpdateError, match="direct-mapped"):
            ctl.add_case(
                handle,
                [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 0x1, 0xFFFFFFFF)],
                loadi_values=[1],
            )

    def test_contiguous_when_space_allows(self):
        """Direct mode still prefers one fragment when a run fits."""
        ctl, _ = Controller.with_simulator()
        handle = ctl.deploy(PROGRAMS["cache"].source, options=DIRECT)
        record = ctl.manager.get(handle.program_id)
        assert len(record.memory["mem1"].fragments) == 1
