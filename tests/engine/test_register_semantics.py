"""Register-semantics classification: the engine's placement oracle.

The sharded engine may only run a program data-parallel when every memory
op's bucket updates commute *and* its PHV output is unobserved; these
tests pin the classification of all 15 library programs and the bucket
merge math itself.
"""

import pytest

from repro.compiler.compiler import compile_source
from repro.compiler.register_semantics import (
    MERGEABLE,
    PINNED,
    STATELESS,
    classify,
)
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS
from repro.rmt.salu import MERGE_SEMANTICS, RegisterArray, merge_buckets

EXPECTED_TIERS = {
    # read-modify-write with observed outputs, or blind MEMWRITEs
    "cache": PINNED,
    "hh": PINNED,
    "nc": PINNED,
    "dqacc": PINNED,
    "firewall": PINNED,
    "hll": PINNED,
    # no memory ops at all
    "l2fwd": STATELESS,
    "l3route": STATELESS,
    "tunnel": STATELESS,
    "calc": STATELESS,
    "ecn": STATELESS,
    # commutative, unobserved updates
    "cms": MERGEABLE,
    "bf": MERGEABLE,
    "sumax": MERGEABLE,
    # MEMREADs over control-plane-written pools: replicas never diverge
    "lb": MERGEABLE,
}


def semantics_of(name):
    return compile_source(PROGRAMS[name].source).register_semantics()


def test_every_library_program_classifies():
    assert set(EXPECTED_TIERS) == set(ALL_PROGRAM_NAMES)
    for name, tier in EXPECTED_TIERS.items():
        assert semantics_of(name).tier == tier, name


def test_merge_kinds_match_salu_ops():
    cms = semantics_of("cms")
    assert cms.memories == {"cms_row1": "sum", "cms_row2": "sum"}
    assert semantics_of("bf").memories == {"bf_row1": "or", "bf_row2": "or"}
    assert semantics_of("sumax").memories == {
        "sumax_row1": "max",
        "sumax_row2": "max",
    }
    # lb only MEMREADs its pools — safe to replicate, nothing to fold.
    assert set(semantics_of("lb").memories.values()) == {"read"}


def test_observed_output_pins_commutative_op():
    # MEMADD is commutative, but hh MINs its running count against a
    # threshold — the partial per-shard count would change behaviour.
    hh = semantics_of("hh")
    assert hh.tier == PINNED
    add_ops = [op for op in hh.ops if op.op == "MEMADD"]
    assert add_ops and all(op.observed for op in add_ops)
    assert all(op.merge_kind is None for op in add_ops)


def test_unobserved_commutative_op_is_mergeable():
    cms = semantics_of("cms")
    assert all(not op.observed for op in cms.ops)
    assert all(op.merge_kind == "sum" for op in cms.ops)


def test_mixed_kinds_on_one_block_pin():
    # cache's mem1 sees MEMREAD and MEMWRITE: merge impossible.
    cache = semantics_of("cache")
    assert cache.memories == {"mem1": None}


def test_memwrite_never_mergeable():
    assert MERGE_SEMANTICS["MEMWRITE"] is None


def test_classify_source_without_memory_is_stateless():
    source = """
    program p(<hdr.udp.dst_port, 9, 0xffff>) {
        LOADI(har, 1);
        FORWARD(2);
    }
    """
    assert compile_source(source).register_semantics().tier == STATELESS
    assert classify(compile_source(source).ir).ops == ()


@pytest.mark.parametrize(
    "kind,op",
    [("sum", "MEMADD"), ("or", "MEMOR"), ("and", "MEMAND"), ("max", "MEMMAX")],
)
def test_merge_buckets_reproduces_sequential_state(kind, op):
    """Splitting an operand stream across shards and merging must equal
    running the whole stream on one array."""
    operands = [3, 9, 250, 7, 1, 0x80, 0x41, 64, 2, 5, 17, 0xFF]
    base = 0x2C
    sequential = RegisterArray("seq", 1)
    sequential.write(0, base)
    for operand in operands:
        sequential.execute(op, 0, operand)

    shards = [RegisterArray(f"s{i}", 1) for i in range(3)]
    for shard in shards:
        shard.write(0, base)
    for i, operand in enumerate(operands):
        shards[i % 3].execute(op, 0, operand)

    merged = merge_buckets(kind, base, [s.read(0) for s in shards])
    assert merged == sequential.read(0)


def test_merge_buckets_sum_wraps_and_cancels():
    # deltas +5 and -5 (mod 2^32) cancel to the base
    base = 10
    shard_values = [(base + 5) & 0xFFFFFFFF, (base - 5) & 0xFFFFFFFF]
    assert merge_buckets("sum", base, shard_values) == base
    # wraparound survives the fold
    assert merge_buckets("sum", 0xFFFFFFFF, [0, 0xFFFFFFFF]) == 0


def test_merge_buckets_read_keeps_base():
    assert merge_buckets("read", 42, [42, 42]) == 42


def test_merge_buckets_unknown_kind():
    with pytest.raises(ValueError):
        merge_buckets("xor", 0, [1])
