"""Unit tests for the shared-memory ring transport (engine/shm.py).

Covers the SPSC ring itself (wrap-around, full/empty, oversized
records), the wire-native packet/result codec, the engine-level fallback
taxonomy (pipe fallback on ring-full and with shm disabled, oversized
chunks, empty batches), the southbound frame-size guard, and worker
death detected mid-ring instead of hanging the coordinator.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.engine import (
    EngineError,
    FrameTooLargeError,
    ShardedEngine,
    ShmRing,
    send_frame,
)
from repro.engine import shm as shm_codec
from repro.engine.shm import RingError
from repro.programs import PROGRAMS
from repro.rmt.packet import Packet, make_cache, make_udp
from repro.rmt.pipeline import SwitchResult, Verdict


def traffic(total: int) -> list:
    return [
        make_cache(i % 16 + 1, 2, op=1, key=i % 9)
        if i % 2
        else make_udp(i % 16 + 1, 2, 5000 + i % 64, 80)
        for i in range(total)
    ]


# -- the ring -----------------------------------------------------------------


class TestShmRing:
    def test_roundtrip_and_fifo(self):
        ring = ShmRing.create(4096)
        try:
            payloads = [bytes([i]) * (i + 1) for i in range(10)]
            for p in payloads:
                assert ring.try_push(p)
            assert [ring.try_pop() for _ in payloads] == payloads
            assert ring.try_pop() is None
        finally:
            ring.close()
            ring.unlink()

    def test_wrap_around_many_sizes(self):
        """Records of varying size cycle through the wrap point; every
        payload must come back bit-identical and in order."""
        ring = ShmRing.create(2048)
        try:
            seq = [os.urandom(n % 700 + 1) for n in range(500)]
            out, i = [], 0
            while len(out) < len(seq):
                while i < len(seq) and ring.try_push(seq[i]):
                    i += 1
                got = ring.try_pop()
                assert got is not None, "ring empty while pushes pending"
                out.append(got)
            assert out == seq
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_refuses_push(self):
        ring = ShmRing.create(512)
        try:
            pushed = 0
            while ring.try_push(b"x" * 64):
                pushed += 1
            assert pushed > 0
            assert not ring.try_push(b"x" * 64)
            # Draining one record frees space again.
            assert ring.try_pop() == b"x" * 64
            assert ring.try_push(b"y" * 64)
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_record_raises(self):
        ring = ShmRing.create(512)
        try:
            with pytest.raises(RingError, match="exceeds ring max"):
                ring.try_push(b"x" * 400)
        finally:
            ring.close()
            ring.unlink()

    def test_attach_sees_producer_records(self):
        ring = ShmRing.create(4096)
        try:
            other = ShmRing.attach(ring.name)
            assert other.capacity == ring.capacity
            assert ring.try_push(b"hello")
            assert other.try_pop() == b"hello"
            other.close()
        finally:
            ring.close()
            ring.unlink()


# -- the codec ----------------------------------------------------------------


class TestPacketCodec:
    def roundtrip(self, packets):
        enc, dec = shm_codec.PacketEncoder(), shm_codec.PacketDecoder()
        blob, extra = enc.encode_packets(packets)
        payload = shm_codec.encode_chunk(enc.take_defs(), blob, extra)
        tag, defs, blob, extra = shm_codec.decode_ring_payload(payload)
        assert tag == "R"
        dec.add_defs(defs)
        return dec.decode_packets(blob, extra)

    def test_packets_roundtrip(self):
        packets = traffic(20) + [Packet(), make_cache(1, 2, op=2, key=3, value=9)]
        back_all = self.roundtrip(packets)
        assert len(back_all) == len(packets)
        for orig, back in zip(packets, back_all):
            assert back.headers == orig.headers
            assert back.size == orig.size
            assert back.ts == orig.ts
            assert back.ingress_port == orig.ingress_port
            assert back.queue_depth == orig.queue_depth

    def test_structural_fallback_for_exotic_values(self):
        """Field values the packed-u64 layout cannot express still travel
        (structural fallback records interleaved with fast ones)."""
        weird = Packet(headers={"x": {"neg": -7, "big": 1 << 70}})
        enc = shm_codec.PacketEncoder()
        _blob, extra = enc.encode_packets([weird])
        assert len(extra) == 1
        mixed = [make_udp(1, 2, 3, 4), weird, make_udp(5, 6, 7, 8)]
        back = self.roundtrip(mixed)
        assert back[1].headers == {"x": {"neg": -7, "big": 1 << 70}}
        assert back[0].headers == mixed[0].headers
        assert back[2].headers == mixed[2].headers

    def test_non_float_ts_takes_structural_fallback(self):
        pkt = make_udp(1, 2, 3, 4)
        pkt.ts = 7  # int, would be coerced to 7.0 by the packed double
        back = self.roundtrip([pkt])[0]
        assert back.ts == 7 and isinstance(back.ts, int)

    def test_composition_defs_ship_once(self):
        enc = shm_codec.PacketEncoder()
        enc.encode_packets([make_udp(1, 2, 3, 4)])
        assert len(enc.take_defs()) == 1
        enc.encode_packets([make_udp(5, 6, 7, 8)])
        assert enc.take_defs() == []  # same shape: no new definition

    def test_results_roundtrip_full_mode(self):
        packet = make_cache(1, 2, op=1, key=5)
        result = SwitchResult(
            verdict=Verdict.MULTICAST,
            egress_port=None,
            packet=packet,
            recirculations=2,
            egress_ports=(1, 4),
            bridge={"depth": 3},
        )
        enc, dec = shm_codec.PacketEncoder(), shm_codec.PacketDecoder()
        blob, extra = shm_codec.encode_results([result], "full", enc)
        payload = shm_codec.encode_chunk(enc.take_defs(), blob, extra)
        _tag, defs, blob, extra = shm_codec.decode_ring_payload(payload)
        dec.add_defs(defs)
        back = shm_codec.decode_results(blob, extra, "full", dec)[0]
        assert back.verdict is Verdict.MULTICAST
        assert back.egress_port is None
        assert back.recirculations == 2
        assert back.egress_ports == (1, 4)
        assert back.bridge == {"depth": 3}
        assert back.packet.headers == packet.headers

    def test_results_roundtrip_verdicts_mode(self):
        results = [
            SwitchResult(verdict=Verdict.FORWARD, egress_port=7, packet=Packet()),
            SwitchResult(
                verdict=Verdict.DROP, egress_port=None, packet=Packet()
            ),
        ]
        enc, dec = shm_codec.PacketEncoder(), shm_codec.PacketDecoder()
        blob, extra = shm_codec.encode_results(results, "verdicts", enc)
        assert shm_codec.result_count(blob, extra) == 2
        assert shm_codec.decode_results(blob, extra, "verdicts", dec) == [
            ("forward", 7, 0),
            ("drop", None, 0),
        ]


# -- the frame-size guard -----------------------------------------------------


class TestSendFrame:
    class _Conn:
        def __init__(self):
            self.sent = []

        def send_bytes(self, data):
            self.sent.append(bytes(data))

    def test_small_frame_passes(self):
        conn = self._Conn()
        send_frame(conn, b"abc")
        assert conn.sent == [b"abc"]

    def test_oversized_frame_refused_with_structured_error(self):
        conn = self._Conn()
        with pytest.raises(FrameTooLargeError, match="exceeds"):
            send_frame(conn, b"x" * 100, limit=64)
        assert conn.sent == []  # nothing hit the pipe


# -- engine-level transport behavior -----------------------------------------


class TestEngineTransport:
    def test_shm_disabled_uses_pipes(self):
        with ShardedEngine(2, use_shm=False) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            results = engine.inject(traffic(64), mode="verdicts")
            assert len(results) == 64
            transport = engine.transport_stats()
            assert not transport["enabled"]
            assert transport["workers_with_rings"] == 0
            assert transport["ring_batches"] == 0
            assert transport["pipe_batches"] > 0

    def test_shm_enabled_uses_rings(self):
        with ShardedEngine(2) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            results = engine.inject(traffic(64), mode="verdicts")
            assert len(results) == 64
            transport = engine.transport_stats()
            assert transport["enabled"]
            assert transport["workers_with_rings"] == 2
            assert transport["ring_batches"] > 0
            assert transport["ring_records"] == 64
            assert transport["bytes_out"] > 0
            assert transport["bytes_in"] > 0
            assert transport["pipe_batches"] == 0

    def test_ring_full_falls_back_to_pipe(self):
        """With a worker frozen (SIGSTOP) its tiny ring fills; a zero
        stall budget reroutes the stream tail over the pipe, and results
        stay complete once the worker resumes."""
        with ShardedEngine(
            2,
            ring_bytes=8192,
            chunk_packets=4,
            ring_stall_timeout_s=0.0,
        ) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            victim = engine.worker_ids[0]
            pid = engine._procs[victim].pid
            os.kill(pid, signal.SIGSTOP)
            resume = threading.Timer(1.0, os.kill, (pid, signal.SIGCONT))
            resume.start()
            try:
                results = engine.inject(traffic(200), mode="verdicts")
            finally:
                resume.cancel()
                os.kill(pid, signal.SIGCONT)
            assert len(results) == 200
            assert all(r is not None for r in results)
            transport = engine.transport_stats()
            assert transport["fallbacks"]["ring_full"] > 0

    def test_oversized_chunk_falls_back_to_pipe(self):
        """One packet bigger than the ring's record cap flips its shard's
        stream tail to the pipe instead of erroring."""
        with ShardedEngine(1, ring_bytes=2048, chunk_packets=4) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            packets = traffic(8)
            big = make_udp(1, 2, 9999, 80)
            # A giant structural header blob no chunk record can hold.
            big.headers["blob"] = {f"f{i}": i for i in range(2000)}
            packets.append(big)
            results = engine.inject(packets, mode="verdicts")
            assert len(results) == 9
            assert all(r is not None for r in results)
            assert engine.transport_stats()["fallbacks"]["oversize"] > 0

    def test_plan_inject_plan_over_rings(self):
        with ShardedEngine(2) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            packets = traffic(128)
            plan = engine.plan(packets, mode="verdicts")
            assert plan.chunks and not plan.frames
            first = engine.inject_plan(plan)
            second = engine.inject_plan(plan)  # plans are reusable
            assert len(first) == len(second) == 128
            assert engine.transport_stats()["ring_batches"] >= 2

    def test_empty_inject_short_circuits(self):
        with ShardedEngine(2) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            assert engine.inject([], mode="verdicts") == []
            transport = engine.transport_stats()
            assert transport["ring_batches"] == 0
            assert transport["pipe_batches"] == 0
            stats = engine.last_inject_stats
            assert stats["shard_counts"] == [0, 0]
            assert stats["worker_cpu_s"] == {}

    def test_rescale_allocates_and_retires_rings(self):
        with ShardedEngine(2) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            assert engine.transport_stats()["workers_with_rings"] == 2
            wid = engine.add_worker()
            assert engine.transport_stats()["workers_with_rings"] == 3
            engine.inject(traffic(64), mode="verdicts")
            engine.remove_worker(wid)
            assert engine.transport_stats()["workers_with_rings"] == 2
            assert wid not in engine._rings
            results = engine.inject(traffic(64), mode="verdicts")
            assert all(r is not None for r in results)

    def test_worker_death_detected_mid_ring(self):
        """A worker killed between batches must surface as EngineError on
        the next shm inject, not hang the coordinator."""
        with ShardedEngine(2, reply_timeout_s=10.0) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            engine.inject(traffic(32), mode="verdicts")
            victim = engine.worker_ids[0]
            engine._procs[victim].kill()
            engine._procs[victim].join(timeout=5)
            with pytest.raises(EngineError, match=f"worker {victim} is dead"):
                engine.inject(traffic(256), mode="verdicts")

    def test_stats_exposes_transport_section(self):
        with ShardedEngine(2) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            engine.inject(traffic(32), mode="verdicts")
            transport = engine.stats()["transport"]
            assert transport["enabled"]
            assert transport["ring_batches"] > 0
            assert set(transport["fallbacks"]) == {
                "oversize",
                "ring_full",
                "no_ring",
                "disabled",
            }
