"""Elastic re-sharding: the ring, runtime rescale, and live migration.

The contract under test: rescaling and migration are *invisible* to the
traffic.  Adding a worker remaps a bounded ~1/(N+1) slice of flows (all
of it onto the newcomer) and the newcomer serves from state identical to
its peers'; removing a worker loses neither register state nor a single
counter; a live migration drops and reorders zero packets and leaves
register state bit-identical to never having migrated; and the
rebalancer turns the pinned-owner worst case (`shard_counts [N, 0]`)
into a balanced split.
"""

import asyncio

import pytest

from repro.controlplane import Controller
from repro.engine import HashRing, MigrationError, ShardedEngine, flow_hash
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_udp
from repro.service import ControlService, Request

#: remap ceiling asserted for add_worker on a 4-worker ring (ISSUE 9)
MAX_REMAP_FRACTION = 0.35


def observable(result):
    return (
        result.verdict,
        result.egress_port,
        result.recirculations,
        result.egress_ports,
        result.packet.headers,
    )


def udp_traffic(flows=16, per_flow=4):
    packets = []
    for i in range(flows * per_flow):
        flow = i % flows
        packets.append(make_udp(flow + 1, 2, 5000 + flow, 80, size=64 + flow))
    return packets


def mixed_traffic(total=200, flows=32):
    """Interleaved pinned (cache) and hash-spread (udp) packets."""
    packets = []
    for i in range(total):
        if i % 2 == 0:
            packets.append(make_cache(i % flows + 1, 2, op=NC_READ, key=i % 8))
        else:
            packets.append(make_udp(i % flows + 1, 2, 5000 + i % flows, 80))
    return packets


def reference(names):
    controller, dataplane = Controller.with_simulator()
    handles = {name: controller.deploy(PROGRAMS[name].source) for name in names}
    return controller, dataplane, handles


# -- the ring itself ---------------------------------------------------------


class TestHashRing:
    def hashes(self, count=2000):
        return [flow_hash((i + 1, 2, 17, 1000 + i, 80)) for i in range(count)]

    def test_deterministic(self):
        a, b = HashRing(), HashRing()
        for w in range(4):
            a.add(w)
            b.add(w)
        assert [a.lookup(h) for h in self.hashes()] == [
            b.lookup(h) for h in self.hashes()
        ]

    def test_add_worker_remap_bounded_and_onto_newcomer(self):
        ring = HashRing()
        for w in range(4):
            ring.add(w)
        hashes = self.hashes()
        before = [ring.lookup(h) for h in hashes]
        ring.add(4)
        after = [ring.lookup(h) for h in hashes]
        moved = [(b, a) for b, a in zip(before, after) if b != a]
        assert len(moved) / len(hashes) <= MAX_REMAP_FRACTION
        # Consistent hashing: every remapped flow moves TO the new worker.
        assert all(a == 4 for _b, a in moved)

    def test_remove_worker_only_reassigns_its_own_flows(self):
        ring = HashRing()
        for w in range(4):
            ring.add(w)
        hashes = self.hashes()
        before = [ring.lookup(h) for h in hashes]
        ring.remove(2)
        after = [ring.lookup(h) for h in hashes]
        assert all(b == 2 for b, a in zip(before, after) if b != a)
        assert 2 not in set(after)

    def test_weight_zero_drains_hash_traffic(self):
        ring = HashRing()
        for w in range(2):
            ring.add(w)
        assert ring.set_weight(0, 0.0)
        assert {ring.lookup(h) for h in self.hashes(200)} == {1}
        # Restoring the weight restores the original split exactly.
        ring.set_weight(0, 1.0)
        fresh = HashRing()
        for w in range(2):
            fresh.add(w)
        assert [ring.lookup(h) for h in self.hashes(200)] == [
            fresh.lookup(h) for h in self.hashes(200)
        ]

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().lookup(123)


# -- runtime rescale ---------------------------------------------------------


def test_add_worker_bootstraps_full_state():
    """A worker added after deploys + traffic serves identically to a
    static single-process switch: verdicts, registers, program stats."""
    names = ("cms", "cache")
    with ShardedEngine(2) as engine:
        handles = {
            name: engine.controller.deploy(PROGRAMS[name].source)
            for name in names
        }
        controller, dataplane, ref_handles = reference(names)
        warmup = mixed_traffic(120)
        follow = mixed_traffic(120)

        engine_results = engine.inject([p.clone() for p in warmup])
        wid = engine.add_worker()
        assert wid == 2 and engine.num_workers == 3
        engine_results += engine.inject([p.clone() for p in follow])

        single_results = dataplane.process_many(
            [p.clone() for p in warmup + follow]
        )
        assert [observable(r) for r in engine_results] == [
            observable(r) for r in single_results
        ]
        # The newcomer actually served packets.
        assert engine.last_inject_stats["shard_counts"][2] > 0
        for name in names:
            for mid in PROGRAMS[name].memories:
                assert engine.controller.snapshot_memory(
                    handles[name], mid
                ) == controller.snapshot_memory(ref_handles[name], mid)
            assert engine.controller.program_stats(
                handles[name]
            ) == controller.program_stats(ref_handles[name])
        totals = engine.stats()["totals"]
        assert totals["packets_in"] == dataplane.switch.packets_in


def test_add_worker_remaps_bounded_fraction_of_active_flows():
    """Engine-level remap bound: 4 -> 5 workers via real routing."""
    with ShardedEngine(4) as engine:
        engine.controller.deploy(PROGRAMS["cms"].source)
        packets = [make_udp(i + 1, 2, 1000 + i, 80) for i in range(400)]
        before = [engine.shard_of(p) for p in packets]
        wid = engine.add_worker()
        after = [engine.shard_of(p) for p in packets]
        moved = [(b, a) for b, a in zip(before, after) if b != a]
        assert len(moved) / len(packets) <= MAX_REMAP_FRACTION
        assert moved and all(a == wid for _b, a in moved)


def test_remove_worker_preserves_state_and_counters():
    """Downscaling folds the departing shard's registers, TM totals, and
    entry counters into the survivors — aggregates never regress."""
    names = ("cms", "cache")
    with ShardedEngine(3) as engine:
        handles = {
            name: engine.controller.deploy(PROGRAMS[name].source)
            for name in names
        }
        controller, dataplane, ref_handles = reference(names)
        first = mixed_traffic(120)
        second = mixed_traffic(120)

        engine_results = engine.inject([p.clone() for p in first])
        removed = engine.remove_worker()
        assert removed == 2 and engine.num_workers == 2
        engine_results += engine.inject([p.clone() for p in second])

        single_results = dataplane.process_many(
            [p.clone() for p in first + second]
        )
        assert [observable(r) for r in engine_results] == [
            observable(r) for r in single_results
        ]
        for name in names:
            for mid in PROGRAMS[name].memories:
                assert engine.controller.snapshot_memory(
                    handles[name], mid
                ) == controller.snapshot_memory(ref_handles[name], mid)
            assert engine.controller.program_stats(
                handles[name]
            ) == controller.program_stats(ref_handles[name])
        totals = engine.stats()["totals"]
        assert totals["packets_in"] == dataplane.switch.packets_in
        assert totals["forwarded"] == dataplane.switch.tm.forwarded


def test_remove_last_worker_refused():
    with ShardedEngine(1) as engine:
        with pytest.raises(Exception, match="last worker"):
            engine.remove_worker()


# -- live migration ----------------------------------------------------------


def test_migrate_moves_pinned_program_and_state():
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cache"].source)
        pid = handle.program_id
        engine.inject(
            [make_cache(1, 2, op=NC_WRITE, key=0x8888, value=99)]
            + [make_cache(i + 2, 2, op=NC_READ, key=0x8888) for i in range(5)]
        )
        source = engine.placement[pid]
        target = 1 - source
        report = engine.migrate(pid, target)
        assert report["source"] == source
        assert report["target"] == target
        assert report["moved_buckets"] > 0
        assert engine.placement[pid] == target
        # All of the program's traffic now routes to the new owner...
        probes = [make_cache(i + 1, 2, op=NC_READ, key=0x8888) for i in range(8)]
        assert {engine.shard_of(p) for p in probes} == {target}
        # ...and the migrated register state serves reads bit-identically.
        served = engine.inject([make_cache(9, 2, op=NC_READ, key=0x8888)])
        assert served[0].packet.headers["nc"]["val"] == 99
        stats = engine.stats()["migration"]
        assert stats["started"] == stats["completed"] == 1
        assert stats["quiesce_ms"]["count"] == 1


def test_staged_migration_parks_and_replays_in_order():
    """Traffic injected mid-migration: the quiesced program's packets
    park (zero drops), everything else flows, and the replay after the
    flip is bit-identical to a switch that never migrated."""
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cache"].source)
        engine.controller.deploy(PROGRAMS["cms"].source)
        controller, dataplane, _ = reference(("cache", "cms"))
        pid = handle.program_id

        warm = [make_cache(1, 2, op=NC_WRITE, key=0x8888, value=42)]
        engine.inject([p.clone() for p in warm])
        dataplane.process_many([p.clone() for p in warm])

        target = engine.begin_migration(pid)
        batch = mixed_traffic(60)
        inline = engine.inject([p.clone() for p in batch])
        parked_idx = [i for i, r in enumerate(inline) if r is None]
        # Exactly the cache packets parked; everything else processed.
        assert parked_idx == [i for i in range(60) if i % 2 == 0]
        replayed = engine.complete_migration(pid)
        assert len(replayed) == len(parked_idx)
        assert engine.placement[pid] == target

        # Reassemble arrival order and compare against the unmigrated
        # reference switch processing the very same sequence.
        merged = list(inline)
        for index, result in zip(parked_idx, replayed):
            merged[index] = result
        single = dataplane.process_many([p.clone() for p in batch])
        assert [observable(r) for r in merged] == [
            observable(r) for r in single
        ]
        stats = engine.stats()
        assert stats["migration"]["parked_packets"] == len(parked_idx)
        assert stats["totals"]["packets_in"] == dataplane.switch.packets_in
        assert stats["totals"]["dropped"] == dataplane.switch.tm.dropped


def test_migration_error_cases():
    with ShardedEngine(2) as engine:
        cms = engine.controller.deploy(PROGRAMS["cms"].source)
        cache = engine.controller.deploy(PROGRAMS["cache"].source)
        with pytest.raises(MigrationError, match="not pinned"):
            engine.migrate(cms.program_id)
        with pytest.raises(MigrationError, match="no such worker"):
            engine.migrate(cache.program_id, 99)
        source = engine.placement[cache.program_id]
        with pytest.raises(MigrationError, match="already lives"):
            engine.migrate(cache.program_id, source)
        engine.begin_migration(cache.program_id)
        with pytest.raises(MigrationError, match="already migrating"):
            engine.begin_migration(cache.program_id)
        engine.complete_migration(cache.program_id)
        with pytest.raises(MigrationError, match="not migrating"):
            engine.complete_migration(cache.program_id)


def test_revoke_mid_migration_cancels_and_replays():
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cache"].source)
        engine.controller.deploy(PROGRAMS["cms"].source)
        engine.begin_migration(handle.program_id)
        inline = engine.inject(mixed_traffic(20))
        assert any(r is None for r in inline)
        engine.controller.revoke(handle)
        # The cancelled migration's parked packets replay at the next
        # inject boundary (now hash-routed, cache program gone).
        results = engine.inject(udp_traffic(flows=4, per_flow=2))
        assert all(r is not None for r in results)
        stats = engine.stats()
        assert stats["migration"]["cancelled"] == 1
        # 10 processed mid-migration + 10 parked replays + 8 follow-ups.
        assert stats["totals"]["packets_in"] == 28


# -- the rebalancer -----------------------------------------------------------


def test_rebalance_fixes_pinned_owner_skew():
    """The BENCH worst case: a pinned owner collapses mixed traffic onto
    one shard.  The rebalancer steers hash flows away via ring weights;
    post-rebalance shard_counts are within 70/30 and no packet differs
    from the single-process reference."""
    with ShardedEngine(2) as engine:
        # cache first: it owns every nc-header packet (first-match).
        engine.controller.deploy(PROGRAMS["cache"].source)
        engine.controller.deploy(PROGRAMS["cms"].source)
        controller, dataplane, _ = reference(("cache", "cms"))
        batch = mixed_traffic(400)

        before = engine.inject([p.clone() for p in batch], mode="verdicts")
        counts_before = engine.last_inject_stats["shard_counts"]
        skew_before = max(counts_before) / sum(counts_before)
        assert skew_before > 0.7  # the pathology is real

        report = engine.rebalance(threshold=0.7)
        assert report["triggered"]
        assert report["reweighted"]

        after = engine.inject([p.clone() for p in batch], mode="verdicts")
        counts_after = engine.last_inject_stats["shard_counts"]
        assert sum(counts_after) == len(batch)  # zero drops
        assert max(counts_after) / sum(counts_after) <= 0.7
        # Bit-identical to a single-process switch fed the same stream
        # twice — rebalancing changed *where*, never *what*.
        ref1 = dataplane.process_many([p.clone() for p in batch])
        ref2 = dataplane.process_many([p.clone() for p in batch])
        want = [
            (r.verdict.value, r.egress_port, r.recirculations)
            for r in ref1 + ref2
        ]
        assert before + after == want
        assert engine.stats()["migration"]["rebalances"] == 1


def test_maybe_rebalance_needs_telemetry_and_skew():
    with ShardedEngine(2) as engine:
        engine.controller.deploy(PROGRAMS["cms"].source)
        assert engine.maybe_rebalance(0.7) is None  # no telemetry yet
        engine.inject(udp_traffic(flows=32, per_flow=20), mode="verdicts")
        # Hash-spread traffic: below the threshold, still a no-op.
        assert engine.maybe_rebalance(0.99) is None


# -- service RPCs -------------------------------------------------------------


def run_rpc(service, method, params=None, tenant="default"):
    request = Request(id=1, method=method, params=params or {}, tenant=tenant)
    return asyncio.run(service.handle_request(request))


def result_of(response):
    assert response["ok"], response
    return response["result"]


def test_scale_migrate_rebalance_rpcs():
    with ShardedEngine(2) as engine:
        service = ControlService(engine=engine, max_workers=4)
        deployed = result_of(
            run_rpc(service, "deploy", {"source": PROGRAMS["cache"].source})
        )
        result = result_of(run_rpc(service, "scale", {"workers": 4}))
        assert result["workers"] == 4 and len(result["added"]) == 2
        response = run_rpc(service, "scale", {"workers": 5})
        assert not response["ok"]
        assert response["error"]["code"] == "BAD_REQUEST"

        report = result_of(
            run_rpc(service, "migrate", {"program_id": deployed["program_id"]})
        )
        assert report["source"] != report["target"]

        report = result_of(run_rpc(service, "rebalance", {"threshold": 0.9}))
        assert report["triggered"] is False  # no telemetry yet

        result = result_of(run_rpc(service, "scale", {"workers": 2}))
        assert result["workers"] == 2 and len(result["removed"]) == 2

        stats = result_of(run_rpc(service, "stats"))
        assert stats["workers"] == 2
        assert stats["migration"]["completed"] >= 1
        metrics = result_of(run_rpc(service, "metrics"))
        assert metrics["engine"]["workers"] == 2
        assert "engine.migration.quiesce_ms" in metrics["histograms"]


def test_migrate_rpc_rejects_bad_requests():
    with ShardedEngine(2) as engine:
        service = ControlService(engine=engine)
        deployed = result_of(
            run_rpc(service, "deploy", {"source": PROGRAMS["cms"].source})
        )
        response = run_rpc(
            service, "migrate", {"program_id": deployed["program_id"]}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "BAD_REQUEST"


def test_elastic_rpcs_require_engine():
    service = ControlService()
    for method, params in (
        ("scale", {"workers": 2}),
        ("rebalance", {}),
    ):
        response = run_rpc(service, method, params)
        assert not response["ok"]
        assert response["error"]["code"] == "BAD_REQUEST"
