"""Control fan-out and barrier consistency.

Every control-plane mutation travels the generation-stamped command
channel; the barrier before traffic guarantees a deploy (or add_case, or
memory write) immediately followed by an inject is visible on every
shard.  Deferred control failures must surface at the next barrier, and
the engine must stay usable afterwards.
"""

import pytest

from repro.controlplane import Controller
from repro.engine import ShardedEngine, WorkerError
from repro.programs import PROGRAMS
from repro.programs.extensions import make_mlagg
from repro.rmt.packet import NC_READ, make_cache, make_udp
from repro.rmt.parser import default_parse_machine
from repro.rmt.pipeline import Verdict


def multi_flow(n=16):
    return [make_udp(i + 1, 2, 5000 + i, 80) for i in range(n)]


def test_deploy_then_immediate_inject_hits_every_shard():
    """The deploy->inject barrier: no shard may miss the program."""
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cms"].source)
        results = engine.inject(multi_flow())
        assert all(r.verdict is Verdict.FORWARD for r in results)
        # Both shards processed traffic, and every packet matched the
        # freshly deployed program on its shard.
        stats = engine.stats()
        assert all(s["packets_in"] > 0 for s in stats["shards"])
        assert engine.controller.program_stats(handle)["matched_packets"] == 16


def test_revoke_then_immediate_inject_misses_everywhere():
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cms"].source)
        engine.inject(multi_flow())
        engine.controller.revoke(handle)
        assert handle.program_id not in engine.placement
        # cms counted each packet while deployed; after revoke the same
        # traffic leaves no new state anywhere (fresh deploy starts at 0).
        fresh = engine.controller.deploy(PROGRAMS["cms"].source)
        engine.inject(multi_flow())
        snapshot = engine.controller.snapshot_memory(fresh, "cms_row1")
        assert sum(snapshot) == 16


def test_add_case_fans_out_to_workers():
    """A dynamically added cache entry must serve traffic on the owning
    shard, which only happens if the new entries reached the workers."""
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cache"].source)
        engine.controller.add_case(
            handle,
            [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 0x77, 0xFFFFFFFF)],
            template_case=0,
            loadi_values=[32],
        )
        engine.controller.write_memory(handle, "mem1", 32, 9)
        (hit,) = engine.inject([make_cache(1, 2, op=NC_READ, key=0x77)])
        assert hit.verdict is Verdict.REFLECT
        assert hit.packet.get_field("hdr.nc.val") == 9


def test_remove_case_fans_out_to_workers():
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cache"].source)
        case = engine.controller.add_case(
            handle,
            [("har", 1, 0xFF), ("sar", 0, 0xFFFFFFFF), ("mar", 0x77, 0xFFFFFFFF)],
            template_case=0,
            loadi_values=[32],
        )
        engine.controller.remove_case(handle, case)
        (miss,) = engine.inject([make_cache(1, 2, op=NC_READ, key=0x77)])
        assert miss.verdict is not Verdict.REFLECT


def test_multicast_configuration_fans_out():
    """The mlagg SwitchML program multicasts its aggregate: the group
    table must exist on the shard that processes the final arrival."""
    machine = default_parse_machine(nc_port=9999)
    source = make_mlagg(num_workers=4, group=1, port=9999).source
    ports = [10, 11, 12, 13]

    def worker_packet(worker, chunk, value):
        return make_cache(
            0x0A000000 + worker,
            0x0A00FF01,
            op=3,
            key=chunk,
            value=value,
            dst_port=9999,
        )

    with ShardedEngine(2, parse_machine=machine) as engine:
        engine.controller.configure_multicast_group(1, ports)
        engine.controller.deploy(source)
        packets = [worker_packet(w, chunk=5, value=10) for w in range(4)]
        results = engine.inject(packets)

        reference_ctl, reference_dp = Controller.with_simulator(
            parse_machine=default_parse_machine(nc_port=9999)
        )
        reference_ctl.configure_multicast_group(1, ports)
        reference_ctl.deploy(source)
        expected = reference_dp.process_many(
            [worker_packet(w, chunk=5, value=10) for w in range(4)]
        )

        assert [(r.verdict, r.egress_ports) for r in results] == [
            (r.verdict, r.egress_ports) for r in expected
        ]
        assert results[-1].verdict is Verdict.MULTICAST
        assert results[-1].egress_ports == tuple(ports)


def test_control_failure_surfaces_at_barrier():
    """A bad pipelined command is held by the worker and raised — with the
    failing op named — at the next barrier; the engine stays usable."""
    with ShardedEngine(2) as engine:
        engine._broadcast(("bogus",))
        with pytest.raises(WorkerError, match="bogus"):
            engine.barrier()
        # The channel is drained; subsequent control + traffic still work.
        engine.controller.deploy(PROGRAMS["cms"].source)
        results = engine.inject(multi_flow(4))
        assert all(r.verdict is Verdict.FORWARD for r in results)


def test_barrier_validates_generation_acks():
    with ShardedEngine(2) as engine:
        engine.controller.deploy(PROGRAMS["cms"].source)
        gen = engine._generation
        assert gen > 0 and engine._ctl_pending
        engine.barrier()
        assert not engine._ctl_pending
        # Idle barrier is a no-op (nothing pending, nothing to drain).
        engine.barrier()
        assert engine._generation == gen


def test_periodic_merge_triggers_on_packet_budget():
    with ShardedEngine(2, merge_every=10) as engine:
        handle = engine.controller.deploy(PROGRAMS["cms"].source)
        engine.inject(multi_flow(24), mode="verdicts")
        assert engine.merges >= 1
        # After the periodic merge the coordinator's local replica already
        # holds the folded state — read it without another sync.
        record = engine.controller.manager.get(handle.program_id)
        alloc = record.memory["cms_row1"]
        total = sum(
            engine.dataplane.read_bucket(alloc.phys_rpb, addr)
            for _off, base, size in alloc.virtual_layout()
            for addr in range(base, base + size)
        )
        assert total == 24


def test_write_memory_rebases_instead_of_clobbering():
    """write_mem on a mergeable block merges outstanding shard deltas
    first, then rebases everyone to the written absolute value."""
    with ShardedEngine(2) as engine:
        handle = engine.controller.deploy(PROGRAMS["cms"].source)
        engine.inject(multi_flow(), mode="verdicts")
        snapshot = engine.controller.snapshot_memory(handle, "cms_row1")
        hot = max(range(len(snapshot)), key=snapshot.__getitem__)
        assert snapshot[hot] > 0
        engine.controller.write_memory(handle, "cms_row1", hot, 1000)
        assert engine.controller.read_memory(handle, "cms_row1", hot) == 1000
        # New traffic accumulates on top of the written base, not on stale
        # pre-write shard replicas.
        engine.inject(multi_flow(), mode="verdicts")
        after = engine.controller.snapshot_memory(handle, "cms_row1")
        assert sum(after) == sum(snapshot) + 16 - snapshot[hot] + 1000


def test_dead_worker_detected():
    from repro.engine import EngineError

    engine = ShardedEngine(2, reply_timeout_s=5.0)
    try:
        engine._procs[1].terminate()
        engine._procs[1].join(timeout=5)
        # Commands coalesce until the next flush, so the dead pipe is
        # discovered when the deploy's barrier drains the channel.
        with pytest.raises(EngineError, match="worker 1 is dead"):
            engine.controller.deploy(PROGRAMS["cms"].source)
            engine.barrier()
    finally:
        engine.close()
