"""Southbound binary framing: packed entries, coalesced control frames.

The coordinator→worker pipes speak the same binary codec as the
northbound fast path (tuples preserved, pickle allowed — both ends are
one engine).  Control ops queue locally and ship as ONE multi-command
``ctl_run`` frame per worker at the next flush point; these tests pin
the entry packing round-trip, the codec settings, and the coalescing
behaviour itself — plus the placement-skew warning the service derives
from the engine's per-shard routing counts.
"""

from types import SimpleNamespace

from repro.compiler.entries import EntryConfig, KeySpec
from repro.engine import ShardedEngine
from repro.engine.sbwire import decode_msg, encode_msg, pack_entry, unpack_entry
from repro.programs import PROGRAMS
from repro.rmt.packet import make_udp
from repro.rmt.pipeline import Verdict
from repro.service import ControlService


def sample_entry():
    return EntryConfig(
        table="t_logic_3",
        keys=(
            KeySpec(field="hdr.meta.prog_id", value=7, mask=0xFF),
            KeySpec(field="hdr.udp.dst_port", value=80, mask=0xFFFF),
        ),
        action="a_forward",
        action_data=(("port", 3), ("weight", 2**40)),
        priority=5,
    )


class TestEntryPacking:
    def test_round_trip(self):
        entry = sample_entry()
        assert unpack_entry(pack_entry(entry)) == entry

    def test_survives_the_wire(self):
        entry = sample_entry()
        decoded = decode_msg(bytes(encode_msg(("insert", 4, pack_entry(entry)))))
        kind, handle, packed = decoded
        assert (kind, handle) == ("insert", 4)
        assert unpack_entry(packed) == entry

    def test_packed_form_avoids_pickle(self):
        # The packed tuple is pure wire-native types — no 0xC7 pickle
        # extension bytes in the frame for the entry itself.
        frame = bytes(encode_msg(("insert", 1, pack_entry(sample_entry()))))
        assert b"\xc7" not in frame.split(b"t_logic_3")[0]


class TestSouthboundCodec:
    def test_tuples_preserved(self):
        msg = ("ctl_run", 3, (("insert", 1, ("k", 2)), ("remove", 9)))
        assert decode_msg(bytes(encode_msg(msg))) == msg

    def test_pickle_allowed_for_engine_payloads(self):
        # Packet batches cross as pickled blobs inside bytes leaves, but
        # arbitrary objects (Verdict enums in replies, say) must also
        # survive — the southbound channel trusts both ends.
        msg = ("ok", (Verdict.FORWARD, {1, 2}))
        assert decode_msg(bytes(encode_msg(msg))) == msg

    def test_reusable_buffer(self):
        buf = bytearray()
        first = encode_msg(("barrier", 1), out=buf)
        assert first is buf
        encode_msg(("barrier", 2), out=buf)
        assert decode_msg(bytes(buf)) == ("barrier", 2)


class TestCoalescing:
    def test_ops_queue_until_flush(self):
        with ShardedEngine(2) as engine:
            engine.barrier()  # drain the setup traffic
            pending_before = len(engine._pending_ops)
            engine.controller.deploy(PROGRAMS["cms"].source)
            assert len(engine._pending_ops) > pending_before
            assert engine._ctl_pending
            engine.barrier()
            assert engine._pending_ops == []

    def test_single_frame_per_worker_at_flush(self):
        with ShardedEngine(2) as engine:
            engine.barrier()
            sends = []
            for index, conn in engine._conns.items():
                original = conn.send_bytes

                def counted(data, _original=original, _index=index):
                    sends.append(_index)
                    return _original(data)

                conn.send_bytes = counted
            # Two deploys queue many control ops; the flush ships exactly
            # one coalesced ctl_run frame per worker.
            engine.controller.deploy(PROGRAMS["cms"].source)
            engine.controller.deploy(PROGRAMS["cache"].source)
            assert sends == []
            engine._flush_ctl()
            assert sorted(sends) == [0, 1]

    def test_coalesced_ops_apply_in_order(self):
        # Deploy + write_memory + revoke + redeploy, all coalesced into
        # the same frame: the worker must apply them in queue order or
        # the final state diverges.
        with ShardedEngine(2) as engine:
            handle = engine.controller.deploy(PROGRAMS["cms"].source)
            engine.controller.revoke(handle)
            fresh = engine.controller.deploy(PROGRAMS["cms"].source)
            results = engine.inject(
                [make_udp(i + 1, 2, 5000 + i, 80) for i in range(8)]
            )
            assert all(r.verdict is Verdict.FORWARD for r in results)
            snapshot = engine.controller.snapshot_memory(fresh, "cms_row1")
            assert sum(snapshot) == 8


class TestPlacementSkew:
    def make_service(self, placement):
        service = ControlService()
        service.engine = SimpleNamespace(placement=placement)
        return service

    def test_pinned_owner_worst_case_warns(self):
        # shard_counts [2000, 0]: every routed flow landed on the pinned
        # owner's shard — the structured warning and both gauges fire.
        service = self.make_service(placement={1: 0})
        service._note_placement_skew([2000, 0])
        snapshot = service.metrics.snapshot()
        assert snapshot["gauges"]["engine.placement_skew"] == 1.0
        assert snapshot["gauges"]["engine.placement_skew_shard"] == 0
        assert snapshot["counters"]["engine.placement_skew_warnings"] == 1

    def test_hash_spread_does_not_warn(self):
        service = self.make_service(placement={1: None})
        service._note_placement_skew([1010, 990])
        snapshot = service.metrics.snapshot()
        assert snapshot["gauges"]["engine.placement_skew"] == 0.505
        assert "engine.placement_skew_warnings" not in snapshot["counters"]

    def test_skew_without_pinning_gauges_only(self):
        # Skewed counts but nothing pinned (hash just clustered): the
        # gauge reports it, the warning counter stays quiet.
        service = self.make_service(placement={1: None, 2: None})
        service._note_placement_skew([2000, 0])
        snapshot = service.metrics.snapshot()
        assert snapshot["gauges"]["engine.placement_skew"] == 1.0
        assert "engine.placement_skew_warnings" not in snapshot["counters"]

    def test_degenerate_counts_ignored(self):
        service = self.make_service(placement={1: 0})
        service._note_placement_skew([])
        service._note_placement_skew([0, 0])
        service._note_placement_skew([5])
        assert service.metrics.snapshot()["gauges"] == {}
