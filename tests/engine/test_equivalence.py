"""Shard-vs-single-process equivalence: the engine's correctness contract.

An N-worker engine fed the same deployments and the same packet stream
must produce identical per-packet results, and — after a cross-shard
merge — register state byte-identical to the single-process run for
mergeable programs.  Non-mergeable programs must be provably pinned.
"""

import pytest

from repro.controlplane import Controller
from repro.engine import ShardedEngine, flow_hash
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache, make_udp

#: deploy order used by both sides (first-match: cms owns plain IP traffic)
DEPLOYS = ("cms", "bf", "sumax", "cache")


@pytest.fixture()
def engine():
    with ShardedEngine(2) as engine:
        yield engine


def deploy_all(controller, names=DEPLOYS):
    return {name: controller.deploy(PROGRAMS[name].source) for name in names}


def reference(names=DEPLOYS):
    controller, dataplane = Controller.with_simulator()
    handles = deploy_all(controller, names)
    return controller, dataplane, handles


def traffic(flows=12, per_flow=6):
    """Multi-flow UDP stream; same-flow packets stay in relative order."""
    packets = []
    for i in range(flows * per_flow):
        flow = i % flows
        packets.append(make_udp(flow + 1, 2, 5000 + flow, 80, size=64 + flow))
    return packets


def observable(result):
    return (
        result.verdict,
        result.egress_port,
        result.recirculations,
        result.egress_ports,
        result.packet.headers,
    )


def test_per_flow_verdicts_identical(engine):
    handles = deploy_all(engine.controller)
    controller, dataplane, ref_handles = reference()
    packets = traffic()

    engine_results = engine.inject([p.clone() for p in packets])
    single_results = dataplane.process_many([p.clone() for p in packets])

    assert [observable(r) for r in engine_results] == [
        observable(r) for r in single_results
    ]
    # Aggregated TM counters match the single process too.
    totals = engine.stats()["totals"]
    tm = dataplane.switch.tm
    assert totals["forwarded"] == tm.forwarded
    assert totals["dropped"] == tm.dropped
    assert totals["packets_in"] == dataplane.switch.packets_in
    # program_stats aggregates per-entry counters across shards.
    for name in DEPLOYS:
        assert engine.controller.program_stats(
            handles[name]
        ) == controller.program_stats(ref_handles[name])


def test_merged_register_state_byte_identical(engine):
    """cms (sum), bf (or), sumax (max): merged state == single-process."""
    handles = deploy_all(engine.controller)
    controller, dataplane, ref_handles = reference()
    packets = traffic(flows=16, per_flow=4)

    engine.inject([p.clone() for p in packets], mode="verdicts")
    dataplane.process_many([p.clone() for p in packets])

    for name in ("cms", "bf", "sumax"):
        for mid in PROGRAMS[name].source.split("@")[1:]:
            mid = mid.split()[0]
            merged = engine.controller.snapshot_memory(handles[name], mid)
            single = controller.snapshot_memory(ref_handles[name], mid)
            assert merged == single, (name, mid)


def test_merge_is_idempotent_and_repeatable(engine):
    handles = deploy_all(engine.controller, ("cms",))
    packets = traffic(flows=8, per_flow=3)
    engine.inject(packets, mode="verdicts")
    first = engine.controller.snapshot_memory(handles["cms"], "cms_row1")
    again = engine.controller.snapshot_memory(handles["cms"], "cms_row1")
    assert first == again
    # more traffic accumulates on top of the rebased state
    engine.inject(traffic(flows=8, per_flow=2), mode="verdicts")
    final = engine.controller.snapshot_memory(handles["cms"], "cms_row1")
    assert sum(final) == sum(first) + 8 * 2


def test_non_mergeable_program_is_pinned(engine):
    """Placement assertion: pinned programs own exactly one shard, and
    every one of their packets routes there."""
    handle = engine.controller.deploy(PROGRAMS["cache"].source)
    shard = engine.placement[handle.program_id]
    assert shard is not None

    packets = [
        make_cache(i + 1, 2, op=NC_READ, key=0x8888) for i in range(20)
    ]
    assert {engine.shard_of(p) for p in packets} == {shard}
    # ...while a data-parallel program's traffic spreads by flow hash.
    engine.controller.deploy(PROGRAMS["cms"].source)
    spread = {engine.shard_of(p) for p in traffic(flows=16, per_flow=1)}
    assert spread == {0, 1}


def test_pinned_state_correct_through_merge(engine):
    """Data-plane writes on the owning shard surface in control-plane
    reads; control-plane writes fan out to the data plane."""
    handle = engine.controller.deploy(PROGRAMS["cache"].source)
    controller, dataplane, _ = reference(("cache",))

    packets = [make_cache(1, 2, op=NC_WRITE, key=0x8888, value=42)] + [
        make_cache(i + 2, 2, op=NC_READ, key=0x8888) for i in range(6)
    ]
    engine_results = engine.inject([p.clone() for p in packets])
    single_results = dataplane.process_many([p.clone() for p in packets])
    assert [observable(r) for r in engine_results] == [
        observable(r) for r in single_results
    ]
    assert engine.controller.read_memory(handle, "mem1", 128) == 42

    engine.controller.write_memory(handle, "mem1", 128, 77)
    served = engine.inject([make_cache(9, 2, op=NC_READ, key=0x8888)])
    assert served[0].packet.headers["nc"]["val"] == 77


def test_pinned_placement_spreads_across_shards(engine):
    """Least-loaded placement: consecutive pinned deployments alternate."""
    shards = []
    for name in ("cache", "firewall"):
        handle = engine.controller.deploy(PROGRAMS[name].source)
        shards.append(engine.placement[handle.program_id])
    assert sorted(shards) == [0, 1]


def test_flow_hash_stability_and_order():
    five_tuple = (0x0A000001, 0x0A000002, 17, 1234, 80)
    assert flow_hash(five_tuple) == flow_hash(five_tuple)
    assert flow_hash(five_tuple) != flow_hash((0x0A000003, *five_tuple[1:]))


def test_single_worker_engine_degenerates_to_single_process():
    with ShardedEngine(1) as engine:
        deploy_all(engine.controller)
        _, dataplane, _ = reference()
        packets = traffic(flows=5, per_flow=4)
        engine_results = engine.inject([p.clone() for p in packets])
        single_results = dataplane.process_many([p.clone() for p in packets])
        assert [observable(r) for r in engine_results] == [
            observable(r) for r in single_results
        ]


def test_verdict_mode_matches_full_mode(engine):
    deploy_all(engine.controller)
    packets = traffic(flows=6, per_flow=2)
    full = engine.inject([p.clone() for p in packets], mode="full")
    with ShardedEngine(2) as other:
        deploy_all(other.controller)
        light = other.inject([p.clone() for p in packets], mode="verdicts")
    assert [(r.verdict.value, r.egress_port, r.recirculations) for r in full] == light
