"""Capture-file round-trip tests, including hypothesis-driven packets."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.rmt.packet import make_cache, make_l2, make_tcp, make_udp
from repro.traffic.capture import (
    CaptureFormatError,
    capture_windows,
    iter_capture,
    load_capture,
    read_packet,
    save_capture,
    write_packet,
)
from repro.traffic.trace import CampusTrace, TraceConfig


def roundtrip(packet):
    buffer = io.BytesIO()
    write_packet(buffer, packet)
    buffer.seek(0)
    return read_packet(buffer)


class TestRecordRoundTrip:
    @pytest.mark.parametrize(
        "packet",
        [
            make_l2(),
            make_udp(0x0A000001, 0x0B000002, 1234, 80, size=300),
            make_tcp(1, 2, 3, 4),
            make_cache(5, 6, op=2, key=0x1234_5678_9ABC_DEF0, value=42),
        ],
    )
    def test_structural_equality(self, packet):
        packet.ts = 1.25
        packet.ingress_port = 7
        packet.queue_depth = 99
        restored = roundtrip(packet)
        assert restored.headers == packet.headers
        assert restored.size == packet.size
        assert restored.ts == packet.ts
        assert restored.ingress_port == packet.ingress_port
        assert restored.queue_depth == packet.queue_depth

    @given(
        src=st.integers(0, 0xFFFFFFFF),
        dst=st.integers(0, 0xFFFFFFFF),
        sport=st.integers(0, 0xFFFF),
        dport=st.integers(0, 0xFFFF),
        size=st.integers(64, 1500),
        ts=st.floats(0, 1e6, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_random_udp_round_trips(self, src, dst, sport, dport, size, ts):
        packet = make_udp(src, dst, sport, dport, size=size)
        packet.ts = ts
        restored = roundtrip(packet)
        assert restored.headers == packet.headers
        assert restored.five_tuple() == packet.five_tuple()


class TestFileFormat:
    def test_save_load(self, tmp_path):
        packets = [make_udp(i, i + 1, 100 + i, 200 + i) for i in range(25)]
        path = tmp_path / "trace.rpcap"
        assert save_capture(path, packets) == 25
        loaded = load_capture(path)
        assert len(loaded) == 25
        assert [p.five_tuple() for p in loaded] == [p.five_tuple() for p in packets]

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.rpcap"
        assert save_capture(path, []) == 0
        assert load_capture(path) == []

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.rpcap"
        path.write_bytes(b"NOPE\x00\x00\x00\x00")
        with pytest.raises(CaptureFormatError, match="bad magic"):
            load_capture(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.rpcap"
        save_capture(path, [make_udp(1, 2, 3, 4)])
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(CaptureFormatError, match="truncated"):
            load_capture(path)

    def test_streaming_iteration(self, tmp_path):
        path = tmp_path / "stream.rpcap"
        save_capture(path, [make_udp(i, 2, 3, 4) for i in range(10)])
        sources = [p.get_field("hdr.ipv4.src") for p in iter_capture(path)]
        assert sources == list(range(10))


class TestTraceCapture:
    def test_campus_trace_round_trips(self, tmp_path):
        trace = CampusTrace(config=TraceConfig(duration_s=0.5, samples_per_window=10))
        packets = capture_windows(trace.windows())
        path = tmp_path / "campus.rpcap"
        save_capture(path, packets)
        loaded = load_capture(path)
        assert len(loaded) == len(packets)
        assert [p.ts for p in loaded] == [p.ts for p in packets]
        assert [p.headers for p in loaded] == [p.headers for p in packets]

    def test_replay_from_capture_matches_live(self, tmp_path):
        """Processing a saved trace gives identical verdicts to live."""
        from repro.controlplane import Controller
        from repro.programs import PROGRAMS

        trace = CampusTrace(config=TraceConfig(duration_s=0.3, samples_per_window=8))
        packets = capture_windows(trace.windows())
        path = tmp_path / "replayable.rpcap"
        save_capture(path, packets)

        def run(stream):
            ctl, dataplane = Controller.with_simulator()
            ctl.deploy(PROGRAMS["l3route"].source)
            return [
                (r.verdict, r.egress_port)
                for r in (dataplane.process(p.clone()) for p in stream)
            ]

        assert run(packets) == run(load_capture(path))
