"""Synthetic trace generation tests."""

import pytest

from repro.traffic.trace import (
    WINDOW_S,
    CacheTrace,
    CacheTraceConfig,
    CampusTrace,
    TraceConfig,
)


class TestCampusTrace:
    def test_window_count_and_timing(self):
        trace = CampusTrace(config=TraceConfig(duration_s=2.0, samples_per_window=5))
        windows = list(trace.windows())
        assert len(windows) == 40
        assert windows[0].start_s == 0.0
        assert windows[1].start_s == pytest.approx(WINDOW_S)

    def test_offered_rate_tracks_config(self):
        trace = CampusTrace(config=TraceConfig(rate_mbps=100, duration_s=1.0))
        rates = [w.offered_mbps for w in trace.windows()]
        assert min(rates) == pytest.approx(100.0)
        assert max(rates) <= 170.0  # bursts capped at 1.6x

    def test_bursts_present(self):
        trace = CampusTrace(
            config=TraceConfig(duration_s=10.0, tcp_burst_probability=0.3)
        )
        rates = [w.offered_mbps for w in trace.windows()]
        assert any(r > 100.0 for r in rates)

    def test_deterministic(self):
        cfg = TraceConfig(duration_s=0.5, seed=9)
        a = [[p.five_tuple() for p in w.packets] for w in CampusTrace(config=cfg).windows()]
        b = [[p.five_tuple() for p in w.packets] for w in CampusTrace(config=cfg).windows()]
        assert a == b

    def test_packet_timestamps_match_window(self):
        trace = CampusTrace(config=TraceConfig(duration_s=0.5))
        for window in trace.windows():
            assert all(p.ts == window.start_s for p in window.packets)

    def test_mixed_protocols(self):
        trace = CampusTrace(config=TraceConfig(duration_s=1.0, samples_per_window=50))
        protos = {
            p.get_field("hdr.ipv4.proto")
            for w in trace.windows()
            for p in w.packets
        }
        assert protos == {6, 17}


class TestCacheTrace:
    def test_hit_rate_statistics(self):
        cfg = CacheTraceConfig(duration_s=5.0, samples_per_window=40, hit_rate=0.6)
        hits = total = 0
        for window in CacheTrace(cfg).windows():
            for pkt in window.packets:
                total += 1
                key = (pkt.get_field("hdr.nc.key1") << 32) | pkt.get_field("hdr.nc.key2")
                hits += key == cfg.hot_key
        assert hits / total == pytest.approx(0.6, abs=0.05)

    def test_all_packets_are_cache_reads(self):
        for window in CacheTrace(CacheTraceConfig(duration_s=0.2)).windows():
            for pkt in window.packets:
                assert pkt.get_field("hdr.nc.op") == 1
                assert pkt.get_field("hdr.udp.dst_port") == 7777

    def test_constant_offered_rate(self):
        rates = {
            w.offered_mbps for w in CacheTrace(CacheTraceConfig(duration_s=0.5)).windows()
        }
        assert len(rates) == 1
