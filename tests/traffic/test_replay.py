"""Replay-engine tests."""

import pytest

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.traffic.replay import ReplayEngine, ReplayEvent, load_imbalance
from repro.traffic.trace import CacheTrace, CacheTraceConfig, CampusTrace, TraceConfig


@pytest.fixture
def env():
    return Controller.with_simulator()


def short_trace(duration=0.5, samples=10, seed=4):
    return CampusTrace(config=TraceConfig(duration_s=duration, samples_per_window=samples, seed=seed))


class TestBasicReplay:
    def test_default_forwarding_passes_all(self, env):
        _, dataplane = env
        stats = ReplayEngine(dataplane).run(short_trace().windows())
        for s in stats:
            assert s.rx_mbps == pytest.approx(s.offered_mbps)
            assert s.dropped_mbps == 0

    def test_stats_timeline(self, env):
        _, dataplane = env
        stats = ReplayEngine(dataplane).run(short_trace().windows())
        assert [s.start_s for s in stats] == pytest.approx(
            [i * 0.05 for i in range(10)]
        )

    def test_per_port_split_sums_to_rx(self, env):
        _, dataplane = env
        stats = ReplayEngine(dataplane).run(short_trace().windows())
        for s in stats:
            assert sum(s.rx_mbps_by_port.values()) == pytest.approx(s.rx_mbps)


class TestEvents:
    def test_event_fires_before_matching_window(self, env):
        ctl, dataplane = env
        fired = []

        def deploy():
            ctl.deploy(PROGRAMS["cache"].source)
            fired.append(True)

        engine = ReplayEngine(dataplane)
        engine.run(
            short_trace().windows(),
            events=[ReplayEvent(at_s=0.2, action=deploy, label="deploy cache")],
        )
        assert fired == [True]
        assert len(ctl.running_programs()) == 1

    def test_events_in_time_order(self, env):
        _, dataplane = env
        order = []
        events = [
            ReplayEvent(at_s=0.3, action=lambda: order.append("b")),
            ReplayEvent(at_s=0.1, action=lambda: order.append("a")),
        ]
        ReplayEngine(dataplane).run(short_trace().windows(), events=events)
        assert order == ["a", "b"]


class TestBlackout:
    def test_blackout_windows_measure_zero(self, env):
        _, dataplane = env
        engine = ReplayEngine(dataplane, blackout=lambda t: 0.1 <= t < 0.3)
        stats = engine.run(short_trace().windows())
        for s in stats:
            if 0.1 <= s.start_s < 0.3:
                assert s.rx_mbps == 0
            else:
                assert s.rx_mbps > 0


class TestCacheReplay:
    def test_hit_traffic_reflected(self, env):
        ctl, dataplane = env
        handle = ctl.deploy(PROGRAMS["cache"].source)
        ctl.write_memory(handle, "mem1", 128, 0xBEEF)
        trace = CacheTrace(CacheTraceConfig(duration_s=1.0, samples_per_window=30, hit_rate=0.6))
        stats = ReplayEngine(dataplane).run(trace.windows())
        total_rx = sum(s.rx_mbps for s in stats)
        total_reflect = sum(s.reflected_mbps for s in stats)
        # ~60% of reads hit and reflect; ~40% miss and forward (Fig 13(b)).
        assert total_reflect / (total_rx + total_reflect) == pytest.approx(0.6, abs=0.08)


class TestImbalanceMetric:
    def test_balanced(self, env):
        _, dataplane = env
        stats = ReplayEngine(dataplane).run(short_trace().windows())
        s = stats[0]
        s.rx_mbps_by_port = {0: 50.0, 1: 50.0}
        assert load_imbalance(s, 0, 1) == 0.0

    def test_fully_imbalanced(self, env):
        _, dataplane = env
        stats = ReplayEngine(dataplane).run(short_trace().windows())
        s = stats[0]
        s.rx_mbps_by_port = {0: 80.0}
        assert load_imbalance(s, 0, 1) == 1.0

    def test_no_traffic_zero(self, env):
        _, dataplane = env
        stats = ReplayEngine(dataplane).run(short_trace().windows())
        s = stats[0]
        s.rx_mbps_by_port = {}
        assert load_imbalance(s, 0, 1) == 0.0
