"""Flow population tests."""

import pytest

from repro.rmt.packet import PROTO_TCP, PROTO_UDP
from repro.traffic.flows import make_population


class TestPopulationShape:
    def test_counts(self):
        pop = make_population(num_flows=512, heavy_flows=10)
        assert len(pop) == 512
        assert len(pop.heavy_flows()) == 10

    def test_heavy_cannot_exceed_total(self):
        with pytest.raises(ValueError):
            make_population(num_flows=5, heavy_flows=6)

    def test_weights_sum_to_one(self):
        pop = make_population(num_flows=256, heavy_flows=8, heavy_share=0.6)
        assert sum(f.weight for f in pop.flows) == pytest.approx(1.0)

    def test_heavy_share_respected(self):
        pop = make_population(num_flows=256, heavy_flows=8, heavy_share=0.6)
        heavy_weight = sum(f.weight for f in pop.heavy_flows())
        assert heavy_weight == pytest.approx(0.6)

    def test_flows_in_subnet(self):
        pop = make_population(num_flows=64, heavy_flows=2, subnet=0x0A000000)
        for flow in pop.flows:
            assert flow.src_ip & 0xFFFF0000 == 0x0A000000

    def test_udp_fraction_roughly_honoured(self):
        pop = make_population(num_flows=2000, heavy_flows=0, udp_fraction=0.35)
        udp = sum(1 for f in pop.flows if f.proto == PROTO_UDP)
        assert 0.25 < udp / 2000 < 0.45
        assert any(f.proto == PROTO_TCP for f in pop.flows)


class TestSampling:
    def test_deterministic_with_seed(self):
        a = make_population(seed=5).sample(100)
        b = make_population(seed=5).sample(100)
        assert [f.five_tuple for f in a] == [f.five_tuple for f in b]

    def test_different_seeds_differ(self):
        a = make_population(seed=1).sample(50)
        b = make_population(seed=2).sample(50)
        assert [f.five_tuple for f in a] != [f.five_tuple for f in b]

    def test_heavy_flows_dominate_samples(self):
        pop = make_population(num_flows=1024, heavy_flows=16, heavy_share=0.7)
        samples = pop.sample(4000)
        heavy = sum(1 for f in samples if f.heavy)
        assert heavy / 4000 > 0.5

    def test_five_tuple_property(self):
        pop = make_population(num_flows=8, heavy_flows=0)
        flow = pop.flows[0]
        assert flow.five_tuple == (
            flow.src_ip,
            flow.dst_ip,
            flow.proto,
            flow.src_port,
            flow.dst_port,
        )
