"""Federated control plane: atomic deploy, aggregation, monitoring."""

import pytest

from repro.fabric import FabricController, Topology
from repro.lang.errors import AllocationError, P4runproError
from repro.programs import PROGRAMS
from repro.rmt.packet import make_udp


def _fabric(leaves=2, spines=1):
    topo = Topology.leaf_spine(leaves, spines)
    return topo, FabricController(topo)


def _cross_leaf_assignments(topo, count):
    """Packets from leaf0 hosts to leaf1 hosts — always three hops."""
    assignments = []
    for i in range(count):
        pkt = make_udp(
            topo.host_ip("leaf0", 1 + i % 4),
            topo.host_ip("leaf1", 1 + i % 4),
            1000 + i % 8,
            80,
        )
        pkt.ts = i * 1e-6
        assignments.append(("leaf0", pkt))
    return assignments


class TestFabricDeploy:
    def test_deploy_lands_on_every_node(self):
        topo, ctl = _fabric(2, 2)
        with topo:
            program = ctl.deploy(PROGRAMS["cms"].source)
            assert set(program.handles) == {"leaf0", "leaf1", "spine0", "spine1"}
            assert set(program.stats["entries_per_node"]) == set(program.handles)
            listing = ctl.list_programs()
            assert len(listing) == 1
            assert listing[0]["program_id"] == program.program_id
            assert set(listing[0]["nodes"]) == set(program.handles)
            # every per-switch controller really has the program
            for node in topo.nodes.values():
                assert node.controller.list_programs()

    def test_deploy_subset_of_nodes(self):
        topo, ctl = _fabric(2, 1)
        with topo:
            program = ctl.deploy(
                PROGRAMS["cms"].source, nodes=["leaf0", "leaf1"]
            )
            assert set(program.handles) == {"leaf0", "leaf1"}
            assert not topo.nodes["spine0"].controller.list_programs()
            with pytest.raises(P4runproError):
                program.handle_on("spine0")

    def test_revoke_everywhere(self):
        topo, ctl = _fabric(2, 1)
        with topo:
            program = ctl.deploy(PROGRAMS["cms"].source)
            delays = ctl.revoke(program)
            assert set(delays) == {"leaf0", "leaf1", "spine0"}
            assert not ctl.list_programs()
            for node in topo.nodes.values():
                assert not node.controller.list_programs()

    def test_unknown_program_rejected(self):
        topo, ctl = _fabric(1, 0)
        with topo:
            with pytest.raises(P4runproError):
                ctl.revoke(99)

    def test_failed_deploy_rolls_back_all_switches(self):
        """Acceptance: a partial fabric deploy leaves every switch's
        state fingerprint byte-identical and installs nothing."""
        from repro.programs import library

        topo, ctl = _fabric(2, 1)
        with topo:
            # Exhaust spine0 directly (behind the fabric controller's
            # back) so the fabric-wide install fails mid-sequence --
            # after the leaves, which deploy first in topology order.
            big = library.source_with_memory("cms", 65536)
            spine = topo.nodes["spine0"].controller
            with pytest.raises(AllocationError):
                for _ in range(50):
                    spine.deploy(big)
            before = ctl.state_fingerprints()
            with pytest.raises(AllocationError):
                ctl.deploy(big)
            assert ctl.state_fingerprints() == before
            assert not ctl.programs
            assert not topo.nodes["leaf0"].controller.list_programs()
            assert not topo.nodes["leaf1"].controller.list_programs()


class TestMemoryAggregation:
    def test_counter_sum_across_devices(self):
        topo, ctl = _fabric(2, 1)
        with topo:
            program = ctl.deploy(PROGRAMS["cms"].source)
            report = ctl.fabric.run(_cross_leaf_assignments(topo, 60))
            assert report.conservation_ok() and not report.drops
            snap = ctl.snapshot_memory(program, "cms_row1")
            assert snap["kind"] == "sum"
            assert set(snap["per_node"]) == {"leaf0", "leaf1", "spine0"}
            for off, merged in enumerate(snap["aggregate"]):
                assert merged == sum(
                    block[off] for block in snap["per_node"].values()
                ) & 0xFFFFFFFF
            # each of the 3 hops counted every packet once
            assert sum(snap["aggregate"]) == 3 * sum(
                snap["per_node"]["leaf0"]
            )
            hot = max(
                range(len(snap["aggregate"])), key=snap["aggregate"].__getitem__
            )
            single = ctl.read_memory(program, "cms_row1", hot)
            assert single["kind"] == "sum"
            assert single["aggregate"] == snap["aggregate"][hot]

    @pytest.mark.parametrize(
        "name,mid,kind",
        [
            ("bf", "bf_row1", "or"),
            ("sumax", "sumax_row1", "max"),
            ("lb", "dip_pool", "read"),
            ("hh", "mem_cms_row1", None),
        ],
    )
    def test_merge_kind_per_program(self, name, mid, kind):
        topo, ctl = _fabric(1, 0)
        with topo:
            program = ctl.deploy(PROGRAMS[name].source)
            result = ctl.read_memory(program, mid, 0)
            assert result["kind"] == kind
            if kind is None:
                assert result["aggregate"] is None

    def test_unknown_memory_rejected(self):
        topo, ctl = _fabric(1, 0)
        with topo:
            program = ctl.deploy(PROGRAMS["cms"].source)
            with pytest.raises(P4runproError):
                ctl.read_memory(program, "no_such_mid", 0)

    def test_write_fans_out_to_every_node(self):
        topo, ctl = _fabric(2, 1)
        with topo:
            program = ctl.deploy(PROGRAMS["lb"].source)
            ctl.write_memory(program, "dip_pool", 3, 42)
            result = ctl.read_memory(program, "dip_pool", 3)
            assert result["per_node"] == {
                "leaf0": 42, "leaf1": 42, "spine0": 42
            }
            assert result["aggregate"] == 42  # replicas agree


class TestMonitoring:
    def test_program_stats_totals(self):
        topo, ctl = _fabric(2, 1)
        with topo:
            program = ctl.deploy(PROGRAMS["cms"].source)
            report = ctl.fabric.run(_cross_leaf_assignments(topo, 50))
            assert not report.drops
            stats = ctl.program_stats(program)
            assert set(stats["per_node"]) == {"leaf0", "leaf1", "spine0"}
            # every cross-leaf packet traverses all three pipelines
            assert stats["totals"]["matched_packets"] == 3 * 50
            assert stats["totals"]["entries"] == sum(
                s["entries"] for s in stats["per_node"].values()
            )

    def test_stats_shape(self):
        topo, ctl = _fabric(2, 2)
        with topo:
            stats = ctl.stats()
            assert set(stats["nodes"]) == set(topo.nodes)
            assert len(stats["links"]) == 4
            for row in stats["links"].values():
                assert row["up"] is True and "carried" in row
            assert stats["routing"] == "auto"
            assert stats["routes"]["leaf0->leaf1"] == ["spine0", "spine1"]

    def test_state_fingerprints_track_deploys(self):
        topo, ctl = _fabric(2, 1)
        with topo:
            empty = ctl.state_fingerprints()
            assert set(empty) == {"combined", "leaf0", "leaf1", "spine0"}
            program = ctl.deploy(PROGRAMS["cms"].source)
            loaded = ctl.state_fingerprints()
            assert loaded["combined"] != empty["combined"]
            ctl.revoke(program)
            assert (
                ctl.state_fingerprints()["combined"] == empty["combined"]
            )

    def test_reroute_delegates_to_fabric(self):
        topo, ctl = _fabric(2, 2)
        with topo:
            ctl.fabric.set_link_state("leaf0", "spine0", False)
            latency_ms = ctl.reroute()
            assert latency_ms >= 0.0
            assert ctl.stats()["routes"]["leaf0->leaf1"] == ["spine1"]
