"""``p4runpro fabric`` subcommands end to end."""

import json

from repro.cli import main
from repro.programs import PROGRAMS


def test_spec_round_trips_through_show(tmp_path, capsys):
    out = tmp_path / "topo.json"
    assert main(
        [
            "fabric", "spec", "--leaves", "3", "--spines", "2",
            "--latency-us", "5", "--out", str(out),
        ]
    ) == 0
    spec = json.loads(out.read_text())
    assert spec["leaves"] == 3 and spec["spines"] == 2
    assert spec["link"]["latency_us"] == 5.0
    assert main(["fabric", "show", str(out)]) == 0
    text = capsys.readouterr().out
    assert "leaf0, leaf1, leaf2" in text
    assert "spine0, spine1" in text
    assert "10.0.1.0/24" in text
    assert "latency 5.0 us" in text


def test_show_accepts_shorthand(capsys):
    assert main(["fabric", "show", "2x1"]) == 0
    text = capsys.readouterr().out
    assert "leaf0, leaf1" in text and "spine0" in text


def test_run_reports_delivery_and_failover(tmp_path, capsys):
    source = tmp_path / "cms.rp"
    source.write_text(PROGRAMS["cms"].source)
    assert main(
        [
            "fabric", "run", "2x2",
            "--packets", "400",
            "--locality", "0",
            "--routing", "controlled",
            "--deploy", str(source),
            "--link-down", "leaf0:spine0@100",
            "--reroute", "200",
        ]
    ) == 0
    text = capsys.readouterr().out
    assert "deployed 'cms' as #1 on 4 switches" in text
    assert "injected 400" in text
    assert "drops: link_down=" in text
    assert "reroute at packet 200" in text
    assert "leaf0:48<->spine0:0" in text
