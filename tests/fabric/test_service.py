"""The control service in fabric mode (``serve --fabric SPEC``)."""

import asyncio

import pytest

from repro.fabric import FabricController, Topology
from repro.programs import PROGRAMS
from repro.service import ControlService, Request

CMS = PROGRAMS["cms"].source


def run(service, method, params=None, tenant="default"):
    request = Request(id=1, method=method, params=params or {}, tenant=tenant)
    return asyncio.run(service.handle_request(request))


def result_of(response):
    assert response["ok"], response
    return response["result"]


def error_of(response):
    assert not response["ok"], response
    return response["error"]


@pytest.fixture()
def topo():
    with Topology.leaf_spine(2, 1) as topology:
        yield topology


@pytest.fixture()
def service(topo):
    return ControlService(fabric=FabricController(topo))


def _cross_leaf_spec(topo, count, **extra):
    spec = {
        "kind": "udp",
        "count": count,
        "leaf": "leaf0",
        "src_ip": topo.host_ip("leaf0", 5),
        "dst_ip": topo.host_ip("leaf1", 5),
    }
    spec.update(extra)
    return spec


def test_fabric_excludes_other_bindings(topo):
    from repro.controlplane import Controller

    ctl, dataplane = Controller.with_simulator()
    with pytest.raises(ValueError):
        ControlService(ctl, dataplane, fabric=FabricController(topo))


def test_ping_reports_fabric_shape(service):
    info = result_of(run(service, "ping"))
    assert info["fabric"] == {"leaves": 2, "spines": 1, "routing": "auto"}
    assert info["programs"] == 0


def test_deploy_list_revoke_cycle(service):
    deployed = result_of(run(service, "deploy", {"source": CMS}))
    assert set(deployed["nodes"]) == {"leaf0", "leaf1", "spine0"}
    assert set(deployed["entries_per_node"]) == set(deployed["nodes"])
    assert deployed["entries"] == sum(deployed["entries_per_node"].values())
    listing = result_of(run(service, "list"))["programs"]
    assert [p["program_id"] for p in listing] == [deployed["program_id"]]
    revoked = result_of(
        run(service, "revoke", {"program_id": deployed["program_id"]})
    )
    assert set(revoked["update_ms_per_node"]) == set(deployed["nodes"])
    assert result_of(run(service, "list"))["programs"] == []


def test_incremental_cases_rejected_fabric_wide(service):
    deployed = result_of(run(service, "deploy", {"source": CMS}))
    for method, params in (
        ("add_case", {"conditions": [["f1", 1, 1]]}),
        ("remove_case", {"case_id": 1}),
    ):
        params["program_id"] = deployed["program_id"]
        error = error_of(run(service, method, params))
        assert "fabric" in error["message"]


def test_inject_routes_and_accounts(service, topo):
    deployed = result_of(run(service, "deploy", {"source": CMS}))
    result = result_of(
        run(service, "inject", {"packets": [_cross_leaf_spec(topo, 30)]})
    )
    assert result["processed"] == 30
    assert result["delivered"] == 30
    assert result["drops"] == {} and result["reorders"] == 0
    # every packet crossed ingress leaf, spine, egress leaf
    stats = result_of(
        run(service, "stats", {"program_id": deployed["program_id"]})
    )
    assert stats["program"]["totals"]["matched_packets"] == 3 * 30
    assert stats["nodes"]["spine0"]["fabric_packets"] == 30
    uplink = stats["links"]["leaf0:48<->spine0:0"]
    assert uplink["carried"] == 30 and uplink["up"] is True


def test_inject_rejects_unknown_leaf(service, topo):
    error = error_of(
        run(
            service,
            "inject",
            {"packets": [_cross_leaf_spec(topo, 1, leaf="spine0")]},
        )
    )
    assert "ingress leaf" in error["message"]


def test_read_mem_and_snapshot_aggregate(service, topo):
    deployed = result_of(run(service, "deploy", {"source": CMS}))
    result_of(run(service, "inject", {"packets": [_cross_leaf_spec(topo, 24)]}))
    snapshot = result_of(
        run(
            service,
            "snapshot",
            {"program_id": deployed["program_id"], "mid": "cms_row1"},
        )
    )
    assert snapshot["kind"] == "sum"
    assert sum(snapshot["values"]) == 3 * 24
    hot = max(range(len(snapshot["values"])), key=snapshot["values"].__getitem__)
    single = result_of(
        run(
            service,
            "read_mem",
            {"program_id": deployed["program_id"], "mid": "cms_row1", "vaddr": hot},
        )
    )
    assert single["value"] == snapshot["values"][hot]
    assert single["value"] == sum(single["per_node"].values())


def test_write_mem_fans_out(service):
    deployed = result_of(run(service, "deploy", {"source": PROGRAMS["lb"].source}))
    result_of(
        run(
            service,
            "write_mem",
            {
                "program_id": deployed["program_id"],
                "mid": "dip_pool",
                "vaddr": 2,
                "value": 9,
            },
        )
    )
    value = result_of(
        run(
            service,
            "read_mem",
            {"program_id": deployed["program_id"], "mid": "dip_pool", "vaddr": 2},
        )
    )
    assert value["kind"] == "read"
    assert value["per_node"] == {"leaf0": 9, "leaf1": 9, "spine0": 9}


def test_quota_charges_fabric_wide_footprint(service):
    deployed = result_of(run(service, "deploy", {"source": CMS}))
    total = deployed["entries"]
    per_node = deployed["entries_per_node"]["leaf0"]
    result_of(run(service, "revoke", {"program_id": deployed["program_id"]}))
    fingerprint = result_of(run(service, "fingerprint"))
    # room for one switch's copy but not for all three
    result_of(run(service, "set_quota", {"max_table_entries": total - 1}))
    error = error_of(run(service, "deploy", {"source": CMS}))
    assert error["code"] == "QUOTA_EXCEEDED"
    assert total - 1 >= per_node  # the single-switch copy would have fit
    # the failed deploy rolled back: no programs, fingerprints unchanged
    assert result_of(run(service, "list"))["programs"] == []
    assert result_of(run(service, "fingerprint")) == fingerprint


def test_metrics_and_fingerprint_break_down_per_node(service):
    result_of(run(service, "deploy", {"source": CMS}))
    metrics = result_of(run(service, "metrics"))
    assert set(metrics["southbound_retries"]) == {"leaf0", "leaf1", "spine0"}
    assert "nodes" in metrics["fabric"] and "links" in metrics["fabric"]
    fingerprint = result_of(run(service, "fingerprint"))
    assert set(fingerprint["per_node"]) == {"leaf0", "leaf1", "spine0"}
    assert fingerprint["fingerprint"]
    utilization = result_of(run(service, "utilization"))
    assert set(utilization["per_node"]) == {"leaf0", "leaf1", "spine0"}
