"""Failure scenarios: conservation, failover, blackout windows, reorders."""

import pytest

from repro.engine.engine import flow_hash
from repro.fabric import (
    LEAF,
    SPINE,
    UPLINK_PORT_BASE,
    Fabric,
    FabricNode,
    Link,
    Scenario,
    Topology,
)
from repro.rmt.packet import make_udp


def _assignments(topo, count, *, src_leaf="leaf0", dst_leaf="leaf1", flows=8):
    out = []
    for i in range(count):
        pkt = make_udp(
            topo.host_ip(src_leaf, 1 + i % 4),
            topo.host_ip(dst_leaf, 1 + i % 4),
            1000 + i % flows,
            80,
        )
        pkt.ts = i * 1e-6
        out.append((src_leaf, pkt))
    return out


def _conserved(report):
    assert report.conservation_ok()
    assert report.injected == report.delivered + sum(report.drops.values())
    for account in report.per_flow.values():
        assert account.injected == account.delivered + account.lost
    return True


class TestConservation:
    def test_clean_run_delivers_everything(self):
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo)
            report = fabric.run(_assignments(topo, 120))
            assert _conserved(report) and not report.drops
            assert report.delivered == 120
            # flows split across both spines and every hop saw traffic
            carried = [row["carried"] for row in report.per_link.values()]
            assert sum(carried) == 2 * 120  # uplink + downlink per packet
            assert report.per_node["spine0"]["fabric_packets"] > 0
            assert report.per_node["spine1"]["fabric_packets"] > 0

    def test_local_traffic_never_touches_links(self):
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo)
            report = fabric.run(
                _assignments(topo, 40, src_leaf="leaf0", dst_leaf="leaf0")
            )
            assert _conserved(report) and report.delivered == 40
            assert all(
                row["carried"] == 0 for row in report.per_link.values()
            )

    def test_lossy_links_account_every_packet(self):
        with Topology.leaf_spine(2, 1, loss=0.2, seed=3) as topo:
            fabric = Fabric(topo)
            report = fabric.run(_assignments(topo, 300))
            assert _conserved(report)
            assert 0 < report.drops["link_loss"] < 300
            lost = sum(acc.lost for acc in report.per_flow.values())
            assert lost == report.drops["link_loss"]

    def test_bandwidth_window_drops(self):
        with Topology.leaf_spine(2, 1, bandwidth_gbps=0.001) as topo:
            fabric = Fabric(topo)
            # 1 Mb/s for 1 ms = 125 bytes: two 64 B packets fit per link
            report = fabric.run(_assignments(topo, 50), duration_s=0.001)
            assert _conserved(report)
            assert report.drops["link_bandwidth"] == 50 - report.delivered
            assert 0 < report.delivered < 50

    def test_no_route_when_leaves_are_unconnected(self):
        with Topology.leaf_spine(2, 0) as topo:
            report = Fabric(topo).run(_assignments(topo, 30))
            assert _conserved(report)
            assert report.drops == {"no_route": 30}

    def test_down_ingress_leaf_drops_pre_pipeline(self):
        with Topology.leaf_spine(2, 1) as topo:
            fabric = Fabric(topo)
            report = fabric.run(
                _assignments(topo, 20),
                scenario=Scenario().node_down(0, "leaf0"),
            )
            assert _conserved(report)
            assert report.drops == {"node_down": 20}
            assert all(o.path == ("leaf0",) for o in report.outcomes)

    def test_down_egress_leaf_drops_at_spine(self):
        with Topology.leaf_spine(2, 1) as topo:
            fabric = Fabric(topo)
            report = fabric.run(
                _assignments(topo, 20),
                scenario=Scenario().node_down(0, "leaf1"),
            )
            assert _conserved(report)
            assert report.drops == {"node_down": 20}
            assert all(o.node == "spine0" for o in report.outcomes)


class TestAutoFailover:
    def test_link_down_mid_run_is_lossless(self):
        """ECMP over live paths: a failed uplink diverts traffic with
        zero loss and the surviving spine carries the rest."""
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo)
            report = fabric.run(
                _assignments(topo, 200),
                scenario=Scenario().link_down(100, "leaf0", "spine0"),
            )
            assert _conserved(report) and not report.drops
            via_spine0 = report.per_link["leaf0:48<->spine0:0"]["carried"]
            via_spine1 = report.per_link["leaf0:49<->spine1:0"]["carried"]
            assert via_spine0 + via_spine1 == 200
            assert via_spine1 > 100  # picked up spine0's flows after the cut

    def test_spine_down_mid_run_is_lossless(self):
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo)
            report = fabric.run(
                _assignments(topo, 200),
                scenario=Scenario().node_down(100, "spine0"),
            )
            assert _conserved(report) and not report.drops
            assert report.per_node["spine0"]["fabric_packets"] < 100

    def test_link_up_restores_spreading(self):
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo)
            scenario = (
                Scenario()
                .link_down(0, "leaf0", "spine0")
                .link_up(100, "leaf0", "spine0")
            )
            report = fabric.run(_assignments(topo, 200), scenario=scenario)
            assert _conserved(report) and not report.drops
            assert report.per_link["leaf0:48<->spine0:0"]["carried"] > 0


class TestControlledFailover:
    def test_blackout_until_reroute(self):
        """Controlled mode keeps the installed (dead) path until the
        controller flips the table: drops are confined to the blackout
        window and every one is accounted."""
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo, routing="controlled")
            scenario = (
                Scenario()
                .link_down(100, "leaf0", "spine0")
                .reroute(150)
            )
            report = fabric.run(_assignments(topo, 300), scenario=scenario)
            assert _conserved(report)
            lost = report.drops.get("link_down", 0)
            # only spine0-hashed flows inside the 50-packet window drop
            assert 0 < lost <= 50
            assert len(report.reroutes) == 1
            assert report.reroutes[0]["at_index"] == 150
            assert report.reroutes[0]["latency_ms"] >= 0.0
            assert fabric.routes[("leaf0", "leaf1")] == ("spine1",)

    def test_dead_spine_is_node_down_until_reroute(self):
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo, routing="controlled")
            scenario = Scenario().node_down(0, "spine0").reroute(100)
            report = fabric.run(_assignments(topo, 200), scenario=scenario)
            assert _conserved(report)
            assert 0 < report.drops["node_down"] <= 100
            assert report.per_node["spine0"]["fabric_packets"] == 0

    def test_reroute_with_no_survivors_is_no_route(self):
        with Topology.leaf_spine(2, 1) as topo:
            fabric = Fabric(topo, routing="controlled")
            scenario = Scenario().link_down(0, "leaf0", "spine0").reroute(0)
            report = fabric.run(_assignments(topo, 20), scenario=scenario)
            assert _conserved(report)
            assert report.drops == {"no_route": 20}


class TestReorderAccounting:
    @staticmethod
    def _asymmetric_topology():
        """leaf0/leaf1 joined by a slow spine0 (100 us links) and a fast
        spine1 (1 us links)."""
        topo = Topology()
        for name, role in (
            ("leaf0", LEAF),
            ("leaf1", LEAF),
            ("spine0", SPINE),
            ("spine1", SPINE),
        ):
            topo.add_node(FabricNode(name, role))
        topo.leaf_subnets["leaf0"] = (0x0A000100, 0xFFFFFF00)
        topo.leaf_subnets["leaf1"] = (0x0A000200, 0xFFFFFF00)
        for leaf_index, leaf in enumerate(("leaf0", "leaf1")):
            topo.add_link(
                Link(leaf, UPLINK_PORT_BASE, "spine0", leaf_index,
                     latency_s=100e-6)
            )
            topo.add_link(
                Link(leaf, UPLINK_PORT_BASE + 1, "spine1", leaf_index,
                     latency_s=1e-6)
            )
        return topo

    def test_reroute_to_faster_path_counts_overtakes(self):
        topo = self._asymmetric_topology()
        with topo:
            fabric = Fabric(topo, routing="controlled")
            # a single flow pinned (by hash) to the slow spine0
            for port in range(1000, 1100):
                flow_pkt = make_udp(0x0A000105, 0x0A000205, port, 80)
                if flow_hash(flow_pkt.five_tuple()) % 2 == 0:
                    break
            else:
                pytest.fail("no spine0-hashed flow found")
            assignments = []
            for i in range(60):
                pkt = make_udp(0x0A000105, 0x0A000205, port, 80)
                pkt.ts = i * 1e-6
                assignments.append(("leaf0", pkt))
            scenario = (
                Scenario().link_down(20, "leaf0", "spine0").reroute(20)
            )
            report = fabric.run(assignments, scenario=scenario)
            assert _conserved(report) and not report.drops
            # packets 20+ took the 2 us path and landed before packet
            # 19's 200 us arrival -- overtakes the per-flow account sees
            account = report.per_flow[assignments[0][1].five_tuple()]
            assert account.reorders > 0
            assert report.reorders == account.reorders

    def test_sticky_single_path_never_reorders(self):
        with Topology.leaf_spine(2, 2) as topo:
            fabric = Fabric(topo)
            report = fabric.run(_assignments(topo, 150))
            assert _conserved(report)
            assert report.reorders == 0
