"""Topology layer: builder shape, links, spec round-trip, node parity."""

import json

import pytest

from repro.fabric import (
    LEAF,
    SPINE,
    UPLINK_PORT_BASE,
    FabricNode,
    Link,
    Topology,
    TopologyError,
)
from repro.programs import PROGRAMS
from repro.rmt.packet import make_udp


class TestLeafSpineBuilder:
    def test_shape(self):
        with Topology.leaf_spine(3, 2) as topo:
            assert topo.leaves == ["leaf0", "leaf1", "leaf2"]
            assert topo.spines == ["spine0", "spine1"]
            assert len(topo.links) == 6  # full bipartite mesh
            link = topo.link_between("leaf1", "spine0")
            assert link.ingress_port_at("spine0") == 1
            assert link.ingress_port_at("leaf1") == UPLINK_PORT_BASE

    def test_leaf_subnets_and_host_ips(self):
        with Topology.leaf_spine(2, 1) as topo:
            assert topo.leaf_of_ip(topo.host_ip("leaf0", 5)) == "leaf0"
            assert topo.leaf_of_ip(topo.host_ip("leaf1", 200)) == "leaf1"
            assert topo.leaf_of_ip(0xC0A80001) is None  # 192.168.0.1
            with pytest.raises(TopologyError):
                topo.host_ip("leaf0", 0)
            with pytest.raises(TopologyError):
                topo.host_ip("leaf0", 256)

    def test_single_switch_fabric_has_no_spines(self):
        with Topology.leaf_spine(1, 0) as topo:
            assert topo.leaves == ["leaf0"] and not topo.spines
            assert not topo.links

    def test_invalid_counts(self):
        with pytest.raises(TopologyError):
            Topology.leaf_spine(0, 2)
        with pytest.raises(TopologyError):
            Topology.leaf_spine(2, -1)

    def test_duplicate_nodes_and_links_rejected(self):
        topo = Topology()
        topo.add_node(FabricNode("a", LEAF))
        topo.add_node(FabricNode("b", SPINE))
        with pytest.raises(TopologyError):
            topo.add_node(FabricNode("a", LEAF))
        topo.add_link(Link("a", 48, "b", 0))
        with pytest.raises(TopologyError):
            topo.add_link(Link("a", 49, "b", 1))
        with pytest.raises(TopologyError):
            topo.add_link(Link("a", 50, "missing", 0))
        with pytest.raises(TopologyError):
            topo.link_between("b", "missing")


class TestLink:
    def test_down_link_drops(self):
        link = Link("a", 0, "b", 0)
        link.up = False
        assert link.transmit(64) == "link_down"
        assert link.stats.dropped_down == 1

    def test_lossy_link_drops_deterministically(self):
        one = Link("a", 0, "b", 0, loss=0.3, seed=5)
        two = Link("a", 0, "b", 0, loss=0.3, seed=5)
        outcomes_one = [one.transmit(64) for _ in range(500)]
        outcomes_two = [two.transmit(64) for _ in range(500)]
        assert outcomes_one == outcomes_two  # seeded RNG
        losses = outcomes_one.count("link_loss")
        assert 80 < losses < 220  # ~30% of 500
        assert one.stats.dropped_loss == losses

    def test_bandwidth_window(self):
        link = Link("a", 0, "b", 0, bandwidth_gbps=0.001)  # 1 Mb/s
        link.begin_window(0.001)  # 125 bytes of budget
        assert link.transmit(64) == "ok"
        assert link.transmit(64) == "link_bandwidth"
        link.begin_window(None)  # unbounded
        assert all(link.transmit(1500) == "ok" for _ in range(100))


class TestSpecRoundTrip:
    def test_round_trip(self, tmp_path):
        with Topology.leaf_spine(3, 2, latency_s=5e-6, loss=0.01) as topo:
            spec = topo.to_spec()
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(spec))
        with Topology.from_spec(path) as rebuilt:
            assert rebuilt.leaves == ["leaf0", "leaf1", "leaf2"]
            assert rebuilt.spines == ["spine0", "spine1"]
            link = rebuilt.link_between("leaf0", "spine0")
            assert link.latency_s == pytest.approx(5e-6)
            assert link.loss == pytest.approx(0.01)

    def test_bad_specs(self, tmp_path):
        with pytest.raises(TopologyError):
            Topology.from_spec(tmp_path / "missing.json")
        with pytest.raises(TopologyError):
            Topology.from_spec({"kind": "ring"})
        with pytest.raises(TopologyError):
            Topology.from_spec([1, 2, 3])

    def test_ad_hoc_topology_has_no_spec(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.to_spec()


class TestFabricNode:
    def test_in_process_node_counts_work(self):
        node = FabricNode("n", LEAF)
        results = node.process_batch(
            [make_udp(1, 2, 10, 80), make_udp(3, 4, 11, 81)]
        )
        assert len(results) == 2
        assert node.packets == 2
        assert node.busy_s >= 0.0
        stats = node.stats()
        assert stats["role"] == LEAF and stats["fabric_packets"] == 2

    def test_engine_node_matches_bare_engine(self):
        """An engine-backed fabric node is the same ShardedEngine: verdicts
        and registers after identical traffic are bit-identical."""
        from repro.engine import ShardedEngine

        packets = [
            make_udp(0x0A000001 + i % 7, 0x0A000002, 1000 + i % 5, 80)
            for i in range(120)
        ]
        node = FabricNode("n", LEAF, workers=2)
        try:
            node.controller.deploy(PROGRAMS["cms"].source)
            node_results = node.process_batch([p.clone() for p in packets])
            node_regs = {
                mid: node.controller.snapshot_memory(1, mid)
                for mid in PROGRAMS["cms"].memories
            }
        finally:
            node.close()
        with ShardedEngine(2) as engine:
            engine.controller.deploy(PROGRAMS["cms"].source)
            bare_results = engine.inject([p.clone() for p in packets], mode="full")
            bare_regs = {
                mid: engine.controller.snapshot_memory(1, mid)
                for mid in PROGRAMS["cms"].memories
            }
        assert [
            (r.verdict, r.egress_port, r.recirculations) for r in node_results
        ] == [(r.verdict, r.egress_port, r.recirculations) for r in bare_results]
        assert node_regs == bare_regs
