"""Topology-aware traffic source: leaf pinning, locality, determinism."""

import pytest

from repro.fabric import Fabric, Topology
from repro.rmt.packet import PROTO_TCP, PROTO_UDP
from repro.traffic import make_fabric_population


class TestMakeFabricPopulation:
    def test_flows_pin_to_leaf_subnets(self):
        with Topology.leaf_spine(4, 2) as topo:
            traffic = make_fabric_population(topo, num_flows=256, seed=1)
            for i, flow in enumerate(traffic.population.flows):
                leaf = topo.leaf_of_ip(flow.src_ip)
                assert leaf == f"leaf{i % 4}"  # round-robin spreading
                assert traffic.ingress_of(flow) == leaf
                assert topo.leaf_of_ip(flow.dst_ip) is not None

    def test_locality_bounds(self):
        with Topology.leaf_spine(2, 1) as topo:
            local = make_fabric_population(topo, num_flows=200, locality=1.0)
            assert local.cross_leaf_share() == 0.0
            remote = make_fabric_population(topo, num_flows=200, locality=0.0)
            assert remote.cross_leaf_share() == 1.0
            mixed = make_fabric_population(topo, num_flows=400, locality=0.5)
            assert 0.2 < mixed.cross_leaf_share() < 0.8
            with pytest.raises(ValueError):
                make_fabric_population(topo, locality=1.5)

    def test_single_leaf_is_all_local(self):
        with Topology.leaf_spine(1, 0) as topo:
            traffic = make_fabric_population(topo, num_flows=64, heavy_flows=8)
            assert traffic.cross_leaf_share() == 0.0

    def test_same_seed_same_population(self):
        with Topology.leaf_spine(2, 1) as topo:
            one = make_fabric_population(topo, num_flows=128, seed=9)
            two = make_fabric_population(topo, num_flows=128, seed=9)
            assert [f.five_tuple for f in one.population.flows] == [
                f.five_tuple for f in two.population.flows
            ]

    def test_zipf_machinery_is_reused(self):
        """Heavy flows still dominate the sample — the single-switch
        skew survives the fabric addresser."""
        with Topology.leaf_spine(2, 1) as topo:
            traffic = make_fabric_population(
                topo, num_flows=512, heavy_flows=16, heavy_share=0.9, seed=3
            )
            heavy = {
                f.five_tuple for f in traffic.population.flows[:16]
            }
            sample = traffic.population.sample(2000)
            heavy_hits = sum(1 for f in sample if f.five_tuple in heavy)
            assert heavy_hits > 1200  # ~90% by construction
            protos = {f.proto for f in traffic.population.flows}
            assert protos == {PROTO_UDP, PROTO_TCP}


class TestAssignments:
    def test_assignments_feed_the_fabric(self):
        with Topology.leaf_spine(2, 2) as topo:
            traffic = make_fabric_population(
                topo, num_flows=64, heavy_flows=8, locality=0.5, seed=5
            )
            assignments = traffic.assignments(150)
            assert len(assignments) == 150
            ts = [pkt.ts for _leaf, pkt in assignments]
            assert ts == sorted(ts) and ts[1] - ts[0] == pytest.approx(1e-6)
            assert {leaf for leaf, _pkt in assignments} <= {"leaf0", "leaf1"}
            report = Fabric(topo).run(assignments)
            assert report.conservation_ok()
            assert report.delivered == 150 and not report.drops
            assert report.reorders == 0
