"""Runtime CLI tests."""

import io

import pytest

from repro.cli import RuntimeCLI
from repro.programs import PROGRAMS
from repro.rmt.packet import NC_READ, NC_WRITE, make_cache
from repro.rmt.pipeline import Verdict


@pytest.fixture
def cli(tmp_path):
    out = io.StringIO()
    interface = RuntimeCLI(out=out)
    source = tmp_path / "cache.rp"
    source.write_text(PROGRAMS["cache"].source)
    return interface, out, source


def output(out: io.StringIO) -> str:
    return out.getvalue()


class TestDeployRevoke:
    def test_deploy_and_list(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        interface.execute("list")
        text = output(out)
        assert "deployed 'cache' as #1" in text
        assert "mem1@rpb" in text

    def test_revoke(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        interface.execute("revoke 1")
        interface.execute("list")
        text = output(out)
        assert "revoked #1" in text
        assert "no programs running" in text

    def test_deploy_missing_file(self, cli):
        interface, out, _ = cli
        interface.execute("deploy /nonexistent.rp")
        assert "error:" in output(out)

    def test_deploy_with_objective_and_elastic(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source} --objective f2 --elastic 8")
        assert "deployed 'cache'" in output(out)

    def test_functional_after_cli_deploy(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        dataplane = interface.dataplane
        dataplane.process(make_cache(1, 2, op=NC_WRITE, key=0x8888, value=3))
        hit = dataplane.process(make_cache(1, 2, op=NC_READ, key=0x8888))
        assert hit.verdict is Verdict.REFLECT


class TestShowAndUtil:
    def test_show_pretty_prints(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        interface.execute("show 1")
        text = output(out)
        assert "program cache(" in text
        assert "// logic RPBs:" in text

    def test_util(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        interface.execute("util")
        text = output(out)
        assert "rpb1" in text and "ingress" in text and "egress" in text

    def test_profile(self, cli):
        interface, out, _ = cli
        interface.execute("profile")
        text = output(out)
        assert "latency (cycles): (306, 316, 622)" in text


class TestMemory:
    def test_mem_write_read(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        interface.execute("mem write 1 mem1 10 0xbeef")
        interface.execute("mem read 1 mem1 10")
        assert "mem1[10] = 48879 (0xbeef)" in output(out)

    def test_mem_bad_usage(self, cli):
        interface, out, _ = cli
        interface.execute("mem read 1")
        assert "usage:" in output(out)


class TestAddCase:
    def test_addcase_serves_new_key(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        interface.execute(
            "addcase 1 --cond har,1,0xff --cond sar,0,0xffffffff "
            "--cond mar,0x4242,0xffffffff --template 0 --loadi 32"
        )
        assert "added case" in output(out)
        interface.execute("mem write 1 mem1 32 777")
        hit = interface.dataplane.process(make_cache(1, 2, op=NC_READ, key=0x4242))
        assert hit.verdict is Verdict.REFLECT
        assert hit.packet.get_field("hdr.nc.val") == 777


class TestSession:
    def test_unknown_command(self, cli):
        interface, out, _ = cli
        interface.execute("frobnicate")
        assert "unknown command" in output(out)

    def test_quit_ends_repl(self, cli):
        interface, out, source = cli
        stream = io.StringIO(f"deploy {source}\nquit\nlist\n")
        interface.repl(stream)
        assert "no programs running" not in output(out)  # list never ran

    def test_comments_and_blank_lines(self, cli):
        interface, out, _ = cli
        interface.execute("  # a comment")
        interface.execute("")
        assert "error" not in output(out)

    def test_help(self, cli):
        interface, out, _ = cli
        interface.execute("help")
        assert "deploy <file>" in output(out)


class TestChainMode:
    def test_main_chain_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.programs import PROGRAMS

        source = tmp_path / "cache.rp"
        source.write_text(PROGRAMS["cache"].source)
        assert main(["--chain", "2", "-c", f"deploy {source}", "-c", "list"]) == 0
        out = capsys.readouterr().out
        assert "deployed 'cache'" in out
        assert "cache" in out

    def test_chain_util_shows_all_hops(self, capsys):
        from repro.cli import main

        assert main(["--chain", "2", "-c", "util"]) == 0
        out = capsys.readouterr().out
        assert "rpb46" in out  # global numbering spans both hops


class TestTraceCommand:
    def test_trace_from_pcap(self, cli, tmp_path):
        from repro.rmt.packet import make_cache
        from repro.rmt.wire import save_pcap

        interface, out, source = cli
        interface.execute(f"deploy {source}")
        capture = tmp_path / "probe.pcap"
        save_pcap(capture, [make_cache(1, 2, op=1, key=0x8888)])
        interface.execute(f"trace {capture}")
        text = output(out)
        assert "set_program" in text
        assert "MEMREAD" in text
        assert "verdict: reflect" in text

    def test_trace_bad_index(self, cli, tmp_path):
        from repro.rmt.packet import make_udp
        from repro.rmt.wire import save_pcap

        interface, out, _ = cli
        capture = tmp_path / "one.pcap"
        save_pcap(capture, [make_udp(1, 2, 3, 4)])
        interface.execute(f"trace {capture} 5")
        assert "error:" in output(out)

    def test_trace_usage(self, cli):
        interface, out, _ = cli
        interface.execute("trace")
        assert "usage:" in output(out)


class TestPsCommand:
    def test_ps_empty(self, cli):
        interface, out, _ = cli
        interface.execute("ps")
        assert "no programs running" in output(out)

    def test_ps_lists_structured_columns(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        interface.execute("ps")
        text = output(out)
        assert "ID" in text and "LOGIC RPBS" in text
        assert "#1" in text and "cache" in text and "running" in text
        assert "mem1:256@rpb" in text

    def test_ps_matches_list_programs(self, cli):
        interface, out, source = cli
        interface.execute(f"deploy {source}")
        listing = interface.controller.list_programs()
        assert len(listing) == 1
        info = listing[0]
        assert info["name"] == "cache"
        assert info["entries"] == 17
        assert info["state"] == "running"
        assert info["memory"]["mem1"]["size"] == 256


class TestServiceSubcommands:
    def test_serve_and_client_round_trip(self, tmp_path):
        """`p4runpro client` drives a live control service."""
        import json

        from repro.cli import client_main
        from repro.programs import PROGRAMS
        from repro.service import ControlService, ServerThread

        source = tmp_path / "cache.rp"
        source.write_text(PROGRAMS["cache"].source)
        with ServerThread(ControlService()) as server:
            port = str(server.port)
            assert client_main(["ping", "--port", port]) == 0
            assert (
                client_main(
                    ["deploy", f"source=@{source}", "--port", port, "--tenant", "alice"]
                )
                == 0
            )
            assert client_main(["list", "--port", port, "--tenant", "alice"]) == 0
            # structured errors exit non-zero
            assert (
                client_main(["revoke", "program_id=99", "--port", port]) == 1
            )

    def test_client_param_parsing_errors(self, capsys):
        from repro.cli import client_main

        with pytest.raises(SystemExit):
            client_main(["deploy", "not-a-pair", "--port", "1"])
